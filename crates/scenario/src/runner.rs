//! The closed-loop simulation driver and strategy comparison.
//!
//! [`run_scenario`] wires the fleet, the radio medium and the chosen
//! [`Strategy`] into an event-scheduled core — a deterministic
//! [`Timeline`] of typed scenario events keyed by `(timestamp, seq)` —
//! and runs the looking-around-the-corner workload: the ego vehicle
//! periodically wants
//! an up-to-date view of the occluded corridor, and each strategy procures
//! it differently —
//!
//! * **AirDnD** — offload a TaskVM kernel to the best mesh member holding
//!   fresh occupancy data; only the task and its small result travel;
//! * **Cloud** — every vehicle uploads its raw camera frame over shared
//!   cellular; the cloud fuses and the ego downloads the view;
//! * **RawSharing** — V2V like AirDnD, but the helper ships its raw frame
//!   and the ego computes locally;
//! * **LocalOnly** — no cooperation at all.
//!
//! The [`ScenarioReport`] carries everything experiments F2–F4, F7–F8 and
//! T9 tabulate: latency, bytes by medium, coverage vs ground truth,
//! detection time, mesh dynamics and executor utilization.

use crate::demand::DemandProfile;
use crate::fleet::{Fleet, FleetLayout};
use crate::lifecycle::{FleetAction, FleetSchedule};
use crate::perception::{fuse_max, is_valid_grid, observed_fraction};
use crate::world::{OcclusionParams, ScenarioWorld};
use airdnd_baselines::{CloudOffload, LocalOnly};
use airdnd_core::{
    NodeAction, NodeEvent, OffloadMsg, OrchestratorConfig, OrchestratorStats, TaskOutcome, WireMsg,
};
use airdnd_data::{DataQuery, DataType, QualityDescriptor, QualityRequirement};
use airdnd_engine::Timeline;
use airdnd_geo::Vec2;
use airdnd_mesh::MeshConfig;
use airdnd_radio::{DeliveryOutcome, NodeAddr, RadioMedium};
use airdnd_sim::{percentile, SimDuration, SimRng, SimTime};
use airdnd_task::{library, ResourceRequirements, TaskId, TaskSpec};
use airdnd_telemetry::{
    DropReason, EventKind, Phase, QueryTracer, RunTelemetry, Scope, StageBudget, TelemetryOptions,
};
use airdnd_trust::PrivacyLevel;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::rc::Rc;
use std::time::Instant;

/// How the ego procures remote perception.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// The paper's system: task-to-data offloading over the mesh.
    Airdnd,
    /// Cellular cloud offload of raw frames.
    Cloud {
        /// Use the 5G profile instead of LTE.
        fiveg: bool,
    },
    /// V2V raw-frame transfer, local compute.
    RawSharing,
    /// No cooperation.
    LocalOnly,
}

impl Strategy {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Airdnd => "airdnd",
            Strategy::Cloud { fiveg: true } => "cloud-5g",
            Strategy::Cloud { fiveg: false } => "cloud-lte",
            Strategy::RawSharing => "raw-sharing",
            Strategy::LocalOnly => "local-only",
        }
    }
}

/// Scenario parameters. `Default` gives the canonical F2–F4 setup.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Fleet size including the ego.
    pub vehicles: usize,
    /// Intersection arm length, metres.
    pub arm_length: f64,
    /// Lane speed limit, m/s.
    pub speed_limit: f64,
    /// Corner-building setback, metres.
    pub building_setback: f64,
    /// Corner-building size, metres.
    pub building_size: f64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Driver tick (mobility + mesh timers).
    pub tick: SimDuration,
    /// Sensor range, metres.
    pub sensor_range: f64,
    /// Sensor refresh every this many ticks.
    pub sensor_every_ticks: u32,
    /// Ego perception-task period, in ticks.
    pub task_every_ticks: u32,
    /// FNV "inference" passes inside each perception kernel — the
    /// compute-weight knob (gas ≈ rounds × cells × 17).
    pub task_compute_rounds: u32,
    /// Heterogeneous ECU speed range, gas/s.
    pub gas_rate_range: (u64, u64),
    /// Fraction of helpers returning corrupted results.
    pub byzantine_fraction: f64,
    /// Number of ground-truth agents hidden in the corridor.
    pub hidden_agents: usize,
    /// Orchestrator tuning.
    pub orch: OrchestratorConfig,
    /// Mesh tuning.
    pub mesh: MeshConfig,
    /// MAC transmit-queue bound: a frame that cannot reach the air within
    /// this delay is dropped instead of deferred (`None` = defer forever,
    /// the historical model). Dense fleets set this near the beacon
    /// interval so radio overload sheds beacons — keeping the surviving
    /// adverts fresh and the airspace backlog bounded — rather than
    /// ratcheting every delivery later and later for the rest of the run.
    pub radio_queue_cap: Option<SimDuration>,
    /// Cooperation strategy.
    pub strategy: Strategy,
    /// When the ego issues perception tasks ([`DemandProfile::Steady`]
    /// reproduces the historical fixed period).
    pub demand: DemandProfile,
}

// The sweep harness farms `run_scenario` calls across worker threads; the
// contract that makes this sound is enforced here at compile time: configs
// move into workers, reports move back, and `run_scenario` itself is a pure
// function of its config (the world state and its event timeline are
// created per-call and never escape it).
const _: () = {
    const fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<ScenarioConfig>();
    assert_send_sync::<ScenarioReport>();
};

/// Chainable builder hooks, the vocabulary sweep axes are written in
/// (`SweepSpec::axis("vehicles", ns, |cfg, &n| { cfg.set_vehicles(n); })`
/// or inline struct updates both work; these keep axis closures terse).
impl ScenarioConfig {
    /// Sets the master seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fleet size (including the ego).
    pub fn with_vehicles(mut self, vehicles: usize) -> Self {
        self.vehicles = vehicles;
        self
    }

    /// Sets the cooperation strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the simulated duration.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the lane speed limit (the churn knob), m/s.
    pub fn with_speed_limit(mut self, speed_limit: f64) -> Self {
        self.speed_limit = speed_limit;
        self
    }

    /// Sets the ego task period in ticks (the offered-load knob).
    pub fn with_task_every_ticks(mut self, ticks: u32) -> Self {
        self.task_every_ticks = ticks;
        self
    }

    /// Sets the fraction of byzantine helpers.
    pub fn with_byzantine_fraction(mut self, fraction: f64) -> Self {
        self.byzantine_fraction = fraction;
        self
    }

    /// Sets the perception-demand profile.
    pub fn with_demand(mut self, demand: DemandProfile) -> Self {
        self.demand = demand;
        self
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            vehicles: 12,
            arm_length: 250.0,
            speed_limit: 13.9,
            building_setback: 12.0,
            building_size: 40.0,
            duration: SimDuration::from_secs(60),
            tick: SimDuration::from_millis(100),
            sensor_every_ticks: 2,
            task_every_ticks: 5,
            task_compute_rounds: 150,
            sensor_range: 120.0,
            gas_rate_range: (500_000, 4_000_000),
            byzantine_fraction: 0.0,
            hidden_agents: 1,
            orch: OrchestratorConfig::default(),
            mesh: MeshConfig::default(),
            radio_queue_cap: None,
            strategy: Strategy::Airdnd,
            demand: DemandProfile::Steady,
        }
    }
}

/// A fully instantiated stage: the world geometry plus everything the
/// driver needs that is *derived from* the geometry rather than the
/// scenario knobs — which portal the ego uses, where ground-truth agents
/// hide, and where parked/RSU helpers sit. [`run_scenario`] builds the
/// canonical corner instance; `airdnd-worldgen` families build generated
/// ones and feed them through [`run_scenario_in`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldInstance {
    /// The stage with its derived occlusion grid.
    pub stage: ScenarioWorld,
    /// Portal/arm the ego enters (and re-enters) from.
    pub ego_arm: usize,
    /// Ground-truth agents hidden in the occluded corridor.
    pub hidden_agents: Vec<Vec2>,
    /// Parked/RSU helper positions.
    pub parked: Vec<Vec2>,
    /// Spawn-scatter window, seconds (the fleet's arrival process).
    pub arrival_window_s: f64,
    /// Mid-run vehicle arrivals/departures the driver applies at tick
    /// boundaries. Empty (the default) is the static fleet, byte for byte.
    pub schedule: FleetSchedule,
    /// Extra concurrent query origins beyond the primary ego. Each gets
    /// its own hidden-region grid, derived from its own approach path.
    pub extra_egos: Vec<EgoRoute>,
    /// The derived occlusion stage carried for each extra ego, parallel
    /// to `extra_egos`. [`WorldInstance::ensure_ego_stages`] fills any
    /// missing tail via [`WorldInstance::derive_ego_stage`], so this one
    /// derivation is authoritative — worldgen and the runner no longer
    /// each derive their own copy.
    pub extra_ego_stages: Vec<ScenarioWorld>,
    /// Through-obstacle radio penetration loss override, dB (`None` keeps
    /// the medium's profile default). Tunnel/bridge worlds raise it so
    /// the structure genuinely partitions the mesh.
    pub obstacle_loss_db: Option<f64>,
}

/// One extra query origin: the portal it enters from and the goal whose
/// approach path its personal occlusion grid is derived along (via
/// [`ScenarioWorld::derive`], exactly like the primary ego's).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EgoRoute {
    /// Portal arm this ego enters (and re-enters) from.
    pub arm: usize,
    /// Goal portal whose path from `arm` the occlusion derivation walks.
    pub goal_arm: usize,
}

impl WorldInstance {
    /// The canonical "looking around the corner" stage: four-way
    /// intersection, corner buildings, ego from the south, agents parked
    /// in the occluded corridor — exactly the world the paper evaluates.
    pub fn canonical(cfg: &ScenarioConfig) -> Self {
        let stage = ScenarioWorld::build(
            cfg.arm_length,
            cfg.speed_limit,
            cfg.building_setback,
            cfg.building_size,
        );
        // Hidden ground-truth agents parked in the occluded corridor.
        let hidden_agents: Vec<Vec2> = (0..cfg.hidden_agents)
            .map(|i| Vec2::new(55.0 + 15.0 * i as f64, 2.0))
            .collect();
        WorldInstance {
            stage,
            ego_arm: 0,
            hidden_agents,
            parked: Vec::new(),
            arrival_window_s: 20.0,
            schedule: FleetSchedule::default(),
            extra_egos: Vec::new(),
            extra_ego_stages: Vec::new(),
            obstacle_loss_db: None,
        }
    }

    /// The one authoritative per-ego occlusion derivation: walks `route`'s
    /// approach path through this instance's geometry with the default
    /// occlusion parameters (arms taken modulo the map's arm count).
    /// Returns `None` when the path induces no occluded corridor.
    pub fn derive_ego_stage(&self, route: EgoRoute) -> Option<ScenarioWorld> {
        let arms = self.stage.net.arm_count();
        ScenarioWorld::derive(
            self.stage.net.clone(),
            self.stage.world.clone(),
            self.stage.net.approach_node(route.arm % arms),
            self.stage.net.exit_node(route.goal_arm % arms),
            &OcclusionParams::default(),
        )
    }

    /// Fills `extra_ego_stages` so every route in `extra_egos` carries its
    /// derived stage (falling back to the shared primary stage when the
    /// route derives no corridor of its own). Idempotent; stages already
    /// carried — e.g. by `worldgen::assign_extra_egos` — are kept.
    pub fn ensure_ego_stages(&mut self) {
        for k in self.extra_ego_stages.len()..self.extra_egos.len() {
            let route = self.extra_egos[k];
            let stage = self
                .derive_ego_stage(route)
                .unwrap_or_else(|| self.stage.clone());
            self.extra_ego_stages.push(stage);
        }
    }
}

/// Everything a scenario run measures.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Strategy label.
    pub strategy: String,
    /// Simulated seconds.
    pub duration_s: f64,
    /// Fleet size.
    pub vehicles: usize,
    /// Perception tasks issued by the ego.
    pub tasks_submitted: u64,
    /// Tasks that produced a usable view.
    pub tasks_completed: u64,
    /// Tasks that failed or missed their deadline.
    pub tasks_failed: u64,
    /// `completed / submitted`.
    pub completion_rate: f64,
    /// Mean end-to-end latency, ms.
    pub latency_mean_ms: f64,
    /// Median latency, ms.
    pub latency_p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub latency_p95_ms: f64,
    /// Worst latency, ms.
    pub latency_max_ms: f64,
    /// Bytes put on the V2V air (beacons, offers, results, raw frames).
    pub mesh_bytes: u64,
    /// Bytes over the cellular path.
    pub cellular_bytes: u64,
    /// `(mesh + cellular) / completed`, bytes per successful view.
    pub bytes_per_task: f64,
    /// Mean observed fraction of the hidden region with cooperation.
    pub mean_coverage: f64,
    /// Mean observed fraction with the ego's own sensors only.
    pub ego_only_coverage: f64,
    /// First time the hidden agent appeared in the ego's fused view, s.
    pub time_to_detect_s: Option<f64>,
    /// Time for the ego to see its first mesh member, s.
    pub mesh_formation_s: Option<f64>,
    /// Mean mesh size observed by the ego.
    pub mean_members: f64,
    /// Fleet-wide membership joins.
    pub joins: u64,
    /// Fleet-wide membership leaves.
    pub leaves: u64,
    /// Mean fraction of each helper ECU's capacity actually used.
    pub mean_executor_utilization: f64,
    /// Completed tasks whose outputs were corrupt (byzantine slipped by).
    pub invalid_results_accepted: u64,
    /// Fleet-wide offload offers sent.
    pub offers_sent: u64,
    /// Fleet-wide results returned by executors.
    pub results_returned: u64,
    /// Full latency sample list, ms (for CDF plots).
    pub latencies_ms: Vec<f64>,
    /// Concurrent query origins (the primary ego plus extras).
    pub egos: usize,
    /// Mid-run vehicle arrivals applied from the fleet schedule.
    pub lifecycle_spawns: u64,
    /// Mid-run vehicle departures applied from the fleet schedule.
    pub lifecycle_despawns: u64,
    /// Lowest per-ego completion rate (1.0 for an ego that submitted
    /// nothing) — the fairness floor across concurrent query origins.
    pub ego_completion_min: f64,
    /// Highest minus lowest per-ego completion rate.
    pub ego_completion_spread: f64,
    /// Worst per-ego median latency, ms (deterministic histogram bucket
    /// upper bound from the telemetry registry).
    pub ego_p50_worst_ms: f64,
    /// Worst per-ego 95th-percentile latency, ms (bucket upper bound).
    pub ego_p95_worst_ms: f64,
    /// Median submit→first-offer time across completed queries, ms — the
    /// discovery stage of the critical path. Strategies that never use
    /// the offload protocol book their whole latency under `exec`. All
    /// ten stage columns come from the always-on [`QueryTracer`] book,
    /// so they are identical whether span recording is on or off.
    pub lat_discover_p50_ms: f64,
    /// 95th-percentile discovery time, ms.
    pub lat_discover_p95_ms: f64,
    /// Median first-offer→winning-offer time (helper selection), ms.
    pub lat_select_p50_ms: f64,
    /// 95th-percentile selection time, ms.
    pub lat_select_p95_ms: f64,
    /// Median winning-offer radio flight time (MAC queue + contention +
    /// airtime + propagation), ms.
    pub lat_radio_p50_ms: f64,
    /// 95th-percentile radio flight time, ms.
    pub lat_radio_p95_ms: f64,
    /// Median remote-execution time (offer delivery → result ready), ms.
    pub lat_exec_p50_ms: f64,
    /// 95th-percentile remote-execution time, ms.
    pub lat_exec_p95_ms: f64,
    /// Median result-return time (result ready → completion), ms.
    pub lat_return_p50_ms: f64,
    /// 95th-percentile result-return time, ms.
    pub lat_return_p95_ms: f64,
}

/// One scheduled scenario event. Wire payloads ride behind an `Rc` so a
/// broadcast's N deliveries share one heap copy until each receiver takes
/// (or, for the last one, steals) its own — and so the queue's elements
/// stay small for cheap heap sifts.
#[derive(Clone, Debug)]
enum ScenMsg {
    Tick,
    Deliver {
        from: NodeAddr,
        to: NodeAddr,
        msg: Rc<WireMsg>,
    },
    TransmitAt {
        src: NodeAddr,
        to: NodeAddr,
        msg: Rc<WireMsg>,
    },
    CloudView {
        ego: usize,
        task: u64,
        submitted: SimTime,
        grid: Vec<i64>,
    },
    RawView {
        ego: usize,
        task: u64,
        submitted: SimTime,
        grid: Vec<i64>,
    },
}

/// One query origin's private view of the run: its own derived occlusion
/// grid, its own local-compute fallback, and its own bookkeeping. Index 0
/// is the primary ego; extras come from [`WorldInstance::extra_egos`].
struct EgoState {
    addr: NodeAddr,
    stage: ScenarioWorld,
    local: LocalOnly,
    task_gas_budget: u64,
    submitted: u64,
    completed: u64,
    failed: u64,
    invalid_accepted: u64,
    latencies_ms: Vec<f64>,
    coverage: Vec<f64>,
    ego_only: Vec<f64>,
    detect_time: Option<SimTime>,
}

impl EgoState {
    fn new(addr: NodeAddr, stage: ScenarioWorld, task_gas_budget: u64, local: LocalOnly) -> Self {
        EgoState {
            addr,
            stage,
            local,
            task_gas_budget,
            submitted: 0,
            completed: 0,
            failed: 0,
            invalid_accepted: 0,
            latencies_ms: Vec::new(),
            coverage: Vec::new(),
            ego_only: Vec::new(),
            detect_time: None,
        }
    }
}

struct WorldState {
    cfg: ScenarioConfig,
    stage: ScenarioWorld,
    fleet: Fleet,
    medium: RadioMedium,
    cloud: Option<CloudOffload>,
    egos: Vec<EgoState>,
    /// Distinct per-ego grids every vehicle's sensor refresh rasterizes
    /// (deduplicated, so a single ego keeps the historical single insert).
    sensor_stages: Vec<ScenarioWorld>,
    /// One prebuilt line-of-sight index per sensor stage, in stage order:
    /// the refresh loop is vehicles × stages × cells, so its LOS tests
    /// must not rescan every obstacle on city-scale worlds.
    sensor_los: Vec<airdnd_geo::ObstacleIndex>,
    hidden_agents: Vec<Vec2>,
    schedule: FleetSchedule,
    schedule_cursor: usize,
    lifecycle_rng: SimRng,
    spawns: u64,
    despawns: u64,
    tick_count: u64,
    next_task: u64,
    /// task id → (submitting ego index, submit time).
    task_submit_times: std::collections::BTreeMap<u64, (usize, SimTime)>,
    member_samples: Vec<f64>,
    mesh_formation: Option<SimTime>,
    joins: u64,
    leaves: u64,
    /// Typed events, deterministic metrics and phase attribution. The
    /// registry inside is always populated (fairness fields read from
    /// it); event/profile recording obeys the run's `TelemetryOptions`.
    /// Nothing here feeds back into simulation state, RNG streams or
    /// scheduling — telemetry on vs off is byte-identical in the report.
    telemetry: RunTelemetry,
    /// Always-on critical-path book (and, when spans are enabled, the
    /// per-query span-tree recorder). Deterministic integer bookkeeping
    /// only — the stage columns it feeds are part of the report whether
    /// span recording is on or off.
    tracer: QueryTracer,
}

impl WorldState {
    /// Position of the vehicle hosting ego `ego`.
    fn ego_pos(&self, ego: usize) -> Vec2 {
        let idx = self
            .fleet
            .index_of(self.egos[ego].addr)
            .expect("ego vehicles never despawn");
        self.fleet.get(idx).expect("ego slot live").pos()
    }

    fn ego_grid(&self, ego: usize) -> Vec<i64> {
        let pos = self.ego_pos(ego);
        self.egos[ego]
            .stage
            .rasterize(pos, self.cfg.sensor_range, &self.hidden_agents)
    }

    fn record_view(
        &mut self,
        now: SimTime,
        submitted: SimTime,
        remote: &[i64],
        ego: usize,
        task: u64,
    ) {
        let mut fused = self.ego_grid(ego);
        let valid = remote.len() == fused.len() && is_valid_grid(remote);
        if valid {
            fuse_max(&mut fused, remote);
        } else {
            self.egos[ego].invalid_accepted += 1;
            self.telemetry
                .metrics
                .inc("invalid_results_accepted", Scope::Ego(ego as u32));
        }
        let own = observed_fraction(&self.ego_grid(ego));
        let hit = self.egos[ego].detect_time.is_none() && {
            let stage = &self.egos[ego].stage;
            self.hidden_agents
                .iter()
                .filter_map(|&a| stage.cell_of(a))
                .any(|idx| fused.get(idx) == Some(&1))
        };
        let latency = now.saturating_since(submitted);
        let state = &mut self.egos[ego];
        state.completed += 1;
        state.latencies_ms.push(latency.as_millis_f64());
        state.coverage.push(observed_fraction(&fused));
        state.ego_only.push(own);
        if hit {
            state.detect_time = Some(now);
        }
        let actor = self.egos[ego].addr.raw() as u32;
        let latency_us = latency.as_nanos() / 1_000;
        // Close the query's span tree and book its critical-path stage
        // budget. Tasks the tracer never saw submitted (cloud / raw /
        // local strategies) attribute their whole latency to execution.
        let budget = self
            .tracer
            .complete(&mut self.telemetry.spans, task, now)
            .unwrap_or_else(|| StageBudget::all_exec(task, latency_us));
        self.tracer.push_sample(budget);
        self.telemetry
            .metrics
            .inc("tasks_completed", Scope::Ego(ego as u32));
        self.telemetry
            .metrics
            .observe_us("task_latency_us", Scope::Ego(ego as u32), latency_us);
        self.telemetry.event(
            now,
            actor,
            EventKind::TaskComplete {
                task,
                ego: ego as u32,
                latency_us,
            },
        );
    }

    /// Books one dropped frame: the typed event plus the always-on
    /// registry counters (`frame_drops`, and `frame_drops_queue_cap` for
    /// bounded-MAC sheds — the G5 saturation signal).
    fn record_frame_drop(
        &mut self,
        now: SimTime,
        from: NodeAddr,
        to: Option<NodeAddr>,
        bytes: u64,
        reason: DropReason,
    ) {
        self.telemetry.metrics.inc("frame_drops", Scope::Global);
        if reason == DropReason::QueueCap {
            self.telemetry
                .metrics
                .inc("frame_drops_queue_cap", Scope::Global);
        }
        self.telemetry.event(
            now,
            from.raw() as u32,
            EventKind::FrameDrop {
                from: from.raw() as u32,
                to: to.map(|t| t.raw() as u32),
                bytes,
                reason,
            },
        );
    }

    /// Books one failed/expired task for `ego` — counters, registry and
    /// (when enabled) the typed event, in one place so every failure path
    /// stays consistent.
    fn record_failure(&mut self, now: SimTime, ego: usize, task: u64) {
        self.tracer.fail(&mut self.telemetry.spans, task, now);
        self.egos[ego].failed += 1;
        self.telemetry
            .metrics
            .inc("tasks_failed", Scope::Ego(ego as u32));
        let actor = self.egos[ego].addr.raw() as u32;
        self.telemetry.event(
            now,
            actor,
            EventKind::TaskExpire {
                task,
                ego: ego as u32,
            },
        );
    }

    /// Gas budget of one perception kernel on ego `ego`'s grid (measured
    /// once at startup — execution is deterministic — plus headroom).
    fn task_gas(&self, ego: usize) -> u64 {
        self.egos[ego].task_gas_budget
    }

    fn perception_task(&mut self, now: SimTime, ego: usize) -> TaskSpec {
        let cells = self.egos[ego].stage.cell_count() as u32;
        self.next_task += 1;
        let id = TaskId::new(self.next_task);
        self.task_submit_times.insert(id.raw(), (ego, now));
        let query = DataQuery {
            data_type: DataType::OccupancyGrid,
            requirement: QualityRequirement {
                max_age: SimDuration::from_secs(1),
                required_region: Some(self.egos[ego].stage.hidden_region),
                min_coverage_fraction: 0.3,
                ..Default::default()
            },
        };
        TaskSpec::new(
            id,
            "corner-view",
            library::burn_and_echo(self.cfg.task_compute_rounds).into_inner(),
        )
        .with_input(query)
        .with_requirements(ResourceRequirements {
            gas: self.task_gas(ego),
            memory_bytes: 1 << 16,
            input_bytes: 512,
            output_bytes: cells as u64 * 8,
            deadline: SimDuration::from_secs(1),
        })
    }
}

/// The event handlers: each popped timeline event is dispatched straight
/// into these `&mut self` methods — no actor mailbox, no `Rc<RefCell<..>>`
/// round-trips, no dynamic dispatch.
impl WorldState {
    /// Deposits `start`'s elapsed wall-clock under `phase`. `start` is
    /// `None` when profiling is off, making this a no-op.
    fn profile(&mut self, start: Option<Instant>, phase: Phase) {
        if let Some(start) = start {
            self.telemetry
                .phases
                .record_nanos(phase, start.elapsed().as_nanos());
        }
    }

    fn process_actions(
        &mut self,
        tl: &mut Timeline<ScenMsg>,
        now: SimTime,
        src: NodeAddr,
        actions: Vec<NodeAction>,
    ) {
        for action in actions {
            match action {
                NodeAction::Broadcast(msg) => {
                    let size = msg.wire_size_bytes();
                    let drops_before = self.medium.queue_drops();
                    let (deliveries, _) = self.medium.broadcast(now, src, size);
                    self.telemetry.event(
                        now,
                        src.raw() as u32,
                        EventKind::FrameTx {
                            from: src.raw() as u32,
                            to: None,
                            bytes: size,
                        },
                    );
                    // A broadcast shed by the bounded MAC queue returns no
                    // deliveries and bumps the medium's drop counter — make
                    // that saturation visible as a typed event.
                    if self.medium.queue_drops() > drops_before {
                        self.record_frame_drop(now, src, None, size, DropReason::QueueCap);
                    }
                    let msg = Rc::new(msg);
                    for d in deliveries {
                        tl.schedule_at(
                            now + d.at.saturating_since(now),
                            ScenMsg::Deliver {
                                from: src,
                                to: d.to,
                                msg: Rc::clone(&msg),
                            },
                        );
                    }
                }
                NodeAction::Send { to, msg } => {
                    let size = msg.wire_size_bytes();
                    let (outcome, _) = self.medium.unicast(now, src, to, size);
                    if let WireMsg::Offload(OffloadMsg::Offer { task, .. }) = &msg {
                        self.tracer.offer_sent(
                            &mut self.telemetry.spans,
                            task.id.raw(),
                            to.raw() as u32,
                            now,
                            outcome.delivered_at(),
                        );
                        self.telemetry.event(
                            now,
                            src.raw() as u32,
                            EventKind::TaskOffload {
                                task: task.id.raw(),
                                executor: to.raw() as u32,
                            },
                        );
                    }
                    self.telemetry.event(
                        now,
                        src.raw() as u32,
                        EventKind::FrameTx {
                            from: src.raw() as u32,
                            to: Some(to.raw() as u32),
                            bytes: size,
                        },
                    );
                    if !matches!(outcome, DeliveryOutcome::Delivered { .. }) {
                        self.record_frame_drop(now, src, Some(to), size, drop_reason(&outcome));
                    }
                    if let DeliveryOutcome::Delivered { at, .. } = outcome {
                        tl.schedule_at(
                            now + at.saturating_since(now),
                            ScenMsg::Deliver {
                                from: src,
                                to,
                                msg: Rc::new(msg),
                            },
                        );
                    }
                }
                NodeAction::SendAt { to, at, msg } => {
                    // A deferred Result frame is the helper finishing the
                    // offloaded kernel: execution started when the offer
                    // arrived (now) and the result is ready at `at`.
                    if let WireMsg::Offload(OffloadMsg::Result { task, .. }) = &msg {
                        self.tracer.result_ready(
                            &mut self.telemetry.spans,
                            task.raw(),
                            src.raw() as u32,
                            now,
                            now + at.saturating_since(now),
                        );
                    }
                    tl.schedule_at(
                        now + at.saturating_since(now),
                        ScenMsg::TransmitAt {
                            src,
                            to,
                            msg: Rc::new(msg),
                        },
                    );
                }
                NodeAction::Outcome { task, outcome } => {
                    let (ego, submitted) = self
                        .task_submit_times
                        .remove(&task.raw())
                        .unwrap_or((0, now));
                    match outcome {
                        TaskOutcome::Completed { outputs, .. } => {
                            self.record_view(now, submitted, &outputs, ego, task.raw());
                        }
                        TaskOutcome::Failed { .. } => {
                            self.record_failure(now, ego, task.raw());
                        }
                    }
                }
                NodeAction::MeshJoined(_) => {
                    self.joins += 1;
                    if src == self.fleet.ego().node.addr() && self.mesh_formation.is_none() {
                        self.mesh_formation = Some(now);
                    }
                    self.telemetry
                        .metrics
                        .inc("mesh_joins", Scope::Node(src.raw() as u32));
                    self.telemetry.metrics.inc("mesh_joins", Scope::Global);
                    self.telemetry.event(
                        now,
                        src.raw() as u32,
                        EventKind::MeshJoin {
                            node: src.raw() as u32,
                        },
                    );
                }
                NodeAction::MeshLeft(_) => {
                    self.leaves += 1;
                    self.telemetry
                        .metrics
                        .inc("mesh_leaves", Scope::Node(src.raw() as u32));
                    self.telemetry.metrics.inc("mesh_leaves", Scope::Global);
                    self.telemetry.event(
                        now,
                        src.raw() as u32,
                        EventKind::MeshLeave {
                            node: src.raw() as u32,
                        },
                    );
                }
            }
        }
    }

    /// Applies every fleet event due at this tick boundary: spawns join
    /// the mesh population, despawns leave it (gracefully or abruptly).
    fn apply_lifecycle(&mut self, tl: &mut Timeline<ScenMsg>, now: SimTime) {
        loop {
            let event = match self.schedule.events.get(self.schedule_cursor) {
                Some(&event) if event.at_s <= now.as_secs_f64() => {
                    self.schedule_cursor += 1;
                    event
                }
                _ => break,
            };
            match event.action {
                FleetAction::Spawn { arm } => {
                    let arm = arm % self.stage.net.arm_count();
                    let (lo, hi) = self.cfg.gas_rate_range;
                    let gas_rate = if hi > lo {
                        self.lifecycle_rng.gen_range(lo..=hi)
                    } else {
                        lo
                    };
                    // Arrivals are helpers, so they draw the same
                    // byzantine lottery the initial fleet did —
                    // churn must not dilute the corrupt population.
                    let byzantine = self.lifecycle_rng.chance(self.cfg.byzantine_fraction);
                    // Fork tag = how many spawns have been applied,
                    // so each arrival gets its own stream.
                    let rng = self.lifecycle_rng.fork(self.spawns);
                    let (sensor_range, orch, mesh) =
                        (self.cfg.sensor_range, self.cfg.orch, self.cfg.mesh);
                    let WorldState {
                        fleet,
                        stage,
                        medium,
                        ..
                    } = self;
                    let addr =
                        fleet.push_mobile(stage, arm, gas_rate, sensor_range, orch, mesh, rng);
                    let slot = fleet.index_of(addr).expect("just pushed");
                    let vehicle = fleet.get_mut(slot).expect("just pushed");
                    if byzantine {
                        vehicle.node.executor_mut().set_byzantine(true);
                    }
                    let pos = vehicle.pos();
                    medium.set_position(addr, pos);
                    self.spawns += 1;
                    self.telemetry.event(
                        now,
                        addr.raw() as u32,
                        EventKind::LifecycleSpawn {
                            node: addr.raw() as u32,
                        },
                    );
                }
                FleetAction::Despawn { graceful } => {
                    // Oldest eligible vehicle: mobile, not a query origin.
                    // The fleet keeps the candidates in an ordered set, so
                    // this is O(log n) per despawn where it used to be an
                    // O(fleet × egos) scan — the pick itself is unchanged
                    // (smallest eligible address == first eligible vehicle
                    // in fleet order).
                    let Some(addr) = self.fleet.despawn_candidate() else {
                        continue;
                    };
                    if graceful {
                        let idx = self.fleet.index_of(addr).expect("victim present");
                        let actions = self
                            .fleet
                            .get_mut(idx)
                            .expect("victim live")
                            .node
                            .leave(now);
                        self.process_actions(tl, now, addr, actions);
                    }
                    self.fleet.remove(addr);
                    self.medium.remove_node(addr);
                    self.despawns += 1;
                    self.telemetry.event(
                        now,
                        addr.raw() as u32,
                        EventKind::LifecycleDespawn {
                            node: addr.raw() as u32,
                            graceful,
                        },
                    );
                }
            }
        }
    }

    fn tick(&mut self, tl: &mut Timeline<ScenMsg>, now: SimTime) {
        let profiling = self.telemetry.phases.is_enabled();
        let started = profiling.then(Instant::now);
        self.apply_lifecycle(tl, now);
        self.profile(started, Phase::Lifecycle);

        let started = profiling.then(Instant::now);
        self.tick_count += 1;
        let dt = self.cfg.tick.as_secs_f64();
        {
            // Split borrow: mobility reads the stage while mutating the
            // fleet, so destructure instead of cloning the world per tick.
            let WorldState {
                fleet,
                stage,
                medium,
                ..
            } = self;
            fleet.step_all(stage, dt);
            for i in 0..fleet.slot_count() {
                if !fleet.kinematics().is_live(i) {
                    continue;
                }
                let pos = fleet.kinematics().positions()[i];
                let vel = fleet.kinematics().velocities()[i];
                let vehicle = fleet.get_mut(i).expect("live slot");
                let addr = vehicle.node.addr();
                medium.set_position(addr, pos);
                vehicle.node.set_kinematics(pos, vel);
            }
        }
        self.profile(started, Phase::Movement);

        // Sensor refresh: every vehicle snapshots each ego's hidden
        // region (one catalog item per distinct grid).
        let started = profiling.then(Instant::now);
        if self
            .tick_count
            .is_multiple_of(self.cfg.sensor_every_ticks as u64)
        {
            let WorldState {
                fleet,
                sensor_stages,
                sensor_los,
                hidden_agents,
                cfg,
                ..
            } = self;
            for vehicle in fleet.iter_mut() {
                let pos = vehicle.pos();
                for (sensed, los) in sensor_stages.iter().zip(sensor_los.iter()) {
                    let grid = sensed.rasterize_with(los, pos, cfg.sensor_range, hidden_agents);
                    vehicle.node.insert_data(
                        DataType::OccupancyGrid,
                        grid,
                        QualityDescriptor {
                            produced_at: now,
                            confidence: 0.9,
                            resolution: 1.0 / sensed.cell_size,
                            coverage: Some(sensed.hidden_region),
                            noise_sigma: 0.0,
                        },
                    );
                }
            }
        }
        self.profile(started, Phase::Sensor);

        // Ego mesh-size sample.
        let members = self.fleet.ego().node.mesh().member_count();
        self.member_samples.push(members as f64);
        let tick_count = self.tick_count;
        let slot_count = self.fleet.slot_count();
        let ego_count = self.egos.len();

        // Node timers (mesh beacons, protocol timeouts). Raw slot loop:
        // `process_actions` may despawn vehicles mid-pass, so consult
        // liveness per slot rather than holding an iterator. Slots only
        // compact between passes (removal never reorders live slots), and
        // any slot appended mid-pass belongs to a spawn that never ticked
        // before this instant anyway.
        let started = profiling.then(Instant::now);
        for i in 0..slot_count {
            let Some(v) = self.fleet.get_mut(i) else {
                continue;
            };
            let addr = v.node.addr();
            let actions = v.node.handle(now, NodeEvent::Tick);
            self.process_actions(tl, now, addr, actions);
        }
        self.profile(started, Phase::Mesh);

        // Perception workload per query origin, paced by the demand profile.
        let started = profiling.then(Instant::now);
        for ego in 0..ego_count {
            let progress = now.as_secs_f64() / self.cfg.duration.as_secs_f64().max(1e-9);
            let ego_pos = self.ego_pos(ego);
            let task_due =
                self.cfg
                    .demand
                    .due(tick_count, self.cfg.task_every_ticks, progress, ego_pos);
            if task_due {
                self.submit_perception(tl, now, ego);
            }
        }
        self.profile(started, Phase::Tasks);

        // Next tick.
        if now + self.cfg.tick <= SimTime::ZERO + self.cfg.duration {
            tl.schedule_at(now + self.cfg.tick, ScenMsg::Tick);
        }
    }

    fn submit_perception(&mut self, tl: &mut Timeline<ScenMsg>, now: SimTime, ego: usize) {
        let ordinal = self.egos[ego].submitted + 1;
        self.telemetry.event(
            now,
            ego as u32,
            EventKind::DemandFire {
                ego: ego as u32,
                task: ordinal,
            },
        );
        self.telemetry
            .metrics
            .inc("tasks_submitted", Scope::Ego(ego as u32));
        match self.cfg.strategy {
            Strategy::Airdnd => {
                self.egos[ego].submitted += 1;
                let spec = self.perception_task(now, ego);
                let addr = self.egos[ego].addr;
                self.tracer.submit(
                    &mut self.telemetry.spans,
                    spec.id.raw(),
                    addr.raw() as u32,
                    now,
                );
                self.telemetry.event(
                    now,
                    addr.raw() as u32,
                    EventKind::TaskSubmit {
                        task: spec.id.raw(),
                        ego: ego as u32,
                    },
                );
                let idx = self.fleet.index_of(addr).expect("ego vehicles persist");
                let actions = self
                    .fleet
                    .get_mut(idx)
                    .expect("ego slot live")
                    .node
                    .submit_task(now, spec, PrivacyLevel::Derived);
                self.process_actions(tl, now, addr, actions);
            }
            Strategy::Cloud { .. } => {
                self.egos[ego].submitted += 1;
                self.next_task += 1;
                let task = self.next_task;
                let submit_actor = self.egos[ego].addr.raw() as u32;
                self.telemetry.event(
                    now,
                    submit_actor,
                    EventKind::TaskSubmit {
                        task,
                        ego: ego as u32,
                    },
                );
                // Every vehicle uploads its raw frame; the cloud fuses all
                // views; the ego downloads the result.
                let raw =
                    DataType::RawFrame(airdnd_data::SensorModality::Camera).typical_size_bytes();
                let gas = self.task_gas(ego);
                let mut last_done = now;
                let WorldState {
                    egos,
                    fleet,
                    cloud,
                    hidden_agents,
                    cfg,
                    ..
                } = self;
                let stage = &egos[ego].stage;
                let result_bytes = stage.cell_count() as u64 * 8;
                let mut fused = vec![-1i64; stage.cell_count()];
                for vehicle in fleet.iter() {
                    let grid = stage.rasterize(vehicle.pos(), cfg.sensor_range, hidden_agents);
                    fuse_max(&mut fused, &grid);
                    let cloud = cloud.as_mut().expect("cloud strategy has a link");
                    let (done, _) = cloud.offload(now, raw, gas, result_bytes);
                    last_done = last_done.max(done);
                }
                tl.schedule_at(
                    now + last_done.saturating_since(now),
                    ScenMsg::CloudView {
                        ego,
                        task,
                        submitted: now,
                        grid: fused,
                    },
                );
            }
            Strategy::RawSharing => {
                self.egos[ego].submitted += 1;
                self.next_task += 1;
                let task = self.next_task;
                let submit_actor = self.egos[ego].addr.raw() as u32;
                self.telemetry.event(
                    now,
                    submit_actor,
                    EventKind::TaskSubmit {
                        task,
                        ego: ego as u32,
                    },
                );
                // Pick the freshest-linked mesh member and pull its frame.
                let ego_addr = self.egos[ego].addr;
                let ego_idx = self.fleet.index_of(ego_addr).expect("ego vehicles persist");
                let descriptor = self
                    .fleet
                    .get(ego_idx)
                    .expect("ego slot live")
                    .node
                    .descriptor(now);
                let best = descriptor
                    .members
                    .iter()
                    .max_by(|a, b| {
                        a.link_quality
                            .partial_cmp(&b.link_quality)
                            .expect("finite")
                            .then(b.addr.cmp(&a.addr))
                    })
                    .map(|m| m.addr);
                let Some(helper_addr) = best else {
                    self.record_failure(now, ego, task);
                    return;
                };
                let Some(helper_idx) = self.fleet.index_of(helper_addr) else {
                    self.record_failure(now, ego, task);
                    return;
                };
                let raw =
                    DataType::RawFrame(airdnd_data::SensorModality::Camera).typical_size_bytes();
                let gas = self.task_gas(ego);
                let agents = self.hidden_agents.clone();
                let helper_pos = self.fleet.get(helper_idx).expect("helper slot live").pos();
                let grid =
                    self.egos[ego]
                        .stage
                        .rasterize(helper_pos, self.cfg.sensor_range, &agents);
                let WorldState { medium, egos, .. } = self;
                let outcome = airdnd_baselines::raw_sharing_completion(
                    medium,
                    &mut egos[ego].local,
                    now,
                    ego_addr,
                    helper_addr,
                    raw,
                    1_400,
                    gas,
                );
                match outcome {
                    Some((done, _bytes)) => {
                        tl.schedule_at(
                            now + done.saturating_since(now),
                            ScenMsg::RawView {
                                ego,
                                task,
                                submitted: now,
                                grid,
                            },
                        );
                    }
                    None => {
                        self.record_failure(now, ego, task);
                    }
                }
            }
            Strategy::LocalOnly => {
                self.egos[ego].submitted += 1;
                self.next_task += 1;
                let task = self.next_task;
                let submit_actor = self.egos[ego].addr.raw() as u32;
                self.telemetry.event(
                    now,
                    submit_actor,
                    EventKind::TaskSubmit {
                        task,
                        ego: ego as u32,
                    },
                );
                let gas = self.task_gas(ego);
                let done = self.egos[ego].local.run(now, gas);
                let grid = self.ego_grid(ego);
                tl.schedule_at(
                    now + done.saturating_since(now),
                    ScenMsg::RawView {
                        ego,
                        task,
                        submitted: now,
                        grid,
                    },
                );
            }
        }
    }
}

/// The timeline dispatcher: one popped event in, state mutations and
/// (possibly) freshly scheduled events out.
impl WorldState {
    fn handle(&mut self, tl: &mut Timeline<ScenMsg>, now: SimTime, msg: ScenMsg) {
        match msg {
            ScenMsg::Tick => self.tick(tl, now),
            ScenMsg::Deliver { from, to, msg } => {
                let started = self.telemetry.phases.is_enabled().then(Instant::now);
                // Offer deliveries run the offloaded kernel synchronously on
                // the helper's TaskVM — that wall-clock is task execution,
                // not medium/protocol work, so it books under `tasks`.
                let phase = if matches!(&*msg, WireMsg::Offload(OffloadMsg::Offer { .. })) {
                    Phase::Tasks
                } else {
                    Phase::Radio
                };
                if self.telemetry.events.is_enabled() {
                    self.telemetry.event(
                        now,
                        to.raw() as u32,
                        EventKind::FrameRx {
                            from: from.raw() as u32,
                            to: to.raw() as u32,
                            bytes: msg.wire_size_bytes(),
                        },
                    );
                }
                if let Some(idx) = self.fleet.index_of(to) {
                    // Last delivery of a broadcast steals the payload;
                    // earlier ones (and racing unicasts) clone it.
                    let msg = Rc::try_unwrap(msg).unwrap_or_else(|rc| (*rc).clone());
                    let v = self.fleet.get_mut(idx).expect("indexed slot live");
                    let addr = v.node.addr();
                    let actions = v.node.handle(now, NodeEvent::Wire { from, msg });
                    self.process_actions(tl, now, addr, actions);
                }
                self.profile(started, phase);
            }
            ScenMsg::TransmitAt { src, to, msg } => {
                let size = msg.wire_size_bytes();
                let outcome = self.medium.unicast(now, src, to, size).0;
                match &*msg {
                    WireMsg::Offload(OffloadMsg::Offer { task, .. }) => {
                        self.tracer.offer_sent(
                            &mut self.telemetry.spans,
                            task.id.raw(),
                            to.raw() as u32,
                            now,
                            outcome.delivered_at(),
                        );
                        self.telemetry.event(
                            now,
                            src.raw() as u32,
                            EventKind::TaskOffload {
                                task: task.id.raw(),
                                executor: to.raw() as u32,
                            },
                        );
                    }
                    WireMsg::Offload(OffloadMsg::Result { task, .. }) => {
                        self.tracer.result_sent(
                            &mut self.telemetry.spans,
                            task.raw(),
                            src.raw() as u32,
                            now,
                            outcome.delivered_at(),
                        );
                    }
                    _ => {}
                }
                self.telemetry.event(
                    now,
                    src.raw() as u32,
                    EventKind::FrameTx {
                        from: src.raw() as u32,
                        to: Some(to.raw() as u32),
                        bytes: size,
                    },
                );
                if !matches!(outcome, DeliveryOutcome::Delivered { .. }) {
                    self.record_frame_drop(now, src, Some(to), size, drop_reason(&outcome));
                }
                if let DeliveryOutcome::Delivered { at, .. } = outcome {
                    tl.schedule_at(
                        now + at.saturating_since(now),
                        ScenMsg::Deliver { from: src, to, msg },
                    );
                }
            }
            ScenMsg::CloudView {
                ego,
                task,
                submitted,
                grid,
            }
            | ScenMsg::RawView {
                ego,
                task,
                submitted,
                grid,
            } => {
                self.record_view(now, submitted, &grid, ego, task);
            }
        }
    }
}

/// Runs one scenario to completion on the canonical corner stage.
///
/// Telemetry obeys the `AIRDND_TELEMETRY` environment variable, which is
/// how CI diffs telemetry-on vs telemetry-off artifacts without a
/// dedicated code path.
pub fn run_scenario(cfg: ScenarioConfig) -> ScenarioReport {
    run_core(
        WorldInstance::canonical(&cfg),
        cfg,
        TelemetryOptions::from_env(),
    )
    .0
}

/// [`run_scenario`] with the event log enabled: returns the report plus up
/// to `capacity` events per category rendered in the legacy trace format —
/// the debug lens `sweep --trace N` exposes.
pub fn run_scenario_traced(cfg: ScenarioConfig, capacity: usize) -> (ScenarioReport, String) {
    let (report, telemetry) = run_core(
        WorldInstance::canonical(&cfg),
        cfg,
        TelemetryOptions::events(capacity),
    );
    (report, telemetry.events.render())
}

/// [`run_scenario`] returning the full [`RunTelemetry`] — typed events,
/// the metrics registry, and (when requested) phase profiling.
pub fn run_scenario_observed(
    cfg: ScenarioConfig,
    opts: TelemetryOptions,
) -> (ScenarioReport, RunTelemetry) {
    run_core(WorldInstance::canonical(&cfg), cfg, opts)
}

/// Runs one scenario on an arbitrary instantiated world (a generated map
/// with its derived occlusion grid). The canonical [`run_scenario`] is the
/// special case `run_scenario_in(WorldInstance::canonical(&cfg), cfg)`.
pub fn run_scenario_in(world: WorldInstance, cfg: ScenarioConfig) -> ScenarioReport {
    run_core(world, cfg, TelemetryOptions::from_env()).0
}

/// [`run_scenario_in`] with the event log enabled.
pub fn run_scenario_in_traced(
    world: WorldInstance,
    cfg: ScenarioConfig,
    capacity: usize,
) -> (ScenarioReport, String) {
    let (report, telemetry) = run_core(world, cfg, TelemetryOptions::events(capacity));
    (report, telemetry.events.render())
}

/// [`run_scenario_in`] returning the full [`RunTelemetry`].
pub fn run_scenario_in_observed(
    world: WorldInstance,
    cfg: ScenarioConfig,
    opts: TelemetryOptions,
) -> (ScenarioReport, RunTelemetry) {
    run_core(world, cfg, opts)
}

fn run_core(
    mut world: WorldInstance,
    cfg: ScenarioConfig,
    opts: TelemetryOptions,
) -> (ScenarioReport, RunTelemetry) {
    world.ensure_ego_stages();
    let WorldInstance {
        stage,
        ego_arm,
        hidden_agents,
        parked,
        arrival_window_s,
        schedule,
        extra_egos,
        extra_ego_stages,
        obstacle_loss_db,
    } = world;
    let mut rng = SimRng::seed_from(cfg.seed);
    let layout = FleetLayout {
        ego_arm,
        parked,
        arrival_window_s,
    };
    let mut fleet = Fleet::spawn(
        &stage,
        cfg.vehicles,
        cfg.gas_rate_range,
        cfg.sensor_range,
        cfg.byzantine_fraction,
        cfg.orch,
        cfg.mesh,
        &layout,
        &mut rng,
    );
    // Query origins: the primary ego plus one vehicle per extra route,
    // each with its own occlusion grid derived along its own path.
    let kernel = library::burn_and_echo(cfg.task_compute_rounds);
    let gas_budget_for = |cells: usize| {
        // Exact kernel cost on this grid, plus 25 % headroom.
        let measured = library::measure_gas(&kernel, &vec![0i64; cells]);
        measured + measured / 4 + 10_000
    };
    let ego_gas = fleet.ego().node.executor().gas_rate();
    let mut egos = vec![EgoState::new(
        fleet.ego().node.addr(),
        stage.clone(),
        gas_budget_for(stage.cell_count()),
        LocalOnly::new(ego_gas),
    )];
    let arms = stage.net.arm_count();
    for (k, route) in extra_egos.iter().enumerate() {
        // Extra egos ride the first mobile helpers; a profile too small to
        // host them simply fields fewer query origins.
        let idx = 1 + k;
        if idx >= cfg.vehicles.min(fleet.len()) {
            break;
        }
        let arm = route.arm % arms;
        let vehicle = fleet.get_mut(idx).expect("initial fleet is dense");
        vehicle.reroute_from(&stage, arm);
        // The instance carries the authoritative derived stage for each
        // extra route (ensure_ego_stages filled any gap above).
        let ego_stage = extra_ego_stages[k].clone();
        let gas_rate = vehicle.node.executor().gas_rate();
        egos.push(EgoState::new(
            vehicle.node.addr(),
            ego_stage.clone(),
            gas_budget_for(ego_stage.cell_count()),
            LocalOnly::new(gas_rate),
        ));
    }
    // Query origins must survive the whole run: take them out of the
    // despawn-victim set once, instead of re-checking the ego list on
    // every despawn event.
    for ego in &egos {
        fleet.protect(ego.addr);
    }
    // Distinct grids the fleet's sensors must cover each refresh.
    let mut sensor_stages: Vec<ScenarioWorld> = Vec::new();
    for ego in &egos {
        if !sensor_stages
            .iter()
            .any(|s| s.hidden_region == ego.stage.hidden_region)
        {
            sensor_stages.push(ego.stage.clone());
        }
    }
    let sensor_los: Vec<airdnd_geo::ObstacleIndex> =
        sensor_stages.iter().map(ScenarioWorld::los_index).collect();
    let mut medium = RadioMedium::v2v(stage.world.clone(), rng.fork(0xC0DE));
    if let Some(loss_db) = obstacle_loss_db {
        medium.set_obstacle_loss_db(loss_db);
    }
    medium.set_max_queue_delay(cfg.radio_queue_cap);
    for v in fleet.iter() {
        medium.set_position(v.node.addr(), v.pos());
    }
    let cloud = match cfg.strategy {
        Strategy::Cloud { fiveg: true } => Some(CloudOffload::fiveg()),
        Strategy::Cloud { fiveg: false } => Some(CloudOffload::lte()),
        _ => None,
    };
    let lifecycle_rng = rng.fork(0x11FE_C7C1);
    let mut state = WorldState {
        cfg,
        stage,
        fleet,
        medium,
        cloud,
        egos,
        sensor_stages,
        sensor_los,
        hidden_agents,
        schedule,
        schedule_cursor: 0,
        lifecycle_rng,
        spawns: 0,
        despawns: 0,
        tick_count: 0,
        next_task: 0,
        task_submit_times: std::collections::BTreeMap::new(),
        member_samples: Vec::new(),
        mesh_formation: None,
        joins: 0,
        leaves: 0,
        telemetry: RunTelemetry::with(opts),
        tracer: QueryTracer::new(),
    };

    // The event loop proper: pop-in-(time, seq)-order until the horizon —
    // the configured duration plus a drain window for in-flight frames.
    let mut timeline: Timeline<ScenMsg> = Timeline::new();
    timeline.schedule_at(SimTime::ZERO, ScenMsg::Tick);
    let horizon = SimTime::ZERO + cfg.duration + SimDuration::from_secs(3);
    while let Some((now, msg)) = timeline.pop_before(horizon) {
        state.handle(&mut timeline, now, msg);
    }
    // Queries still in flight at the horizon expire their spans there so
    // the recorded tree is well-formed (every span closed or expired).
    state.tracer.finish(&mut state.telemetry.spans, horizon);
    let telemetry = std::mem::take(&mut state.telemetry);

    let duration_s = cfg.duration.as_secs_f64();
    let mut fleet_stats = OrchestratorStats::default();
    for v in state.fleet.iter() {
        fleet_stats.merge(v.node.stats());
    }
    let mut utilizations = Vec::new();
    for v in state.fleet.iter().skip(1) {
        let (_, gas) = v.node.executor().totals();
        utilizations.push(gas as f64 / v.node.executor().gas_rate() as f64 / duration_s);
    }
    // Fold the per-ego books into the fleet-level report (sample lists
    // concatenate in ego order; a single ego reproduces the historical
    // aggregation exactly).
    let submitted: u64 = state.egos.iter().map(|e| e.submitted).sum();
    let completed: u64 = state.egos.iter().map(|e| e.completed).sum();
    let failed: u64 = state.egos.iter().map(|e| e.failed).sum();
    let invalid_accepted: u64 = state.egos.iter().map(|e| e.invalid_accepted).sum();
    let latencies: Vec<f64> = state
        .egos
        .iter()
        .flat_map(|e| e.latencies_ms.iter().copied())
        .collect();
    let coverage: Vec<f64> = state
        .egos
        .iter()
        .flat_map(|e| e.coverage.iter().copied())
        .collect();
    let ego_only: Vec<f64> = state
        .egos
        .iter()
        .flat_map(|e| e.ego_only.iter().copied())
        .collect();
    let detect_time = state.egos.iter().filter_map(|e| e.detect_time).min();
    let lat = &latencies;
    let cellular_bytes = state.cloud.as_ref().map_or(0, CloudOffload::bytes_total);
    let mesh_bytes = state.medium.bytes_on_air_total();
    // Per-ego fairness, straight from the deterministic metrics registry:
    // the worst-served ego's completion rate and latency quantiles, plus
    // the completion-rate spread across egos. Integer counters in, so the
    // values are identical whether event logging is on or off.
    let ego_rates: Vec<f64> = (0..state.egos.len())
        .map(|e| {
            let scope = Scope::Ego(e as u32);
            let sub = telemetry.metrics.counter("tasks_submitted", scope);
            let done = telemetry.metrics.counter("tasks_completed", scope);
            if sub == 0 {
                1.0
            } else {
                done as f64 / sub as f64
            }
        })
        .collect();
    let ego_completion_min = ego_rates.iter().copied().fold(1.0, f64::min);
    let ego_completion_spread = ego_rates.iter().copied().fold(0.0, f64::max) - ego_completion_min;
    let worst_quantile_ms = |q: f64| {
        (0..state.egos.len())
            .filter_map(|e| {
                telemetry
                    .metrics
                    .histogram("task_latency_us", Scope::Ego(e as u32))
                    .and_then(|h| h.quantile_us(q))
            })
            .max()
            .map_or(0.0, |us| us as f64 / 1_000.0)
    };
    // Critical-path stage decomposition from the always-on tracer book:
    // one sample per completed query, in completion order, each stage a
    // clamped partition of that query's end-to-end latency.
    let stage_quantile_ms = |stage_us: fn(&StageBudget) -> u64, q: f64| {
        let samples: Vec<f64> = state
            .tracer
            .samples()
            .iter()
            .map(|b| stage_us(b) as f64 / 1_000.0)
            .collect();
        percentile(&samples, q).unwrap_or(0.0)
    };
    let report = ScenarioReport {
        strategy: cfg.strategy.label().to_owned(),
        duration_s,
        vehicles: state.fleet.len(),
        tasks_submitted: submitted,
        tasks_completed: completed,
        tasks_failed: failed,
        completion_rate: if submitted == 0 {
            1.0
        } else {
            completed as f64 / submitted as f64
        },
        latency_mean_ms: if lat.is_empty() {
            0.0
        } else {
            lat.iter().sum::<f64>() / lat.len() as f64
        },
        latency_p50_ms: percentile(lat, 0.5).unwrap_or(0.0),
        latency_p95_ms: percentile(lat, 0.95).unwrap_or(0.0),
        latency_max_ms: lat.iter().copied().fold(0.0, f64::max),
        mesh_bytes,
        cellular_bytes,
        bytes_per_task: if completed == 0 {
            (mesh_bytes + cellular_bytes) as f64
        } else {
            (mesh_bytes + cellular_bytes) as f64 / completed as f64
        },
        mean_coverage: mean(&coverage),
        ego_only_coverage: mean(&ego_only),
        time_to_detect_s: detect_time.map(|t| t.as_secs_f64()),
        mesh_formation_s: state.mesh_formation.map(|t| t.as_secs_f64()),
        mean_members: mean(&state.member_samples),
        joins: state.joins,
        leaves: state.leaves,
        mean_executor_utilization: mean(&utilizations),
        invalid_results_accepted: invalid_accepted,
        offers_sent: fleet_stats.offers_sent,
        results_returned: fleet_stats.results_returned,
        latencies_ms: lat.clone(),
        egos: state.egos.len(),
        lifecycle_spawns: state.spawns,
        lifecycle_despawns: state.despawns,
        ego_completion_min,
        ego_completion_spread,
        ego_p50_worst_ms: worst_quantile_ms(0.5),
        ego_p95_worst_ms: worst_quantile_ms(0.95),
        lat_discover_p50_ms: stage_quantile_ms(|b| b.discover_us, 0.5),
        lat_discover_p95_ms: stage_quantile_ms(|b| b.discover_us, 0.95),
        lat_select_p50_ms: stage_quantile_ms(|b| b.select_us, 0.5),
        lat_select_p95_ms: stage_quantile_ms(|b| b.select_us, 0.95),
        lat_radio_p50_ms: stage_quantile_ms(|b| b.radio_us, 0.5),
        lat_radio_p95_ms: stage_quantile_ms(|b| b.radio_us, 0.95),
        lat_exec_p50_ms: stage_quantile_ms(|b| b.exec_us, 0.5),
        lat_exec_p95_ms: stage_quantile_ms(|b| b.exec_us, 0.95),
        lat_return_p50_ms: stage_quantile_ms(|b| b.return_us, 0.5),
        lat_return_p95_ms: stage_quantile_ms(|b| b.return_us, 0.95),
    };
    (report, telemetry)
}

/// Why a unicast never arrived. The bounded-MAC queue-cap path is the
/// only one that reports `Lost` without a single transmission attempt
/// (channel losses burn their full retry budget first).
fn drop_reason(outcome: &DeliveryOutcome) -> DropReason {
    match outcome {
        DeliveryOutcome::Unreachable => DropReason::Unreachable,
        DeliveryOutcome::Lost { attempts: 0 } => DropReason::QueueCap,
        _ => DropReason::Channel,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(strategy: Strategy, seed: u64) -> ScenarioReport {
        run_scenario(ScenarioConfig {
            seed,
            vehicles: 8,
            duration: SimDuration::from_secs(20),
            strategy,
            ..Default::default()
        })
    }

    #[test]
    fn airdnd_run_completes_tasks() {
        let r = quick(Strategy::Airdnd, 1);
        assert!(r.tasks_submitted > 10, "submitted {}", r.tasks_submitted);
        assert!(r.completion_rate > 0.5, "completion {}", r.completion_rate);
        assert!(r.mesh_formation_s.is_some(), "mesh must form");
        assert!(
            r.mean_members >= 1.0,
            "ego should keep members, got {}",
            r.mean_members
        );
        assert!(r.latency_p50_ms > 0.0 && r.latency_p50_ms < 1_000.0);
        assert!(r.mesh_bytes > 0);
        assert_eq!(r.cellular_bytes, 0);
    }

    #[test]
    fn cooperation_beats_ego_only_coverage() {
        let r = quick(Strategy::Airdnd, 2);
        assert!(
            r.mean_coverage > r.ego_only_coverage + 0.05,
            "cooperation must widen the view: {} vs {}",
            r.mean_coverage,
            r.ego_only_coverage
        );
    }

    #[test]
    fn cloud_moves_more_bytes_than_airdnd() {
        let airdnd = quick(Strategy::Airdnd, 3);
        let cloud = quick(Strategy::Cloud { fiveg: true }, 3);
        assert!(cloud.cellular_bytes > 0);
        assert!(
            cloud.bytes_per_task > 10.0 * airdnd.bytes_per_task,
            "raw-to-cloud must dwarf task-to-data: {} vs {}",
            cloud.bytes_per_task,
            airdnd.bytes_per_task
        );
    }

    #[test]
    fn local_only_gains_nothing_from_the_fleet() {
        let local = quick(Strategy::LocalOnly, 4);
        // The local strategy's "remote" view is the ego's own grid from
        // submit time; the vehicle moves a little before completion, so
        // the two coverages agree only up to that drift.
        assert!(
            (local.mean_coverage - local.ego_only_coverage).abs() < 0.05,
            "{} vs {}",
            local.mean_coverage,
            local.ego_only_coverage
        );
        // The mesh still beacons underneath (it is just unused for
        // perception), so mesh bytes are nonzero.
        assert!(local.mesh_bytes > 0);
        // AirDnD fuses remote views on top of the ego's own, so its
        // coverage can never fall below ego-only (strict improvement is
        // asserted on another seed in `cooperation_beats_ego_only_coverage`).
        let airdnd = quick(Strategy::Airdnd, 4);
        assert!(airdnd.mean_coverage >= airdnd.ego_only_coverage - 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = quick(Strategy::Airdnd, 7);
        let b = quick(Strategy::Airdnd, 7);
        assert_eq!(a.tasks_submitted, b.tasks_submitted);
        assert_eq!(a.tasks_completed, b.tasks_completed);
        assert_eq!(a.latencies_ms, b.latencies_ms);
        assert_eq!(a.mesh_bytes, b.mesh_bytes);
    }
}
