//! # airdnd-scenario — "looking around the corner", end to end
//!
//! The paper evaluates AirDnD on an autonomous vehicle approaching an
//! occluded intersection, collecting *computational results* (not raw
//! data) from nearby vehicles. This crate is that evaluation: a closed
//! loop binding every other crate —
//!
//! * a four-way intersection with corner buildings ([`world`]),
//! * a heterogeneous vehicle fleet with IDM mobility and full
//!   [`OrchestratorNode`](airdnd_core::OrchestratorNode)s ([`fleet`]),
//! * synthetic perception: each vehicle rasterizes its view of the shared
//!   *hidden region* behind the corner into an occupancy grid, catalogued
//!   as Model-3 data ([`perception`]),
//! * the simulation driver: a deterministic event loop routing every
//!   protocol frame through the radio medium, executing offloaded TaskVM
//!   kernels on helper vehicles, and scoring coverage against ground truth
//!   ([`runner`]).
//!
//! Strategies ([`Strategy`]) swap the cooperation mechanism — AirDnD mesh
//! offloading, cellular cloud, raw-data V2V sharing, or no cooperation —
//! over the *same* world, fleet and task stream, which is what the F2–F4
//! experiments report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demand;
pub mod fleet;
pub mod lifecycle;
pub mod perception;
pub mod runner;
pub mod world;

pub use demand::DemandProfile;
pub use fleet::{Fleet, FleetLayout, Vehicle, VehicleKind};
pub use lifecycle::{FleetAction, FleetEvent, FleetSchedule};
pub use perception::{fuse_max, observed_fraction, occupied_cells};
pub use runner::{
    run_scenario, run_scenario_in, run_scenario_in_observed, run_scenario_in_traced,
    run_scenario_observed, run_scenario_traced, EgoRoute, ScenarioConfig, ScenarioReport, Strategy,
    WorldInstance,
};
pub use world::{OcclusionParams, ScenarioWorld};

// Observability surface: re-exported so downstream crates (bench, sweep)
// query runs without naming the telemetry crate directly.
pub use airdnd_telemetry::{
    extract, validate_spans, DropReason, EventCategory, EventKind, Phase, RunTelemetry, Scope,
    Span, SpanKind, SpanLog, SpanStatus, Stage, StageBudget, TelemetryOptions, TraceQuery,
};
