//! Occupancy-grid perception helpers: fusion and coverage metrics.
//!
//! Grids use the three-value encoding from
//! [`ScenarioWorld::rasterize`](crate::world::ScenarioWorld::rasterize):
//! `-1` unobserved, `0` observed-free, `1` observed-occupied. Fusing two
//! views is a cell-wise max — the same operation the offloaded
//! [`grid_fuse`](airdnd_task::library::grid_fuse) kernel performs on the
//! helper vehicle.

/// Cell-wise max fusion of `b` into `a`.
///
/// # Panics
///
/// Panics if the grids differ in length.
pub fn fuse_max(a: &mut [i64], b: &[i64]) {
    assert_eq!(a.len(), b.len(), "grids must share the geometry");
    for (x, &y) in a.iter_mut().zip(b) {
        *x = (*x).max(y);
    }
}

/// Fraction of cells observed (`≥ 0`), in `[0, 1]`; 0.0 for empty grids.
pub fn observed_fraction(grid: &[i64]) -> f64 {
    if grid.is_empty() {
        return 0.0;
    }
    grid.iter().filter(|&&c| c >= 0).count() as f64 / grid.len() as f64
}

/// Indices of cells marked occupied.
pub fn occupied_cells(grid: &[i64]) -> Vec<usize> {
    grid.iter()
        .enumerate()
        .filter(|(_, &c)| c == 1)
        .map(|(i, _)| i)
        .collect()
}

/// `true` if every value is a legal grid cell (`-1`, `0` or `1`) — used to
/// detect byzantine-corrupted results in the trust experiments.
pub fn is_valid_grid(grid: &[i64]) -> bool {
    grid.iter().all(|c| (-1..=1).contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuse_prefers_information() {
        let mut a = vec![-1, 0, 1, -1];
        let b = vec![0, -1, 0, 1];
        fuse_max(&mut a, &b);
        assert_eq!(a, vec![0, 0, 1, 1]);
    }

    #[test]
    fn fuse_is_idempotent_and_commutative() {
        let x = vec![-1, 0, 1];
        let y = vec![1, -1, 0];
        let mut xy = x.clone();
        fuse_max(&mut xy, &y);
        let mut yx = y.clone();
        fuse_max(&mut yx, &x);
        assert_eq!(xy, yx);
        let mut twice = xy.clone();
        fuse_max(&mut twice, &y);
        assert_eq!(twice, xy);
    }

    #[test]
    fn coverage_counts_observed() {
        assert_eq!(observed_fraction(&[-1, -1, 0, 1]), 0.5);
        assert_eq!(observed_fraction(&[]), 0.0);
        assert_eq!(observed_fraction(&[0, 0]), 1.0);
    }

    #[test]
    fn occupied_listing() {
        assert_eq!(occupied_cells(&[-1, 1, 0, 1]), vec![1, 3]);
        assert!(occupied_cells(&[0, -1]).is_empty());
    }

    #[test]
    fn validity_check_catches_corruption() {
        assert!(is_valid_grid(&[-1, 0, 1]));
        // The byzantine executor XORs 0x0BAD into outputs.
        assert!(!is_valid_grid(&[1 ^ 0x0BAD, 1]));
    }

    #[test]
    #[should_panic(expected = "share the geometry")]
    fn mismatched_lengths_panic() {
        let mut a = vec![0];
        fuse_max(&mut a, &[0, 1]);
    }
}
