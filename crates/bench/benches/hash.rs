//! SHA-256 and result-digest throughput (RQ3 verification cost).

use airdnd_trust::{digest_outputs, sha256};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)))
        });
    }
    let outputs: Vec<i64> = (0..512).map(|i| i as i64).collect();
    group.bench_function("digest_outputs_512_words", |b| {
        b.iter(|| digest_outputs(black_box(&outputs)))
    });
    group.finish();
}

criterion_group!(benches, bench_hash);
criterion_main!(benches);
