//! Radio-medium microbenchmarks: PER math and frame delivery.

use airdnd_geo::{Vec2, World};
use airdnd_radio::{NodeAddr, RadioMedium};
use airdnd_sim::{SimRng, SimTime};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel");

    let (channel, _) = airdnd_radio::profiles::dsrc();
    group.bench_function("per_at_200m", |b| {
        b.iter(|| black_box(channel.per_at(black_box(200.0), true, 1.5, 8 * 512)))
    });

    let mut medium = RadioMedium::v2v(World::corner_buildings(12.0, 40.0), SimRng::seed_from(1));
    for i in 0..50u64 {
        medium.set_position(
            NodeAddr::new(i + 1),
            Vec2::new((i as f64) * 15.0 - 350.0, 0.0),
        );
    }
    let mut t = 0u64;
    group.bench_function("unicast_50_node_medium", |b| {
        b.iter(|| {
            t += 1;
            medium.unicast(
                SimTime::from_micros(t * 500),
                NodeAddr::new(1),
                NodeAddr::new(20),
                512,
            )
        })
    });

    group.bench_function("broadcast_50_node_medium", |b| {
        b.iter(|| {
            t += 1;
            medium.broadcast(SimTime::from_micros(t * 500), NodeAddr::new(25), 200)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_channel);
criterion_main!(benches);
