//! End-to-end orchestrator-node benchmarks: the per-tick and per-offer
//! costs a real deployment would pay.

use airdnd_core::{NodeEvent, OffloadMsg, OrchestratorConfig, OrchestratorNode, WireMsg};
use airdnd_data::{DataQuery, DataType, QualityDescriptor};
use airdnd_geo::Vec2;
use airdnd_mesh::MeshConfig;
use airdnd_radio::NodeAddr;
use airdnd_sim::{SimRng, SimTime};
use airdnd_task::{library, ResourceRequirements, TaskId, TaskSpec};
use airdnd_trust::PrivacyLevel;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn stocked_node(id: u64) -> OrchestratorNode {
    let mut node = OrchestratorNode::new(
        NodeAddr::new(id),
        OrchestratorConfig::default(),
        MeshConfig::default(),
        2_000_000,
        1 << 30,
        SimRng::seed_from(id),
    );
    node.set_kinematics(Vec2::ZERO, Vec2::ZERO);
    node.insert_data(
        DataType::OccupancyGrid,
        vec![0; 64],
        QualityDescriptor::basic(SimTime::from_secs(1), 0.9, 1.0),
    );
    node
}

fn fuse_task(id: u64) -> TaskSpec {
    TaskSpec::new(TaskId::new(id), "fuse", library::grid_fuse(32).into_inner())
        .with_input(DataQuery::of_type(DataType::OccupancyGrid))
        .with_requirements(ResourceRequirements {
            gas: 200_000,
            ..Default::default()
        })
}

fn bench_orchestrator(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator");

    let mut node = stocked_node(1);
    let mut tick = 0u64;
    group.bench_function("tick_idle_node", |b| {
        b.iter(|| {
            tick += 1;
            node.handle(SimTime::from_millis(1_000 + tick * 100), NodeEvent::Tick)
        })
    });

    // Executor path: admit + really execute a 32-cell fusion per offer.
    let mut executor = stocked_node(2);
    let requester = NodeAddr::new(3);
    let mut n = 0u64;
    group.bench_function("handle_offer_execute_fuse32", |b| {
        b.iter(|| {
            n += 1;
            let offer = WireMsg::Offload(OffloadMsg::Offer {
                task: Box::new(fuse_task(n)),
                output_level: PrivacyLevel::Derived,
            });
            executor.handle(
                SimTime::from_secs(2),
                NodeEvent::Wire {
                    from: requester,
                    msg: black_box(offer),
                },
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_orchestrator);
criterion_main!(benches);
