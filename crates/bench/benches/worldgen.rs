//! World-generation benchmarks: the per-run cost generated workloads add
//! on top of the scenario itself (map synthesis + occlusion derivation +
//! placement). Generation happens inside every G1/G2 run, so this is the
//! overhead the harness pays per manifest entry.

use airdnd_scenario::ScenarioConfig;
use airdnd_worldgen::{families, FleetProfile};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_worldgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("worldgen");
    let cfg = ScenarioConfig::default().seeded(42);
    let profile = FleetProfile::dense();
    for family in families() {
        group.bench_with_input(
            BenchmarkId::new("instantiate", family.name),
            &family.kind,
            |b, kind| b.iter(|| black_box(kind.instantiate(black_box(&cfg), &profile))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_worldgen);
criterion_main!(benches);
