//! Mesh state-machine microbenchmarks: beacon ingestion and descriptors.

use airdnd_geo::Vec2;
use airdnd_mesh::{Beacon, MeshConfig, MeshDescriptor, MeshMsg, MeshNode, NodeAdvert};
use airdnd_radio::NodeAddr;
use airdnd_sim::SimTime;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn beacon(src: u64, seq: u64) -> Beacon {
    Beacon {
        src: NodeAddr::new(src),
        seq,
        pos: Vec2::new(src as f64 * 10.0, 0.0),
        velocity: Vec2::new(10.0, 0.0),
        advert: NodeAdvert::closed(),
        members: Vec::new(),
    }
}

fn populated_node(peers: u64) -> MeshNode {
    let mut node = MeshNode::new(
        NodeAddr::new(1),
        MeshConfig::default(),
        NodeAdvert::closed(),
    );
    for p in 2..=peers + 1 {
        for seq in 0..3 {
            node.on_message(
                SimTime::from_millis(seq * 100),
                NodeAddr::new(p),
                MeshMsg::Beacon(beacon(p, seq)),
            );
        }
    }
    node
}

fn bench_mesh(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh");

    let mut node = populated_node(50);
    let mut seq = 10u64;
    group.bench_function("beacon_ingest_50_neighbors", |b| {
        b.iter(|| {
            seq += 1;
            node.on_message(
                SimTime::from_millis(seq * 100),
                NodeAddr::new(7),
                MeshMsg::Beacon(black_box(beacon(7, seq))),
            )
        })
    });

    let node = populated_node(50);
    group.bench_function("descriptor_capture_50_members", |b| {
        b.iter(|| MeshDescriptor::capture(black_box(&node), SimTime::from_secs(1)))
    });

    let mut timer_node = populated_node(50);
    let mut t = 0u64;
    group.bench_function("timer_tick_50_members", |b| {
        b.iter(|| {
            t += 1;
            timer_node.on_timer(SimTime::from_millis(1_000 + t * 100))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mesh);
criterion_main!(benches);
