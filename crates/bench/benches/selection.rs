//! RQ1 node-selection scoring throughput at increasing mesh sizes.

use airdnd_core::{score_candidates, OrchestratorConfig};
use airdnd_data::{DataCatalog, DataQuery, DataType, QualityDescriptor};
use airdnd_geo::Vec2;
use airdnd_mesh::{MemberDescriptor, MeshDescriptor, NodeAdvert};
use airdnd_radio::NodeAddr;
use airdnd_sim::{SimDuration, SimRng, SimTime};
use airdnd_task::{Program, ResourceRequirements, TaskId, TaskSpec};
use airdnd_trust::ReputationTable;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn mesh_of(n: usize) -> MeshDescriptor {
    let now = SimTime::from_secs(1);
    let mut rng = SimRng::seed_from(3);
    let members = (0..n)
        .map(|i| {
            let mut catalog = DataCatalog::new(4);
            catalog.insert(
                DataType::OccupancyGrid,
                800,
                QualityDescriptor::basic(now, 0.9, 1.0),
            );
            MemberDescriptor {
                addr: NodeAddr::new(i as u64 + 10),
                pos: Vec2::new(
                    rng.next_f64() * 400.0 - 200.0,
                    rng.next_f64() * 400.0 - 200.0,
                ),
                velocity: Vec2::new(rng.next_f64() * 20.0 - 10.0, 0.0),
                link_quality: 0.5 + rng.next_f64() * 0.5,
                advert: NodeAdvert {
                    gas_rate: 1_000_000,
                    gas_backlog: (rng.next_f64() * 1_000_000.0) as u64,
                    mem_free_bytes: 1 << 30,
                    accepting: true,
                    catalog: catalog.summarize(),
                },
                info_age: SimDuration::from_millis(100),
            }
        })
        .collect();
    MeshDescriptor {
        generated_at: now,
        local: NodeAddr::new(1),
        local_pos: Vec2::ZERO,
        members,
        churn_per_sec: 0.5,
    }
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    let task = TaskSpec::new(
        TaskId::new(1),
        "t",
        Program::new(vec![airdnd_task::Instr::Halt], 0),
    )
    .with_input(DataQuery::of_type(DataType::OccupancyGrid))
    .with_requirements(ResourceRequirements {
        gas: 1_000_000,
        ..Default::default()
    });
    let trust = ReputationTable::default();
    let cfg = OrchestratorConfig::default();
    for n in [10usize, 100, 1000] {
        let mesh = mesh_of(n);
        group.bench_with_input(BenchmarkId::new("score_candidates", n), &mesh, |b, mesh| {
            b.iter(|| {
                score_candidates(
                    black_box(&task),
                    black_box(mesh),
                    Vec2::ZERO,
                    &trust,
                    &cfg,
                    SimTime::from_secs(1),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
