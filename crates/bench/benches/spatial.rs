//! Spatial-index benchmarks: the per-beacon neighbour-query cost.

use airdnd_geo::{SpatialIndex, Vec2};
use airdnd_sim::SimRng;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn points(n: usize) -> Vec<Vec2> {
    let mut rng = SimRng::seed_from(5);
    (0..n)
        .map(|_| {
            Vec2::new(
                rng.next_f64() * 2_000.0 - 1_000.0,
                rng.next_f64() * 2_000.0 - 1_000.0,
            )
        })
        .collect()
}

fn bench_spatial(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial");
    for n in [100usize, 1_000, 10_000] {
        let pts = points(n);
        group.bench_with_input(BenchmarkId::new("rebuild", n), &pts, |b, pts| {
            b.iter(|| {
                let mut idx = SpatialIndex::new(300.0);
                for (i, &p) in pts.iter().enumerate() {
                    idx.insert(i as u64, p);
                }
                idx
            })
        });
        let mut idx = SpatialIndex::new(300.0);
        for (i, &p) in pts.iter().enumerate() {
            idx.insert(i as u64, p);
        }
        group.bench_with_input(BenchmarkId::new("query_300m", n), &idx, |b, idx| {
            b.iter(|| idx.query_range(black_box(Vec2::ZERO), 300.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spatial);
criterion_main!(benches);
