//! TaskVM microbenchmarks: verification and execution throughput.

use airdnd_task::library;
use airdnd_task::vm::{execute, verify, ExecLimits};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_vm(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm");

    let fuse = library::grid_fuse(256);
    let inputs: Vec<i64> = (0..512).map(|i| (i % 3) as i64 - 1).collect();
    group.bench_function("execute_grid_fuse_256", |b| {
        b.iter(|| execute(black_box(&fuse), black_box(&inputs), ExecLimits::default()).unwrap())
    });

    let mm = library::matmul(8);
    let mm_inputs: Vec<i64> = (0..128).map(|i| i as i64 % 7).collect();
    group.bench_function("execute_matmul_8", |b| {
        b.iter(|| execute(black_box(&mm), black_box(&mm_inputs), ExecLimits::default()).unwrap())
    });

    let program = library::matmul(8).into_inner();
    group.bench_function("verify_matmul_8", |b| {
        b.iter(|| verify(black_box(program.clone())).unwrap())
    });

    let wire = airdnd_task::wire::encode_program(&program);
    group.bench_function("wire_decode_matmul_8", |b| {
        b.iter(|| airdnd_task::wire::decode_program(black_box(&wire)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
