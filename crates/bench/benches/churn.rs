//! Fleet-churn benchmarks: the per-despawn cost of the SoA storage.
//!
//! `SoaFleet::remove_at` used to do four ordered `Vec::remove` shifts
//! plus a tail reindex — O(fleet) per despawn, quadratic over a
//! heavy-churn run. With tombstoned removal and count-triggered
//! compaction the steady-state churn cost must be flat across fleet
//! sizes: the `churn/spawn_despawn` numbers for 1k, 4k and 16k vehicles
//! should agree to within noise, where the shifting implementation grew
//! linearly.

use airdnd_engine::SoaFleet;
use airdnd_geo::Vec2;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// One steady-state churn step: admit one vehicle, retire the oldest,
/// compact under the same deterministic policy the scenario fleet uses
/// (dead ≥ 32 and dead ≥ half the slots).
fn churn_step(fleet: &mut SoaFleet<u8>, next_addr: &mut u64, next_victim: &mut u64) {
    fleet.push(*next_addr, Vec2::new(*next_addr as f64, 0.0), Vec2::ZERO, 0);
    *next_addr += 1;
    let slot = fleet.slot_of(*next_victim).expect("victim live");
    fleet.remove_at(slot);
    *next_victim += 1;
    let dead = fleet.dead_count();
    if dead >= 32 && dead * 2 >= fleet.slot_count() {
        fleet.compact();
    }
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn");
    for n in [1_000u64, 4_000, 16_000] {
        // Steady state: N live entries, one arrival + one departure per
        // step. Amortized per-step cost must not scale with N.
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("spawn_despawn", n), &n, |b, &n| {
            let mut fleet: SoaFleet<u8> = SoaFleet::new();
            for addr in 0..n {
                fleet.push(addr, Vec2::new(addr as f64, 0.0), Vec2::ZERO, 0);
            }
            let mut next_addr = n;
            let mut next_victim = 0u64;
            b.iter(|| churn_step(&mut fleet, &mut next_addr, &mut next_victim));
        });
        // Contrast case: compacting after every removal reproduces the
        // old eager-shift cost — this one *should* grow linearly with N,
        // making the flat amortized numbers above legible as a fix rather
        // than as measurement noise.
        group.bench_with_input(BenchmarkId::new("compact_every_remove", n), &n, |b, &n| {
            let mut fleet: SoaFleet<u8> = SoaFleet::new();
            for addr in 0..n {
                fleet.push(addr, Vec2::new(addr as f64, 0.0), Vec2::ZERO, 0);
            }
            let mut next_addr = n;
            let mut next_victim = 0u64;
            b.iter(|| {
                fleet.push(next_addr, Vec2::new(next_addr as f64, 0.0), Vec2::ZERO, 0);
                next_addr += 1;
                let slot = fleet.slot_of(next_victim).expect("victim live");
                fleet.remove_at(slot);
                next_victim += 1;
                fleet.compact();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
