//! Regenerates every table/figure in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p airdnd-bench --bin run_experiments --release             # full
//! cargo run -p airdnd-bench --bin run_experiments --release -- quick   # CI size
//! cargo run -p airdnd-bench --bin run_experiments --release -- f2 t9   # subset
//! cargo run -p airdnd-bench --bin run_experiments --release -- --threads 4
//! ```
//!
//! Experiments come from the unified typed registry
//! (`airdnd_bench::workloads`) and are farmed across the `airdnd-harness`
//! worker pool, printing in EXPERIMENTS.md order regardless of completion
//! order, so the output is identical to a sequential run. The default is
//! `--threads 1` (one experiment at a time): F10 times `score_candidates`
//! with a wall-clock, and running it beside other CPU-saturating
//! experiments would contaminate its µs/decision column — opt into
//! parallelism (`--threads N` or `--threads 0` for all cores) when that
//! trade-off is acceptable. Tables print to stdout; JSON lands in
//! `target/experiments/`.

use airdnd_bench::workloads;
use airdnd_harness::{run_sweep, AnyWorkload, SweepSpec};
use std::fs;

fn usage_error(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: run_experiments [quick] [--threads N] [names...]\nnames: {}",
        workloads::names().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut threads = 1usize;
    let mut filter: Vec<String> = Vec::new();
    let known = workloads::names();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "quick" | "--quick" => quick = true,
            "--threads" => {
                threads = match it.next().map(|v| (v.parse(), v)) {
                    Some((Ok(n), _)) => n,
                    Some((Err(_), v)) => {
                        usage_error(&format!("--threads takes a number, got `{v}`"))
                    }
                    None => usage_error("--threads needs a value"),
                };
            }
            flag if flag.starts_with('-') => usage_error(&format!("unknown flag `{flag}`")),
            name if known.contains(&name) => filter.push(name.to_owned()),
            name => usage_error(&format!("unknown experiment `{name}`")),
        }
    }

    let selected: Vec<Box<dyn AnyWorkload>> = workloads::registry()
        .into_iter()
        .filter(|w| filter.is_empty() || filter.iter().any(|n| n == w.name()))
        .collect();

    let out_dir = std::path::Path::new("target/experiments");
    fs::create_dir_all(out_dir).expect("can create target/experiments");

    let started = std::time::Instant::now();
    // One manifest entry per experiment; the harness reassembles results in
    // registry order no matter which worker finishes first. Each experiment
    // runs its own grid serially (`threads = 1` inside) so pools never nest.
    let manifest = SweepSpec::new(usize::MAX)
        .axis_labeled(
            "experiment",
            0..selected.len(),
            |&i| selected[i].name().to_owned(),
            |slot, &i| *slot = i,
        )
        .manifest();
    let outcome = run_sweep(&manifest, threads, |plan| {
        let workload = &selected[plan.config];
        (workload.name(), workload.execute(quick, 1, &mut |_| {}))
    });

    for (name, output) in &outcome.results {
        println!("{}", output.result.table.render());
        let path = out_dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(&output.result).expect("results serialize");
        fs::write(&path, json).expect("can write experiment JSON");
        println!("  -> {}\n", path.display());
    }
    println!(
        "all experiments regenerated in {:.1} s ({} mode, {} worker{})",
        started.elapsed().as_secs_f64(),
        if quick { "quick" } else { "full" },
        outcome.threads,
        if outcome.threads == 1 { "" } else { "s" },
    );
}
