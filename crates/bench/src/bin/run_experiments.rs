//! Regenerates every table/figure in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p airdnd-bench --bin run_experiments --release            # full
//! cargo run -p airdnd-bench --bin run_experiments --release -- quick  # CI size
//! cargo run -p airdnd-bench --bin run_experiments --release -- f2 t9  # subset
//! ```
//!
//! Tables print to stdout; JSON lands in `target/experiments/`.

use airdnd_bench::exp;
use std::fs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let filter: Vec<&String> = args.iter().filter(|a| a.as_str() != "quick").collect();

    let out_dir = std::path::Path::new("target/experiments");
    fs::create_dir_all(out_dir).expect("can create target/experiments");

    let started = std::time::Instant::now();
    for (name, result) in exp::all(quick) {
        if !filter.is_empty() && !filter.iter().any(|f| f.as_str() == name) {
            continue;
        }
        println!("{}", result.table.render());
        let path = out_dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(&result).expect("results serialize");
        fs::write(&path, json).expect("can write experiment JSON");
        println!("  -> {}\n", path.display());
    }
    println!(
        "all experiments regenerated in {:.1} s ({} mode)",
        started.elapsed().as_secs_f64(),
        if quick { "quick" } else { "full" }
    );
}
