//! Declarative, multi-threaded experiment sweeps.
//!
//! ```sh
//! cargo run -p airdnd-bench --bin sweep --release                       # full, all cores
//! cargo run -p airdnd-bench --bin sweep --release -- --quick f2         # CI-sized F2
//! cargo run -p airdnd-bench --bin sweep --release -- --threads 8 f2 t9  # explicit pool
//! cargo run -p airdnd-bench --bin sweep --release -- --bench            # BENCH_harness.json
//! ```
//!
//! Determinism contract: stdout (the rendered tables) and the JSON/CSV
//! artifacts are **byte-identical for any `--threads` value** — the
//! harness farms runs across workers but reassembles results in manifest
//! order, and seeds derive from `(base_seed, run_index)`, never from
//! scheduling. Progress streams to stderr, which is exempt.

use airdnd_bench::sweeps;
use airdnd_harness::{run_sweep, write_report};
use airdnd_scenario::run_scenario;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    threads: usize,
    quick: bool,
    bench: bool,
    out: PathBuf,
    names: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 0,
        quick: false,
        bench: false,
        out: PathBuf::from("target/experiments/sweep"),
        names: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                args.threads = match it.next().map(|v| (v.parse(), v)) {
                    Some((Ok(n), _)) => n,
                    Some((Err(_), v)) => {
                        usage_error(&format!("--threads takes a number, got `{v}`"))
                    }
                    None => usage_error("--threads needs a value"),
                };
            }
            "--out" => match it.next() {
                Some(path) => args.out = PathBuf::from(path),
                None => usage_error("--out needs a path"),
            },
            "--quick" | "quick" => args.quick = true,
            "--bench" => args.bench = true,
            "--help" | "-h" => {
                eprintln!("{}", usage());
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => {
                usage_error(&format!("unknown flag `{flag}`"));
            }
            name => args.names.push(name.to_owned()),
        }
    }
    let known: Vec<&str> = sweeps::registry().iter().map(|e| e.name).collect();
    for name in &args.names {
        if !known.contains(&name.as_str()) {
            usage_error(&format!("unknown sweep experiment `{name}`"));
        }
    }
    args
}

fn usage() -> String {
    format!(
        "usage: sweep [--threads N] [--quick] [--out DIR] [--bench] [names...]\n\
         names: {}",
        sweeps::registry()
            .iter()
            .map(|e| e.name)
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{}", usage());
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    if args.bench {
        bench_snapshot(args.threads);
        return;
    }

    std::fs::create_dir_all(&args.out).expect("can create the output directory");
    let started = Instant::now();
    for exp in sweeps::registry() {
        if !args.names.is_empty() && !args.names.iter().any(|n| n == exp.name) {
            continue;
        }
        let (manifest, results, result) = sweeps::execute(&exp, args.quick, args.threads, |p| {
            eprint!("\r[{}] {}/{} runs", exp.name, p.done, p.total);
            let _ = std::io::stderr().flush();
        });
        eprintln!();
        print!("{}", result.table.render());
        let report = sweeps::aggregate_report(&exp, &manifest, &results);
        let (json_path, csv_path) =
            write_report(&args.out, &report).expect("can write sweep artifacts");
        eprintln!(
            "  -> {}\n  -> {}\n",
            json_path.display(),
            csv_path.display()
        );
    }
    eprintln!(
        "sweeps done in {:.1} s ({} mode)",
        started.elapsed().as_secs_f64(),
        if args.quick { "quick" } else { "full" }
    );
}

/// Emits `BENCH_harness.json`: sequential vs parallel wall-clock for the
/// quick F2 sweep, plus pure dispatch overhead on no-op runs.
fn bench_snapshot(threads: usize) {
    use airdnd_harness::SweepSpec;
    use serde_json::json;

    let f2 = sweeps::find("f2").expect("f2 registered");
    let manifest = (f2.spec)(true).manifest();
    eprintln!("timing quick F2 sweep ({} runs) ...", manifest.len());
    let seq = run_sweep(&manifest, 1, |plan| run_scenario(plan.config));
    let par = run_sweep(&manifest, threads, |plan| run_scenario(plan.config));
    let identical = {
        let table = |results: &[airdnd_scenario::ScenarioReport]| {
            (f2.tabulate)(&manifest, results).table.render()
        };
        table(&seq.results) == table(&par.results)
    };
    assert!(
        identical,
        "sequential and parallel F2 tables must be byte-identical"
    );

    // Pure orchestration overhead: dispatch N no-op runs.
    let noop_runs = 4096usize;
    let noop = SweepSpec::new(0u64)
        .axis("run", 0..noop_runs as u64, |cfg, &v| *cfg = v)
        .manifest();
    let start = Instant::now();
    let outcome = run_sweep(&noop, par.threads, |plan| plan.config);
    assert_eq!(outcome.results.len(), noop_runs);
    let noop_elapsed = start.elapsed();

    let snapshot = json!({
        "description": "harness overhead + sequential-vs-parallel wall clock for the quick F2 sweep",
        "hardware_threads": std::thread::available_parallelism().map_or(1, |n| n.get()),
        "f2_quick": json!({
            "runs": manifest.len(),
            "sequential_ms": seq.wall.as_secs_f64() * 1e3,
            "parallel_ms": par.wall.as_secs_f64() * 1e3,
            "parallel_threads": par.threads,
            "speedup": seq.wall.as_secs_f64() / par.wall.as_secs_f64().max(1e-9),
            "outputs_byte_identical": identical,
        }),
        "noop_dispatch": json!({
            "runs": noop_runs,
            "total_ms": noop_elapsed.as_secs_f64() * 1e3,
            "per_run_us": noop_elapsed.as_secs_f64() * 1e6 / noop_runs as f64,
        }),
    });
    let path = "BENCH_harness.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&snapshot).expect("serializes") + "\n",
    )
    .expect("can write BENCH_harness.json");
    println!("wrote {path}");
}
