//! Declarative, multi-threaded, shardable experiment sweeps.
//!
//! ```sh
//! cargo run -p airdnd-bench --bin sweep --release                       # full, all cores
//! cargo run -p airdnd-bench --bin sweep --release -- --quick f2         # CI-sized F2
//! cargo run -p airdnd-bench --bin sweep --release -- --threads 8 f2 t9  # explicit pool
//! cargo run -p airdnd-bench --bin sweep --release -- --bench            # BENCH_harness.json
//!
//! # Split one sweep across processes/hosts, then reassemble:
//! cargo run -p airdnd-bench --bin sweep --release -- --quick --shard 0/2 --out s0 f2
//! cargo run -p airdnd-bench --bin sweep --release -- --quick --shard 1/2 --out s1 f2
//! cargo run -p airdnd-bench --bin sweep --release -- --quick --merge s0 --merge s1 --out m f2
//! ```
//!
//! Determinism contract: stdout (the rendered tables) and the JSON/CSV
//! artifacts are **byte-identical for any `--threads` value and any
//! `--shard` split** — the harness farms runs across workers but
//! reassembles results in manifest order, and seeds derive from
//! `(base_seed, run_index)`, never from scheduling or process placement.
//! Progress streams to stderr, which is exempt. F10 is the one
//! deliberate exception: it reports wall-clock µs/decision.

use airdnd_bench::workloads;
use airdnd_harness::{
    parse_shard, render_shard, shard_artifact_name, write_report, AnyWorkload, Progress, Shard,
    ShardArtifact,
};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    threads: usize,
    quick: bool,
    bench: bool,
    out: PathBuf,
    shard: Option<Shard>,
    merge: Vec<PathBuf>,
    names: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 0,
        quick: false,
        bench: false,
        out: PathBuf::from("target/experiments/sweep"),
        shard: None,
        merge: Vec::new(),
        names: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                args.threads = match it.next().map(|v| (v.parse(), v)) {
                    Some((Ok(n), _)) => n,
                    Some((Err(_), v)) => {
                        usage_error(&format!("--threads takes a number, got `{v}`"))
                    }
                    None => usage_error("--threads needs a value"),
                };
            }
            "--out" => match it.next() {
                Some(path) => args.out = PathBuf::from(path),
                None => usage_error("--out needs a path"),
            },
            "--shard" => match it.next() {
                Some(spec) => match spec.parse::<Shard>() {
                    Ok(shard) => args.shard = Some(shard),
                    Err(e) => usage_error(&e),
                },
                None => usage_error("--shard needs an `i/n` spec"),
            },
            "--merge" => match it.next() {
                Some(dir) => args.merge.push(PathBuf::from(dir)),
                None => usage_error("--merge needs a shard-artifact directory"),
            },
            "--quick" | "quick" => args.quick = true,
            "--bench" => args.bench = true,
            "--help" | "-h" => {
                eprintln!("{}", usage());
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => {
                usage_error(&format!("unknown flag `{flag}`"));
            }
            name => args.names.push(name.to_owned()),
        }
    }
    if args.shard.is_some() && !args.merge.is_empty() {
        usage_error("--shard and --merge are mutually exclusive");
    }
    let known = workloads::names();
    for name in &args.names {
        if !known.contains(&name.as_str()) {
            usage_error(&format!("unknown experiment `{name}`"));
        }
    }
    args
}

fn usage() -> String {
    format!(
        "usage: sweep [--threads N] [--quick] [--out DIR] [--bench]\n\
         \x20            [--shard I/N] [--merge DIR]... [names...]\n\
         names: {}\n\
         --shard runs one slice and writes a mergeable artifact to --out;\n\
         --merge (repeatable) reassembles artifacts byte-identically",
        workloads::names().join(", ")
    )
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{}", usage());
    std::process::exit(2);
}

fn selected(names: &[String]) -> Vec<Box<dyn AnyWorkload>> {
    workloads::registry()
        .into_iter()
        .filter(|w| names.is_empty() || names.iter().any(|n| n == w.name()))
        .collect()
}

fn stderr_progress(name: &str) -> impl FnMut(Progress) + '_ {
    move |p: Progress| {
        eprint!("\r[{name}] {}/{} runs", p.done, p.total);
        let _ = std::io::stderr().flush();
    }
}

fn main() {
    let args = parse_args();
    if args.bench {
        bench_snapshot(args.threads);
        return;
    }
    std::fs::create_dir_all(&args.out).expect("can create the output directory");
    let started = Instant::now();
    let mode = if let Some(shard) = args.shard {
        run_shards(&args, shard);
        format!("shard {shard}")
    } else if !args.merge.is_empty() {
        run_merge(&args);
        "merge".to_owned()
    } else {
        run_full(&args);
        "sweep".to_owned()
    };
    eprintln!(
        "{mode} done in {:.1} s ({} mode)",
        started.elapsed().as_secs_f64(),
        if args.quick { "quick" } else { "full" }
    );
}

/// Default mode: execute each selected workload completely, print its
/// table and write the aggregate JSON/CSV artifacts.
fn run_full(args: &Args) {
    for workload in selected(&args.names) {
        let output = workload.execute(
            args.quick,
            args.threads,
            &mut stderr_progress(workload.name()),
        );
        eprintln!();
        print!("{}", output.result.table.render());
        let (json_path, csv_path) =
            write_report(&args.out, &output.aggregate).expect("can write sweep artifacts");
        eprintln!(
            "  -> {}\n  -> {}\n",
            json_path.display(),
            csv_path.display()
        );
    }
}

/// `--shard i/n`: run only this slice of each selected workload and write
/// one mergeable artifact per workload. Nothing goes to stdout — tables
/// only exist once every shard has been merged.
fn run_shards(args: &Args, shard: Shard) {
    for workload in selected(&args.names) {
        let artifact = workload.execute_shard(
            args.quick,
            args.threads,
            shard,
            &mut stderr_progress(workload.name()),
        );
        eprintln!();
        let path = args.out.join(shard_artifact_name(workload.name(), shard));
        std::fs::write(&path, render_shard(&artifact)).expect("can write shard artifact");
        eprintln!(
            "  -> {} ({} runs)\n",
            path.display(),
            artifact.results.len()
        );
    }
}

/// `--merge dir...`: load every selected workload's shard artifacts from
/// the given directories, reassemble in manifest order, and emit exactly
/// what an unsharded run would have emitted.
fn run_merge(args: &Args) {
    for workload in selected(&args.names) {
        let artifacts = load_artifacts(workload.name(), &args.merge);
        if artifacts.is_empty() {
            eprintln!(
                "warning: no shard artifacts for `{}`, skipping",
                workload.name()
            );
            continue;
        }
        let output = workload
            .merge_shards(args.quick, &artifacts)
            .unwrap_or_else(|e| {
                eprintln!("error: cannot merge `{}`: {e}", workload.name());
                std::process::exit(1);
            });
        print!("{}", output.result.table.render());
        let (json_path, csv_path) =
            write_report(&args.out, &output.aggregate).expect("can write sweep artifacts");
        eprintln!(
            "  -> {}\n  -> {}\n",
            json_path.display(),
            csv_path.display()
        );
    }
}

/// All shard artifacts for one workload across the merge directories, in
/// deterministic (dir, filename) order.
fn load_artifacts(name: &str, dirs: &[PathBuf]) -> Vec<ShardArtifact> {
    let prefix = format!("{name}.shard");
    let mut artifacts = Vec::new();
    for dir in dirs {
        let entries = std::fs::read_dir(dir)
            .unwrap_or_else(|e| panic!("cannot read merge dir {}: {e}", dir.display()));
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|f| f.to_str())
                    .is_some_and(|f| f.starts_with(&prefix) && f.ends_with(".json"))
            })
            .collect();
        files.sort();
        for file in files {
            let text = std::fs::read_to_string(&file)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
            let artifact = parse_shard(&text)
                .unwrap_or_else(|e| panic!("cannot parse {}: {e}", file.display()));
            artifacts.push(artifact);
        }
    }
    artifacts
}

/// Emits `BENCH_harness.json`: sequential vs parallel wall-clock for the
/// quick F2 sweep, plus pure dispatch overhead on no-op runs.
fn bench_snapshot(threads: usize) {
    use airdnd_harness::{run_sweep, SweepSpec};
    use serde_json::json;

    let f2 = workloads::find("f2").expect("f2 registered");
    let f2_runs = f2.total_runs(true);
    eprintln!("timing quick F2 sweep ({f2_runs} runs) ...");
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Mirror the executor's clamp so the snapshot records the worker
    // count the parallel F2 run actually used.
    let f2_workers = (if threads == 0 { hw } else { threads }).clamp(1, f2_runs);
    let start = Instant::now();
    let seq = f2.execute(true, 1, &mut |_| {});
    let seq_wall = start.elapsed();
    let start = Instant::now();
    let par = f2.execute(true, threads, &mut |_| {});
    let par_wall = start.elapsed();
    let identical = seq.result.table.render() == par.result.table.render();
    assert!(
        identical,
        "sequential and parallel F2 tables must be byte-identical"
    );

    // Pure orchestration overhead: dispatch N no-op runs.
    let noop_runs = 4096usize;
    let noop = SweepSpec::new(0u64)
        .axis("run", 0..noop_runs as u64, |cfg, &v| *cfg = v)
        .manifest();
    let pool = if threads == 0 { hw } else { threads };
    let start = Instant::now();
    let outcome = run_sweep(&noop, pool, |plan| plan.config);
    assert_eq!(outcome.results.len(), noop_runs);
    let noop_elapsed = start.elapsed();

    let snapshot = json!({
        "description": "harness overhead + sequential-vs-parallel wall clock for the quick F2 sweep",
        "hardware_threads": hw,
        "f2_quick": json!({
            "runs": f2_runs,
            "sequential_ms": seq_wall.as_secs_f64() * 1e3,
            "parallel_ms": par_wall.as_secs_f64() * 1e3,
            "parallel_threads": f2_workers,
            "speedup": seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9),
            "outputs_byte_identical": identical,
        }),
        "noop_dispatch": json!({
            "runs": noop_runs,
            "total_ms": noop_elapsed.as_secs_f64() * 1e3,
            "per_run_us": noop_elapsed.as_secs_f64() * 1e6 / noop_runs as f64,
        }),
    });
    let path = "BENCH_harness.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&snapshot).expect("serializes") + "\n",
    )
    .expect("can write BENCH_harness.json");
    println!("wrote {path}");
}
