//! Declarative, multi-threaded, shardable, distributable experiment sweeps.
//!
//! ```sh
//! cargo run -p airdnd-bench --bin sweep --release                       # full, all cores
//! cargo run -p airdnd-bench --bin sweep --release -- --quick f2         # CI-sized F2
//! cargo run -p airdnd-bench --bin sweep --release -- --threads 8 f2 t9  # explicit pool
//! cargo run -p airdnd-bench --bin sweep --release -- --bench            # BENCH_harness.json
//!
//! # Split one sweep across processes/hosts, then reassemble:
//! cargo run -p airdnd-bench --bin sweep --release -- --quick --shard 0/2 --out s0 f2
//! cargo run -p airdnd-bench --bin sweep --release -- --quick --shard 1/2 --out s1 f2
//! cargo run -p airdnd-bench --bin sweep --release -- --quick --merge s0 --merge s1 --out m f2
//!
//! # Or let the driver distribute, retry and merge in one invocation:
//! cargo run -p airdnd-bench --bin sweep --release -- drive --shards 4 --jobs 2 --quick f2
//! ```
//!
//! `drive` spawns `--shards` subprocesses of this same binary (at most
//! `--jobs` at a time per host), each running `--shard i/n`, retries
//! failures up to `--retries` times, tracks status and host assignments
//! in `<out>/drive-state.json`, and merges on completion. Shard artifacts
//! are written atomically and stamped with a manifest fingerprint, so
//! re-running `drive` *resumes*: fingerprint-valid completed shards are
//! skipped, torn or stale ones are discarded and re-run.
//!
//! `drive --hosts H` (H ≥ 2) runs the same drive on a simulated
//! multi-host transport (`SimHostTransport`): shard jobs execute
//! in-process on a deterministic virtual-time host pool, write artifacts
//! into per-host staging directories, and only reach `--out` via an
//! explicit artifact fetch. Host faults are injectable —
//! `--inject-lost-host H` kills a host mid-run, `--inject-partition I:J`
//! cuts hosts I and J off from the coordinator right as the first
//! artifact fetch would happen (healing later), `--inject-spawn-death H`
//! kills a host between validate and spawn — and the drive recovers by
//! fencing and reassigning shards to surviving hosts, still producing
//! byte-identical merged output.
//!
//! Determinism contract: stdout (the rendered tables) and the JSON/CSV
//! artifacts are **byte-identical for any `--threads` value, any
//! `--shard` split, and any `drive` schedule** — including drives that
//! lost shards to crashes and resumed. The harness farms runs across
//! workers/processes but reassembles results in manifest order, and seeds
//! derive from `(base_seed, run_index)`, never from scheduling or process
//! placement. Progress streams to stderr, which is exempt. F10 is the one
//! deliberate exception: it reports wall-clock µs/decision.
//!
//! Fault injection (tests/CI only): `--fail-after K` makes a shard
//! process exit mid-sweep after K runs; `--torn` makes it leave a
//! truncated artifact behind. `drive --inject-fail I:K` / `--inject-torn
//! I` forward those to shard I's *first* attempt only, so a retried drive
//! must recover and still produce byte-identical output. The `
//! AIRDND_SWEEP_FAIL_AFTER` / `AIRDND_SWEEP_TORN` environment variables
//! are equivalent to the flags.

use airdnd_bench::workloads;
use airdnd_harness::{
    drive, drive_with, parse_shard, render_shard, shard_artifact_name, shard_bounds, write_atomic,
    write_report, AnyWorkload, CommandSpec, DriveOptions, DriveTuning, Progress, Shard,
    ShardArtifact, SimFaults, SimHostTransport, SimJob, SpawnCtx, Validation,
};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    threads: usize,
    quick: bool,
    bench: bool,
    out: PathBuf,
    shard: Option<Shard>,
    merge: Vec<PathBuf>,
    drive: bool,
    shards: usize,
    jobs: usize,
    retries: usize,
    hosts: usize,
    inject_fail: Vec<(usize, usize)>,
    inject_torn: Vec<usize>,
    inject_skip: Vec<usize>,
    inject_lost_host: Vec<usize>,
    inject_partition: Vec<(usize, usize)>,
    inject_spawn_death: Vec<usize>,
    fail_after: Option<usize>,
    torn: bool,
    skip_write: bool,
    trace: Option<usize>,
    trace_out: Option<PathBuf>,
    validate_trace: Option<PathBuf>,
    validate_profile: Option<PathBuf>,
    bench_engine: bool,
    explain: bool,
    query: Option<u64>,
    bench_compare: Option<(PathBuf, PathBuf)>,
    max_regress: f64,
    names: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 0,
        quick: false,
        bench: false,
        out: PathBuf::from("target/experiments/sweep"),
        shard: None,
        merge: Vec::new(),
        drive: false,
        shards: 2,
        jobs: 0,
        retries: 1,
        hosts: 1,
        inject_fail: Vec::new(),
        inject_torn: Vec::new(),
        inject_skip: Vec::new(),
        inject_lost_host: Vec::new(),
        inject_partition: Vec::new(),
        inject_spawn_death: Vec::new(),
        fail_after: std::env::var("AIRDND_SWEEP_FAIL_AFTER")
            .ok()
            .and_then(|v| v.parse().ok()),
        torn: std::env::var("AIRDND_SWEEP_TORN").is_ok(),
        skip_write: std::env::var("AIRDND_SWEEP_SKIP_WRITE").is_ok(),
        trace: None,
        trace_out: None,
        validate_trace: None,
        validate_profile: None,
        bench_engine: false,
        explain: false,
        query: None,
        bench_compare: None,
        max_regress: 10.0,
        names: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => args.threads = numeric_value(&mut it, "--threads"),
            "--out" => match it.next() {
                Some(path) => args.out = PathBuf::from(path),
                None => usage_error("--out needs a path"),
            },
            "--shard" => match it.next() {
                Some(spec) => match spec.parse::<Shard>() {
                    Ok(shard) => args.shard = Some(shard),
                    Err(e) => usage_error(&e),
                },
                None => usage_error("--shard needs an `i/n` spec"),
            },
            "--merge" => match it.next() {
                Some(dir) => args.merge.push(PathBuf::from(dir)),
                None => usage_error("--merge needs a shard-artifact directory"),
            },
            "drive" => args.drive = true,
            "--shards" => args.shards = numeric_value(&mut it, "--shards"),
            "--jobs" => args.jobs = numeric_value(&mut it, "--jobs"),
            "--retries" => args.retries = numeric_value(&mut it, "--retries"),
            "--inject-fail" => match it.next().and_then(|v| {
                let (i, k) = v.split_once(':')?;
                Some((i.parse().ok()?, k.parse().ok()?))
            }) {
                Some(pair) => args.inject_fail.push(pair),
                None => usage_error("--inject-fail needs an `INDEX:RUNS` spec"),
            },
            "--inject-torn" => match it.next().and_then(|v| v.parse().ok()) {
                Some(index) => args.inject_torn.push(index),
                None => usage_error("--inject-torn needs a shard index"),
            },
            "--inject-skip" => match it.next().and_then(|v| v.parse().ok()) {
                Some(index) => args.inject_skip.push(index),
                None => usage_error("--inject-skip needs a shard index"),
            },
            "--hosts" => args.hosts = numeric_value(&mut it, "--hosts"),
            "--inject-lost-host" => match it.next().and_then(|v| v.parse().ok()) {
                Some(host) => args.inject_lost_host.push(host),
                None => usage_error("--inject-lost-host needs a host index"),
            },
            "--inject-partition" => match it.next().and_then(|v| {
                let (i, j) = v.split_once(':')?;
                Some((i.parse().ok()?, j.parse().ok()?))
            }) {
                Some((i, j)) if i != j => args.inject_partition.push((i, j)),
                Some(_) => usage_error("--inject-partition needs two distinct hosts"),
                None => usage_error("--inject-partition needs an `I:J` host pair"),
            },
            "--inject-spawn-death" => match it.next().and_then(|v| v.parse().ok()) {
                Some(host) => args.inject_spawn_death.push(host),
                None => usage_error("--inject-spawn-death needs a host index"),
            },
            "--skip-write" => args.skip_write = true,
            "--fail-after" => args.fail_after = Some(numeric_value(&mut it, "--fail-after")),
            "--trace" => args.trace = Some(numeric_value(&mut it, "--trace")),
            "--trace-out" => match it.next() {
                Some(path) => args.trace_out = Some(PathBuf::from(path)),
                None => usage_error("--trace-out needs a file path"),
            },
            "--validate-trace" => match it.next() {
                Some(path) => args.validate_trace = Some(PathBuf::from(path)),
                None => usage_error("--validate-trace needs a file path"),
            },
            "--validate-profile" => match it.next() {
                Some(path) => args.validate_profile = Some(PathBuf::from(path)),
                None => usage_error("--validate-profile needs a file path"),
            },
            "--bench-engine" => args.bench_engine = true,
            "explain" => args.explain = true,
            "--query" => args.query = Some(numeric_value(&mut it, "--query") as u64),
            "--bench-compare" => match (it.next(), it.next()) {
                (Some(old), Some(new)) => {
                    args.bench_compare = Some((PathBuf::from(old), PathBuf::from(new)));
                }
                _ => usage_error("--bench-compare needs OLD.json and NEW.json paths"),
            },
            "--max-regress" => args.max_regress = float_value(&mut it, "--max-regress"),
            "--torn" => args.torn = true,
            "--quick" | "quick" => args.quick = true,
            "--bench" => args.bench = true,
            "--help" | "-h" => {
                eprintln!("{}", usage());
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => {
                usage_error(&format!("unknown flag `{flag}`"));
            }
            name => args.names.push(name.to_owned()),
        }
    }
    if args.shard.is_some() && !args.merge.is_empty() {
        usage_error("--shard and --merge are mutually exclusive");
    }
    if args.drive && (args.shard.is_some() || !args.merge.is_empty()) {
        usage_error("drive already shards and merges; drop --shard/--merge");
    }
    if args.trace.is_some()
        && (args.drive || args.bench || args.shard.is_some() || !args.merge.is_empty())
    {
        usage_error("--trace is a single-run debug mode; drop drive/--bench/--shard/--merge");
    }
    if args.trace == Some(0) {
        usage_error("--trace needs a positive entry capacity");
    }
    if args.trace_out.is_some()
        && (args.drive || args.bench || args.shard.is_some() || !args.merge.is_empty())
    {
        usage_error("--trace-out is a single-run export mode; drop drive/--bench/--shard/--merge");
    }
    if args.trace_out.is_some() && args.names.len() != 1 {
        usage_error("--trace-out exports one workload's first run; name exactly one workload");
    }
    if args.drive && args.shards == 0 {
        usage_error("drive needs --shards >= 1");
    }
    if args.hosts == 0 {
        usage_error("--hosts needs at least one host");
    }
    if args.hosts > 1 && !args.drive {
        usage_error("--hosts only applies to `drive`");
    }
    let host_faults = !args.inject_lost_host.is_empty()
        || !args.inject_partition.is_empty()
        || !args.inject_spawn_death.is_empty();
    if host_faults && args.hosts < 2 {
        usage_error("host fault injection needs drive --hosts >= 2");
    }
    for host in args
        .inject_lost_host
        .iter()
        .chain(args.inject_spawn_death.iter())
        .chain(args.inject_partition.iter().flat_map(|(i, j)| [i, j]))
    {
        if *host >= args.hosts {
            usage_error(&format!(
                "host {host} out of range (have --hosts {})",
                args.hosts
            ));
        }
    }
    if args.explain && args.names.len() != 1 {
        usage_error("explain decomposes one workload's first run; name exactly one workload");
    }
    if args.explain && (args.drive || args.bench || args.shard.is_some() || !args.merge.is_empty())
    {
        usage_error("explain is a single-run debug mode; drop drive/--bench/--shard/--merge");
    }
    if args.query.is_some() && !args.explain {
        usage_error("--query only applies to `explain`");
    }
    if args.bench_compare.is_some() && args.explain {
        usage_error("--bench-compare and explain are separate modes");
    }
    let known = workloads::names();
    for name in &args.names {
        if !known.contains(&name.as_str()) {
            usage_error(&format!("unknown experiment `{name}`"));
        }
    }
    args
}

fn numeric_value(it: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    match it.next().map(|v| (v.parse(), v)) {
        Some((Ok(n), _)) => n,
        Some((Err(_), v)) => usage_error(&format!("{flag} takes a number, got `{v}`")),
        None => usage_error(&format!("{flag} needs a value")),
    }
}

fn float_value(it: &mut impl Iterator<Item = String>, flag: &str) -> f64 {
    match it.next().map(|v| (v.parse::<f64>(), v)) {
        Some((Ok(n), _)) if n.is_finite() && n >= 0.0 => n,
        Some((_, v)) => usage_error(&format!(
            "{flag} takes a non-negative percentage, got `{v}`"
        )),
        None => usage_error(&format!("{flag} needs a value")),
    }
}

fn usage() -> String {
    format!(
        "usage: sweep [--threads N] [--quick] [--out DIR] [--bench] [--bench-engine]\n\
         \x20            [--shard I/N] [--merge DIR]... [--trace N]\n\
         \x20            [--trace-out FILE] [--validate-trace FILE] [names...]\n\
         \x20      sweep drive --shards N [--jobs J] [--retries R] [--hosts H]\n\
         \x20            [--quick] [--out DIR] [names...]\n\
         \x20      sweep explain WORKLOAD [--query K] [--quick]\n\
         \x20      sweep --bench-compare OLD.json NEW.json [--max-regress PCT]\n\
         names: {}\n\
         --trace N runs each named workload's first run with a bounded\n\
         event trace (N entries) and dumps it to stderr;\n\
         --trace-out FILE exports one workload's first run as a JSONL\n\
         event log (FILE), a causal span log (FILE.spans.jsonl) and a\n\
         Perfetto timeline with flow arrows (FILE.trace.json);\n\
         --validate-trace FILE checks an exported JSONL event log and,\n\
         when FILE.spans.jsonl exists, span well-formedness;\n\
         explain WORKLOAD [--query K] prints one query's span tree and\n\
         its critical-path stage budget (K = task id; default: first\n\
         completed query);\n\
         --bench-compare OLD.json NEW.json diffs two engine-bench\n\
         profiles and exits nonzero on any phase slower than\n\
         --max-regress percent (default 10);\n\
         --bench-engine profiles engine phases into BENCH_engine.json;\n\
         --validate-profile FILE checks a BENCH_engine.json-shaped\n\
         profile: every workload must attribute wall-clock to all six\n\
         engine phases;\n\
         --shard runs one slice and writes a mergeable artifact to --out;\n\
         --merge (repeatable) reassembles artifacts byte-identically;\n\
         drive spawns the shards as subprocesses (bounded by --jobs per\n\
         host), retries failures, resumes completed shards, and merges —\n\
         output byte-identical to a single-process run;\n\
         drive --hosts H (H >= 2) runs the shards on a simulated\n\
         multi-host transport with per-host staging, lost-host detection\n\
         and shard reassignment — still byte-identical.\n\
         Fault injection (tests): --fail-after K, --torn, --skip-write,\n\
         drive --inject-fail I:K, --inject-torn I, --inject-skip I;\n\
         host faults (need --hosts >= 2): --inject-lost-host H,\n\
         --inject-partition I:J, --inject-spawn-death H",
        workloads::names().join(", ")
    )
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{}", usage());
    std::process::exit(2);
}

fn selected(names: &[String]) -> Vec<Box<dyn AnyWorkload>> {
    workloads::registry()
        .into_iter()
        .filter(|w| names.is_empty() || names.iter().any(|n| n == w.name()))
        .collect()
}

fn stderr_progress(name: &str) -> impl FnMut(Progress) + '_ {
    move |p: Progress| {
        eprint!("\r[{name}] {}/{} runs", p.done, p.total);
        let _ = std::io::stderr().flush();
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.validate_trace {
        validate_trace_file(path);
        return;
    }
    if let Some(path) = &args.validate_profile {
        validate_profile_file(path);
        return;
    }
    if let Some((old, new)) = &args.bench_compare {
        bench_compare(old, new, args.max_regress);
        return;
    }
    if args.explain {
        run_explain(&args);
        return;
    }
    if args.bench_engine {
        engine_snapshot(args.quick);
        return;
    }
    if args.bench {
        bench_snapshot(args.threads);
        return;
    }
    std::fs::create_dir_all(&args.out).expect("can create the output directory");
    let started = Instant::now();
    let mode = if let Some(path) = &args.trace_out {
        run_trace_out(&args, path);
        format!("trace-out ({})", path.display())
    } else if let Some(capacity) = args.trace {
        run_trace(&args, capacity);
        format!("trace ({capacity} entries)")
    } else if args.drive {
        run_drive(&args);
        format!("drive ({} shards)", args.shards)
    } else if let Some(shard) = args.shard {
        run_shards(&args, shard);
        format!("shard {shard}")
    } else if !args.merge.is_empty() {
        run_merge(&args, &args.merge);
        "merge".to_owned()
    } else {
        run_full(&args);
        "sweep".to_owned()
    };
    eprintln!(
        "{mode} done in {:.1} s ({} mode)",
        started.elapsed().as_secs_f64(),
        if args.quick { "quick" } else { "full" }
    );
}

/// `--trace N`: the debug lens. Executes only the *first* manifest run of
/// each selected workload with the engine's bounded trace enabled and
/// dumps the recorded protocol events to stderr — generated worlds are
/// hard to eyeball, so this is how you watch one run happen. Writes no
/// artifacts and prints nothing to stdout.
fn run_trace(args: &Args, capacity: usize) {
    for workload in selected(&args.names) {
        match workload.trace_first_run(args.quick, capacity) {
            Some(trace) => {
                eprintln!(
                    "[{}] trace of run 0 ({capacity} entry cap):",
                    workload.name()
                );
                eprint!("{trace}");
            }
            None => eprintln!("[{}] workload has no trace support", workload.name()),
        }
    }
}

/// `--trace-out FILE`: executes the named workload's *first* manifest run
/// with the typed event log enabled and exports it twice — the JSONL
/// event log at FILE (validated after writing: parse, byte-exact
/// re-serialization, strictly increasing sequence) and a
/// Chrome-trace/Perfetto timeline at FILE.trace.json. Both exporters are
/// pure functions of the virtual-time event log, so re-running emits
/// byte-identical files.
fn run_trace_out(args: &Args, path: &std::path::Path) {
    use airdnd_telemetry::{export, TelemetryOptions};
    let workloads = selected(&args.names);
    let workload = workloads.first().expect("one workload name validated");
    let opts = TelemetryOptions::events(TelemetryOptions::DEFAULT_EVENT_CAPACITY).with_spans();
    let Some(telemetry) = workload.observe_first_run(args.quick, opts) else {
        eprintln!("[{}] workload has no telemetry support", workload.name());
        std::process::exit(1);
    };
    let events = telemetry.events.events();
    let jsonl = export::to_jsonl(&events);
    let count = match export::validate_jsonl(&jsonl) {
        Ok(count) => count,
        Err(e) => {
            eprintln!("error: exporter produced an invalid event log: {e}");
            std::process::exit(1);
        }
    };
    let spans = telemetry.spans.spans();
    let spans_jsonl = export::spans_to_jsonl(spans);
    let span_count = match export::validate_spans_jsonl(&spans_jsonl) {
        Ok(count) => count,
        Err(e) => {
            eprintln!("error: exporter produced an invalid span log: {e}");
            std::process::exit(1);
        }
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("can create the trace directory");
        }
    }
    std::fs::write(path, &jsonl).expect("can write the JSONL event log");
    let spans_path = sibling_path(path, ".spans.jsonl");
    std::fs::write(&spans_path, &spans_jsonl).expect("can write the span log");
    let timeline = export::to_chrome_trace_full(&events, spans, workload.name());
    let timeline_path = sibling_path(path, ".trace.json");
    std::fs::write(
        &timeline_path,
        serde_json::to_string_pretty(&timeline).expect("serializes") + "\n",
    )
    .expect("can write the timeline");
    eprintln!(
        "[{}] {count} events -> {} (validated), {span_count} spans -> {} (validated),\n\
         \x20 timeline -> {}, {} evicted by ring bounds",
        workload.name(),
        path.display(),
        spans_path.display(),
        timeline_path.display(),
        telemetry.events.dropped_total(),
    );
}

/// `FILE` + suffix (e.g. `events.jsonl` -> `events.jsonl.spans.jsonl`).
fn sibling_path(path: &std::path::Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(suffix);
    PathBuf::from(s)
}

/// `--validate-trace FILE`: validates an existing JSONL event log — every
/// line parses as a `Recorded` event, re-serializes byte-identically, and
/// the global sequence strictly increases. When a sibling
/// `FILE.spans.jsonl` exists (written by `--trace-out`), additionally
/// validates span well-formedness: every span closed or expired, every
/// `parent`/`follows_from` reference present, causal order respected, no
/// cycles. Exits nonzero naming the first violation.
fn validate_trace_file(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    match airdnd_telemetry::export::validate_jsonl(&text) {
        Ok(count) => println!("{}: {count} events, valid", path.display()),
        Err(e) => {
            eprintln!("{}: invalid event log: {e}", path.display());
            std::process::exit(1);
        }
    }
    let spans_path = sibling_path(path, ".spans.jsonl");
    if spans_path.exists() {
        let spans_text = std::fs::read_to_string(&spans_path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {}: {e}", spans_path.display());
            std::process::exit(1);
        });
        match airdnd_telemetry::export::validate_spans_jsonl(&spans_text) {
            Ok(count) => println!("{}: {count} spans, well-formed", spans_path.display()),
            Err(e) => {
                eprintln!("{}: invalid span log: {e}", spans_path.display());
                std::process::exit(1);
            }
        }
    }
}

/// `--validate-profile FILE`: validates a `BENCH_engine.json`-shaped phase
/// profile — the schema contract the CI smoke job holds `--bench-engine`
/// to. The file must carry a non-empty `workloads` map, and every workload
/// must have numeric `wall_ms`/`attributed_ms` plus a `phases.phases`
/// table attributing to **all six** engine phases (lifecycle, movement,
/// sensor, mesh, tasks, radio), each with numeric `ms`/`share`/`entries`.
/// Exits nonzero naming the first violation.
fn validate_profile_file(path: &std::path::Path) {
    use serde_json::{Number, Value};

    const PHASES: [&str; 6] = ["lifecycle", "movement", "sensor", "mesh", "tasks", "radio"];
    let fail = |msg: String| -> ! {
        eprintln!("{}: invalid profile: {msg}", path.display());
        std::process::exit(1);
    };
    fn entries(v: &Value) -> Option<&[(String, Value)]> {
        match v {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
    fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
        entries(v)?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
    fn numeric(v: &Value) -> bool {
        matches!(
            v,
            Value::Number(Number::PosInt(_) | Number::NegInt(_) | Number::Float(_))
        )
    }

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    let root = Value::parse(&text).unwrap_or_else(|| fail("not valid JSON".into()));
    match field(&root, "mode") {
        Some(Value::String(mode)) if mode == "quick" || mode == "full" => {}
        _ => fail("`mode` must be \"quick\" or \"full\"".into()),
    }
    let workloads = field(&root, "workloads")
        .and_then(entries)
        .unwrap_or_else(|| fail("missing `workloads` object".into()));
    if workloads.is_empty() {
        fail("`workloads` is empty".into());
    }
    let mut checked = 0usize;
    for (name, workload) in workloads {
        for key in ["wall_ms", "attributed_ms"] {
            if !field(workload, key).is_some_and(numeric) {
                fail(format!("workload `{name}`: missing numeric `{key}`"));
            }
        }
        let phases = field(workload, "phases")
            .and_then(|report| field(report, "phases"))
            .and_then(entries)
            .unwrap_or_else(|| fail(format!("workload `{name}`: missing `phases.phases` table")));
        for phase in PHASES {
            let entry = phases
                .iter()
                .find(|(k, _)| k == phase)
                .map(|(_, v)| v)
                .unwrap_or_else(|| fail(format!("workload `{name}`: phase `{phase}` missing")));
            for key in ["ms", "share", "entries"] {
                if !field(entry, key).is_some_and(numeric) {
                    fail(format!(
                        "workload `{name}`: phase `{phase}` missing numeric `{key}`"
                    ));
                }
            }
        }
        checked += 1;
    }
    println!(
        "{}: {checked} workload profile(s), all six phases attributed, valid",
        path.display()
    );
}

/// `explain WORKLOAD [--query K]`: executes the workload's first manifest
/// run with span recording enabled, picks one query (task id `K`, or the
/// first completed query when `--query` is omitted), prints its causal
/// span tree, and decomposes its end-to-end latency into the five
/// critical-path stages — which sum exactly to the total by construction.
fn run_explain(args: &Args) {
    use airdnd_telemetry::{extract, Span, SpanKind, SpanStatus, Stage, TelemetryOptions};

    let workloads = selected(&args.names);
    let workload = workloads.first().expect("one workload name validated");
    let opts = TelemetryOptions::default().with_spans();
    let Some(telemetry) = workload.observe_first_run(args.quick, opts) else {
        eprintln!("[{}] workload has no telemetry support", workload.name());
        std::process::exit(1);
    };
    let spans = telemetry.spans.spans();
    if let Err(e) = airdnd_telemetry::validate_spans(spans) {
        eprintln!("error: recorded span log is malformed: {e}");
        std::process::exit(1);
    }
    let completed: Vec<u64> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Query && s.status == SpanStatus::Closed)
        .map(|s| s.task)
        .collect();
    let task = match args.query {
        Some(k) => k,
        None => match completed.first() {
            Some(&task) => task,
            None => {
                eprintln!(
                    "[{}] first run recorded no completed query to explain",
                    workload.name()
                );
                std::process::exit(1);
            }
        },
    };
    let query: Vec<&Span> = spans.iter().filter(|s| s.task == task).collect();
    if query.is_empty() {
        eprintln!(
            "[{}] no spans for task {task}; completed queries: {completed:?}",
            workload.name()
        );
        std::process::exit(1);
    }
    println!(
        "[{}] query task#{task} — {} span(s):",
        workload.name(),
        query.len()
    );
    print_span_tree(&query);
    match extract(spans, task) {
        Some(budget) => {
            println!("critical-path stage budget:");
            for stage in Stage::ALL {
                let us = budget.stage_us(stage);
                let share = if budget.total_us == 0 {
                    0.0
                } else {
                    us as f64 / budget.total_us as f64 * 100.0
                };
                println!(
                    "  {:<9} {:>12.3} ms  ({share:>5.1} %)",
                    stage.name(),
                    us as f64 / 1e3
                );
            }
            println!(
                "  {:<9} {:>12.3} ms  (stages sum exactly to the total)",
                "total",
                budget.total_us as f64 / 1e3
            );
            assert_eq!(budget.stages_total_us(), budget.total_us);
        }
        None => println!(
            "task {task} never completed — no stage budget (spans above show how far it got)"
        ),
    }
}

/// Prints one query's spans as a tree (children under their `parent`,
/// recording order within a level), annotating cross-node causality.
fn print_span_tree(query: &[&airdnd_telemetry::Span]) {
    fn print_node(query: &[&airdnd_telemetry::Span], id: u64, depth: usize) {
        let Some(span) = query.iter().find(|s| s.id == id) else {
            return;
        };
        let ms = |t: airdnd_sim::SimTime| t.as_nanos() as f64 / 1e6;
        let status = match span.status {
            airdnd_telemetry::SpanStatus::Open => "open",
            airdnd_telemetry::SpanStatus::Closed => "closed",
            airdnd_telemetry::SpanStatus::Expired => "expired",
        };
        let follows = span
            .follows_from
            .map(|f| format!(", follows #{f}"))
            .unwrap_or_default();
        println!(
            "  {:indent$}{:<13} #{:<3} node#{:<4} [{:>10.3} ms .. {:>10.3} ms]  {:>9.3} ms  {status}{follows}",
            "",
            span.kind.label(),
            span.id,
            span.actor,
            ms(span.start),
            span.end.map(ms).unwrap_or(f64::NAN),
            span.duration_us() as f64 / 1e3,
            indent = depth * 2,
        );
        for child in query.iter().filter(|s| s.parent == Some(id)) {
            print_node(query, child.id, depth + 1);
        }
    }
    for root in query.iter().filter(|s| s.parent.is_none()) {
        print_node(query, root.id, 0);
    }
}

/// `--bench-compare OLD.json NEW.json`: diffs two engine-bench profiles
/// per `(workload, phase)` and exits nonzero when any phase regressed
/// beyond `--max-regress` percent (and a 1 ms absolute floor). The table
/// goes to stdout; regressions are repeated on stderr.
fn bench_compare(old: &std::path::Path, new: &std::path::Path, max_regress_pct: f64) {
    let read = |path: &std::path::Path| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(1);
        })
    };
    let comparison =
        airdnd_bench::compare::compare_profiles(&read(old), &read(new), max_regress_pct)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
    println!(
        "bench-compare {} -> {} (tolerance {max_regress_pct} %):",
        old.display(),
        new.display()
    );
    for delta in &comparison.deltas {
        println!("  {delta}");
    }
    let regressions = comparison.regressions();
    if regressions.is_empty() {
        println!("no regressions beyond {max_regress_pct} %");
    } else {
        eprintln!(
            "error: {} phase(s) regressed beyond {max_regress_pct} %:",
            regressions.len()
        );
        for delta in regressions {
            eprintln!("  {delta}");
        }
        std::process::exit(1);
    }
}

/// `--bench-engine`: emits `BENCH_engine.json` — wall-clock attributed to
/// engine phases (lifecycle, movement, sensor, mesh, tasks, radio) for
/// one profiled run of each scenario-backed workload kind: the canonical
/// F2 grid, G3's churned generated world, G4's multi-ego world and G5's
/// composite city. The attribution is the baseline the planned engine
/// optimizations are measured against. Wall-clock only — never
/// byte-diffed.
fn engine_snapshot(quick: bool) {
    use airdnd_telemetry::TelemetryOptions;
    use serde_json::json;

    let opts = TelemetryOptions {
        events: None,
        profile: true,
        spans: false,
    };
    let mut profiles = Vec::new();
    for name in ["f2", "g3", "g4", "g5"] {
        let workload = workloads::find(name).expect("registered workload");
        eprintln!("profiling first {name} run ...");
        let start = Instant::now();
        let telemetry = workload
            .observe_first_run(quick, opts)
            .expect("scenario workloads support telemetry");
        let wall = start.elapsed();
        let attributed_ms = telemetry.phases.total_nanos() as f64 / 1.0e6;
        profiles.push((
            name,
            json!({
                "wall_ms": wall.as_secs_f64() * 1e3,
                "attributed_ms": attributed_ms,
                "phases": telemetry.phases.report(),
            }),
        ));
    }
    let entries: Vec<(String, serde_json::Value)> = profiles
        .into_iter()
        .map(|(name, profile)| (name.to_owned(), profile))
        .collect();
    let snapshot = json!({
        "description": "wall-clock attribution to engine phases (first manifest run of each workload, profiling hooks enabled)",
        "mode": if quick { "quick" } else { "full" },
        "workloads": serde_json::Value::Object(entries),
    });
    let path = "BENCH_engine.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&snapshot).expect("serializes") + "\n",
    )
    .expect("can write BENCH_engine.json");
    println!("wrote {path}");
}

/// Default mode: execute each selected workload completely, print its
/// table and write the aggregate JSON/CSV artifacts.
fn run_full(args: &Args) {
    for workload in selected(&args.names) {
        let output = workload.execute(
            args.quick,
            args.threads,
            &mut stderr_progress(workload.name()),
        );
        eprintln!();
        print!("{}", output.result.table.render());
        let (json_path, csv_path) =
            write_report(&args.out, &output.aggregate).expect("can write sweep artifacts");
        eprintln!(
            "  -> {}\n  -> {}\n",
            json_path.display(),
            csv_path.display()
        );
    }
}

/// `--shard i/n`: run only this slice of each selected workload and write
/// one mergeable artifact per workload (atomically: tmp + rename, so a
/// crash mid-write never leaves a torn artifact). Nothing goes to stdout —
/// tables only exist once every shard has been merged.
///
/// Fault injection (tests only): `--fail-after K` kills the process after
/// K runs complete, before the current workload's artifact is written;
/// `--torn` bypasses the atomic write for the first workload, leaves a
/// truncated artifact, and exits nonzero — simulating a non-atomic writer
/// dying mid-write.
fn run_shards(args: &Args, shard: Shard) {
    let mut runs_before = 0usize;
    for workload in selected(&args.names) {
        let mut progress = stderr_progress(workload.name());
        let artifact = workload.execute_shard(args.quick, args.threads, shard, &mut |p| {
            progress(p);
            if let Some(limit) = args.fail_after {
                if runs_before + p.done >= limit {
                    eprintln!("\ninjected failure: exiting after {limit} run(s)");
                    std::process::exit(3);
                }
            }
        });
        runs_before += artifact.results.len();
        eprintln!();
        if args.skip_write {
            // The lying-exit fault: claim success while delivering nothing.
            // The driver must trust the validator, not this exit code.
            eprintln!("injected skip: exiting 0 without writing artifacts");
            std::process::exit(0);
        }
        let path = args.out.join(shard_artifact_name(workload.name(), shard));
        let text = render_shard(&artifact);
        if args.torn {
            std::fs::write(&path, &text.as_bytes()[..text.len() / 2])
                .expect("can write torn artifact");
            eprintln!("injected torn artifact: {} truncated", path.display());
            std::process::exit(4);
        }
        write_atomic(&path, &text).expect("can write shard artifact");
        eprintln!(
            "  -> {} ({} runs)\n",
            path.display(),
            artifact.results.len()
        );
    }
}

/// `--merge dir...` (and the tail of `drive`): load every selected
/// workload's shard artifacts from the given directories, reassemble in
/// manifest order, and emit exactly what an unsharded run would have
/// emitted.
fn run_merge(args: &Args, dirs: &[PathBuf]) {
    for workload in selected(&args.names) {
        let artifacts = load_artifacts(workload.name(), dirs);
        if artifacts.is_empty() {
            eprintln!(
                "warning: no shard artifacts for `{}`, skipping",
                workload.name()
            );
            continue;
        }
        let output = workload
            .merge_shards(args.quick, &artifacts)
            .unwrap_or_else(|e| {
                eprintln!("error: cannot merge `{}`: {e}", workload.name());
                std::process::exit(1);
            });
        print!("{}", output.result.table.render());
        let (json_path, csv_path) =
            write_report(&args.out, &output.aggregate).expect("can write sweep artifacts");
        eprintln!(
            "  -> {}\n  -> {}\n",
            json_path.display(),
            csv_path.display()
        );
    }
}

/// All shard artifacts for one workload across the merge directories, in
/// deterministic (dir, filename) order.
fn load_artifacts(name: &str, dirs: &[PathBuf]) -> Vec<ShardArtifact> {
    let prefix = format!("{name}.shard");
    let mut artifacts = Vec::new();
    for dir in dirs {
        let entries = std::fs::read_dir(dir)
            .unwrap_or_else(|e| panic!("cannot read merge dir {}: {e}", dir.display()));
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|f| f.to_str())
                    .is_some_and(|f| f.starts_with(&prefix) && f.ends_with(".json"))
            })
            .collect();
        files.sort();
        for file in files {
            let text = std::fs::read_to_string(&file)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
            let artifact = parse_shard(&text)
                .unwrap_or_else(|e| panic!("cannot parse {}: {e}", file.display()));
            artifacts.push(artifact);
        }
    }
    artifacts
}

/// Deletes `<name>.shard<i>of<n>.json` artifacts whose `n` is not this
/// drive's shard count: they belong to an abandoned split and the final
/// merge (which globs every `<name>.shard*.json` in the out dir) must
/// never see them.
fn purge_foreign_splits(dir: &std::path::Path, name: &str, shard_count: usize) {
    let prefix = format!("{name}.shard");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let file = entry.file_name();
        let Some(file) = file.to_str() else { continue };
        let Some(middle) = file
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(".json"))
        else {
            continue;
        };
        let count = middle
            .split_once("of")
            .and_then(|(_, n)| n.parse::<usize>().ok());
        if count != Some(shard_count) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// `drive`: the distributed sweep driver. Spawns `--shards` subprocesses
/// of this binary (each `--shard i/n`, at most `--jobs` at a time),
/// validates artifacts against the manifest fingerprint (resume skips
/// valid completed shards, torn/stale ones are deleted and re-run),
/// retries failures up to `--retries`, tracks per-shard status in
/// `<out>/drive-state.json`, and merges — producing stdout and report
/// artifacts byte-identical to a single-process run.
fn run_drive(args: &Args) {
    let workloads = selected(&args.names);
    let shard_count = args.shards;
    let jobs = if args.jobs == 0 {
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(shard_count)
    } else {
        args.jobs
    };
    let expectations: Vec<(String, String, usize)> = workloads
        .iter()
        .map(|w| {
            (
                w.name().to_owned(),
                airdnd_harness::fingerprint_hex(w.fingerprint(args.quick)),
                w.total_runs(args.quick),
            )
        })
        .collect();
    let fingerprints: Vec<String> = expectations.iter().map(|(_, fp, _)| fp.clone()).collect();
    // Artifacts left by a drive with a *different* shard count can never
    // merge with this split (and would trip the merge glob); purge them so
    // changing --shards over the same --out dir just re-runs cleanly.
    for (name, _, _) in &expectations {
        purge_foreign_splits(&args.out, name, shard_count);
    }
    let logs_dir = args.out.join("drive-logs");
    std::fs::create_dir_all(&logs_dir).expect("can create the drive log directory");

    // A shard is complete iff every selected workload's artifact exists,
    // parses, matches the current grid fingerprint, and covers exactly its
    // slice of run indices. Anything less is deleted so a re-run starts
    // clean — a torn (truncated) artifact is indistinguishable from a
    // missing one by design.
    let out = args.out.clone();
    let validate = move |shard: Shard| -> Validation {
        for (name, fingerprint, total_runs) in &expectations {
            let path = out.join(shard_artifact_name(name, shard));
            let Ok(text) = std::fs::read_to_string(&path) else {
                return Validation::Missing(format!("artifact {} missing", path.display()));
            };
            let discard = |reason: String| {
                let _ = std::fs::remove_file(&path);
                Validation::Invalid(reason)
            };
            let artifact = match parse_shard(&text) {
                Ok(artifact) => artifact,
                Err(e) => return discard(format!("torn artifact {}: {e}", path.display())),
            };
            if artifact.workload != *name
                || artifact.shard_index != shard.index
                || artifact.shard_count != shard.count
                || artifact.total_runs != *total_runs
                || artifact.fingerprint != *fingerprint
            {
                return discard(format!(
                    "stale artifact {} (grid or split changed)",
                    path.display()
                ));
            }
            let expected: Vec<usize> = shard_bounds(*total_runs, shard).collect();
            let got: Vec<usize> = artifact.results.iter().map(|r| r.run_index).collect();
            if got != expected {
                return discard(format!(
                    "incomplete artifact {} ({} of {} runs)",
                    path.display(),
                    got.len(),
                    expected.len()
                ));
            }
        }
        Validation::Valid
    };

    // The child protocol: re-invoke this binary in `--shard i/n` mode with
    // the same grids pinned (explicit workload names, quick flag, thread
    // count). Children keep stdout silent; stderr goes to a per-attempt
    // log under drive-logs/. On a staging transport the child's --out is
    // its host's staging directory — artifacts only reach the real out
    // dir via a successful fetch.
    let exe = std::env::current_exe().expect("can locate the sweep binary");
    let names: Vec<String> = workloads.iter().map(|w| w.name().to_owned()).collect();
    let command = |ctx: &SpawnCtx<'_>| -> CommandSpec {
        let shard = ctx.shard;
        let child_out = ctx
            .staging
            .map_or_else(|| args.out.clone(), std::path::Path::to_path_buf);
        let mut spec = CommandSpec::new(exe.to_string_lossy());
        if args.quick {
            spec = spec.arg("--quick");
        }
        spec = spec
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--out")
            .arg(child_out.to_string_lossy())
            // Process-level parallelism is the drive's own: each child
            // gets one worker thread unless the caller asked for more.
            .arg("--threads")
            .arg(args.threads.max(1).to_string())
            .args(names.iter().cloned());
        if ctx.attempt == 0 {
            // First-attempt-only fault injection, so retries recover.
            if let Some(&(_, k)) = args.inject_fail.iter().find(|(i, _)| *i == shard.index) {
                spec = spec.arg("--fail-after").arg(k.to_string());
            }
            if args.inject_torn.contains(&shard.index) {
                spec = spec.arg("--torn");
            }
            if args.inject_skip.contains(&shard.index) {
                spec = spec.arg("--skip-write");
            }
        }
        spec.stderr_log(
            logs_dir
                .join(format!(
                    "shard{}of{}.attempt{}.log",
                    shard.index, shard.count, ctx.attempt
                ))
                .to_string_lossy(),
        )
    };

    let opts = DriveOptions {
        shard_count,
        jobs,
        retries: args.retries,
        state_path: args.out.join("drive-state.json"),
        workloads: names.clone(),
        fingerprints,
        quick: args.quick,
        tuning: DriveTuning::default(),
    };
    let log = |msg: &str| eprintln!("[drive] {msg}");
    let result = if args.hosts > 1 {
        // Simulated multi-host mode: shard jobs execute in-process on a
        // deterministic virtual-time host pool, write artifacts into
        // per-host staging, and only reach --out via a successful fetch.
        // Host faults come from the --inject-lost-host / --inject-partition
        // / --inject-spawn-death schedule; shard-level faults
        // (--inject-fail / --inject-torn / --inject-skip) apply to the
        // first attempt exactly as on the local path.
        let faults = SimFaults {
            lost_hosts: args.inject_lost_host.clone(),
            dead_at_spawn: args.inject_spawn_death.clone(),
            partitions: args.inject_partition.clone(),
            ..SimFaults::default()
        };
        let staging_root = args.out.join("drive-staging");
        let _ = std::fs::remove_dir_all(&staging_root);
        let runner = |job: SimJob<'_>| -> bool {
            if job.attempt == 0 {
                if args.inject_fail.iter().any(|(i, _)| *i == job.shard.index) {
                    return false; // the crash: nonzero exit, nothing written
                }
                if args.inject_skip.contains(&job.shard.index) {
                    return true; // the lying exit: zero exit, nothing written
                }
            }
            for workload in &workloads {
                let artifact =
                    workload.execute_shard(args.quick, args.threads.max(1), job.shard, &mut |_| {});
                let path = job
                    .staging
                    .join(shard_artifact_name(workload.name(), job.shard));
                let text = render_shard(&artifact);
                if job.attempt == 0 && args.inject_torn.contains(&job.shard.index) {
                    let _ = std::fs::write(&path, &text.as_bytes()[..text.len() / 2]);
                    return false; // died mid-write: torn artifact left behind
                }
                if write_atomic(&path, &text).is_err() {
                    return false;
                }
            }
            true
        };
        let mut sim = SimHostTransport::new(
            args.hosts,
            shard_count,
            args.out.clone(),
            staging_root,
            faults,
            runner,
        );
        drive_with(&mut sim, &opts, command, validate, log)
    } else {
        drive(&opts, command, validate, log)
    };
    match result {
        Ok(report) => {
            eprintln!(
                "[drive] all {} shards done ({} resumed, {} subprocess launches)",
                shard_count,
                report.resumed(),
                report.launches()
            );
        }
        Err(e) => {
            eprintln!(
                "[drive] error: {e}\n[drive] state: {}",
                opts.state_path.display()
            );
            std::process::exit(1);
        }
    }
    run_merge(args, std::slice::from_ref(&args.out));
}

/// Emits `BENCH_harness.json`: sequential vs parallel wall-clock for the
/// quick F2 sweep, plus pure dispatch overhead on no-op runs.
fn bench_snapshot(threads: usize) {
    use airdnd_harness::{run_sweep, SweepSpec};
    use serde_json::json;

    let f2 = workloads::find("f2").expect("f2 registered");
    let f2_runs = f2.total_runs(true);
    eprintln!("timing quick F2 sweep ({f2_runs} runs) ...");
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Mirror the executor's clamp so the snapshot records the worker
    // count the parallel F2 run actually used.
    let f2_workers = (if threads == 0 { hw } else { threads }).clamp(1, f2_runs);
    let start = Instant::now();
    let seq = f2.execute(true, 1, &mut |_| {});
    let seq_wall = start.elapsed();
    let start = Instant::now();
    let par = f2.execute(true, threads, &mut |_| {});
    let par_wall = start.elapsed();
    let identical = seq.result.table.render() == par.result.table.render();
    assert!(
        identical,
        "sequential and parallel F2 tables must be byte-identical"
    );

    // Pure orchestration overhead: dispatch N no-op runs.
    let noop_runs = 4096usize;
    let noop = SweepSpec::new(0u64)
        .axis("run", 0..noop_runs as u64, |cfg, &v| *cfg = v)
        .manifest();
    let pool = if threads == 0 { hw } else { threads };
    let start = Instant::now();
    let outcome = run_sweep(&noop, pool, |plan| plan.config);
    assert_eq!(outcome.results.len(), noop_runs);
    let noop_elapsed = start.elapsed();

    let snapshot = json!({
        "description": "harness overhead + sequential-vs-parallel wall clock for the quick F2 sweep",
        "hardware_threads": hw,
        "f2_quick": json!({
            "runs": f2_runs,
            "sequential_ms": seq_wall.as_secs_f64() * 1e3,
            "parallel_ms": par_wall.as_secs_f64() * 1e3,
            "parallel_threads": f2_workers,
            "speedup": seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9),
            "outputs_byte_identical": identical,
        }),
        "noop_dispatch": json!({
            "runs": noop_runs,
            "total_ms": noop_elapsed.as_secs_f64() * 1e3,
            "per_run_us": noop_elapsed.as_secs_f64() * 1e6 / noop_runs as f64,
        }),
    });
    let path = "BENCH_harness.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&snapshot).expect("serializes") + "\n",
    )
    .expect("can write BENCH_harness.json");
    println!("wrote {path}");
    worldgen_snapshot();
}

/// Emits `BENCH_worldgen.json`: the per-run world-generation overhead the
/// generated workloads (G1/G2) pay — map synthesis, occlusion derivation
/// and placement per family — plus one quick G1 sweep for scale.
fn worldgen_snapshot() {
    use airdnd_scenario::ScenarioConfig;
    use airdnd_worldgen::{families, FleetProfile};
    use serde_json::json;

    let cfg = ScenarioConfig::default().seeded(42);
    let profile = FleetProfile::dense();
    let mut per_family = Vec::new();
    for family in families() {
        // Warm up once, then time a fixed batch.
        let _ = family.kind.instantiate(&cfg, &profile);
        let iters = 200u32;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(family.kind.instantiate(&cfg, &profile));
        }
        let elapsed = start.elapsed();
        per_family.push(json!({
            "family": family.name,
            "instantiate_us": elapsed.as_secs_f64() * 1e6 / f64::from(iters),
        }));
    }
    let g1 = workloads::find("g1").expect("g1 registered");
    let start = Instant::now();
    let _ = g1.execute(true, 1, &mut |_| {});
    let g1_wall = start.elapsed();
    let snapshot = json!({
        "description": "world-generation overhead per family (map synthesis + occlusion derivation + placement) and quick G1 wall clock",
        "instantiate": per_family,
        "g1_quick": json!({
            "runs": g1.total_runs(true),
            "sequential_ms": g1_wall.as_secs_f64() * 1e3,
        }),
    });
    let path = "BENCH_worldgen.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&snapshot).expect("serializes") + "\n",
    )
    .expect("can write BENCH_worldgen.json");
    println!("wrote {path}");
}
