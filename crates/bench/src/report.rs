//! Experiment output: printable tables plus JSON persistence.
//!
//! The types themselves ([`Table`], [`ExperimentResult`]) moved into
//! `airdnd-harness` when the experiment API went generic — every workload
//! tabulator produces them, so they belong next to the `Workload` trait.
//! This module re-exports them under the old paths.

pub use airdnd_harness::{fmt_ci, fmt_f, fmt_opt, ExperimentResult, Table};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T0", "demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("T0 — demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[2].len(),
            lines[3].len(),
            "aligned rows have equal width"
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_f(42.5), "42.5");
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_opt(None), "-");
    }
}
