//! Experiment output: printable tables plus JSON persistence.

use serde::Serialize;
use std::fmt::Write as _;

/// A printable, serializable experiment table.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment id, e.g. `"F2"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }
}

/// A finished experiment: its table plus any raw series for plotting.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentResult {
    /// The rendered table.
    pub table: Table,
    /// Named raw series (e.g. CDF points) for plotting.
    pub series: serde_json::Value,
}

impl ExperimentResult {
    /// A result with no extra series.
    pub fn table_only(table: Table) -> Self {
        ExperimentResult {
            table,
            series: serde_json::Value::Null,
        }
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats an optional float (`-` when absent).
pub fn fmt_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_owned(), fmt_f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T0", "demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("T0 — demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[2].len(),
            lines[3].len(),
            "aligned rows have equal width"
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_f(42.5), "42.5");
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_opt(None), "-");
    }
}
