//! Lifecycle and multi-ego workloads: the dynamic-mesh claims under test.
//!
//! * **G3** — fleet lifecycle churn: a seed-driven arrival/departure
//!   process (`worldgen::ChurnProcess`) compiles into a `FleetSchedule`
//!   the engine applies at tick boundaries, so mesh membership genuinely
//!   changes mid-run. Does task-to-data offloading keep completing views
//!   while vehicles join and leave (gracefully and abruptly) — including
//!   on the `bridge` family, whose tunnel shell radio-partitions the
//!   mesh as vehicles traverse it?
//! * **G4** — multi-ego demand: 2+ concurrent query origins, each with
//!   its own hidden-region grid derived along its own approach path. How
//!   do completion and latency respond as more egos contend for the same
//!   helper pool?
//!
//! Both configs are pure data — the churn schedule and the extra-ego
//! routes are generated *inside* the run from the config seed — so the
//! workloads shard, merge and drive through the harness unchanged.

use airdnd_harness::{
    fmt_ci, fmt_f, Aggregate, ExperimentResult, FnWorkload, Manifest, RunPlan, SeedMode, SweepSpec,
    Table,
};
use airdnd_scenario::{run_scenario_in, run_scenario_in_traced, ScenarioConfig, ScenarioReport};
use airdnd_worldgen::{
    assign_extra_egos, ChurnProcess, DemandKind, FamilyKind, FleetProfile, GridParams,
};
use serde::{Deserialize, Serialize};

use super::full_mode_replicates as replicates;
use super::scenario::scenario_metrics_with_stages;
use super::worldgen::GenConfig;

/// One lifecycle-churn run: a generated world plus the churn process that
/// compiles into its fleet schedule at materialization time.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LifecycleConfig {
    /// The generated world and scenario knobs.
    pub gen: GenConfig,
    /// The arrival/departure process applied through the engine.
    pub churn: ChurnProcess,
}

/// One multi-ego run: a generated world fielding `egos` query origins.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MultiEgoConfig {
    /// The generated world and scenario knobs.
    pub gen: GenConfig,
    /// Concurrent query origins (primary ego included, so `1` is the
    /// classic single-ego run).
    pub egos: usize,
}

/// The single materialization path for G3 — `run` and `trace` must build
/// the identical run, or the trace lens would debug a different world
/// than the one producing the artifacts.
fn build_lifecycle(cfg: &LifecycleConfig) -> (airdnd_scenario::WorldInstance, ScenarioConfig) {
    let (mut world, scenario) = super::worldgen::materialize(&cfg.gen);
    world.schedule = cfg.churn.schedule(
        scenario.duration.as_secs_f64(),
        world.stage.net.arm_count(),
        scenario.seed,
    );
    (world, scenario)
}

/// The single materialization path for G4 and G5 (see
/// [`build_lifecycle`]).
pub(crate) fn build_multi_ego(
    cfg: &MultiEgoConfig,
) -> (airdnd_scenario::WorldInstance, ScenarioConfig) {
    let (mut world, scenario) = super::worldgen::materialize(&cfg.gen);
    assign_extra_egos(
        &mut world,
        cfg.egos.saturating_sub(1),
        scenario.hidden_agents,
    );
    (world, scenario)
}

fn run_lifecycle(plan: &RunPlan<LifecycleConfig>) -> ScenarioReport {
    let (world, scenario) = build_lifecycle(&plan.config);
    run_scenario_in(world, scenario)
}

fn trace_lifecycle(plan: &RunPlan<LifecycleConfig>, capacity: usize) -> String {
    let (world, scenario) = build_lifecycle(&plan.config);
    run_scenario_in_traced(world, scenario, capacity).1
}

fn observe_lifecycle(
    plan: &RunPlan<LifecycleConfig>,
    opts: airdnd_scenario::TelemetryOptions,
) -> airdnd_scenario::RunTelemetry {
    let (world, scenario) = build_lifecycle(&plan.config);
    airdnd_scenario::run_scenario_in_observed(world, scenario, opts).1
}

pub(crate) fn run_multi_ego(plan: &RunPlan<MultiEgoConfig>) -> ScenarioReport {
    let (world, scenario) = build_multi_ego(&plan.config);
    run_scenario_in(world, scenario)
}

pub(crate) fn trace_multi_ego(plan: &RunPlan<MultiEgoConfig>, capacity: usize) -> String {
    let (world, scenario) = build_multi_ego(&plan.config);
    run_scenario_in_traced(world, scenario, capacity).1
}

pub(crate) fn observe_multi_ego(
    plan: &RunPlan<MultiEgoConfig>,
    opts: airdnd_scenario::TelemetryOptions,
) -> airdnd_scenario::RunTelemetry {
    let (world, scenario) = build_multi_ego(&plan.config);
    airdnd_scenario::run_scenario_in_observed(world, scenario, opts).1
}

/// Scenario metrics plus the lifecycle counters the churn study tracks.
fn lifecycle_metrics(r: &ScenarioReport) -> Vec<(&'static str, f64)> {
    let mut metrics = scenario_metrics_with_stages(r);
    metrics.push(("lifecycle_spawns", r.lifecycle_spawns as f64));
    metrics.push(("lifecycle_despawns", r.lifecycle_despawns as f64));
    metrics.push(("joins", r.joins as f64));
    metrics.push(("leaves", r.leaves as f64));
    metrics
}

/// Scenario metrics plus the query-origin count and the per-ego fairness
/// aggregates the telemetry registry computes: the worst-served ego's
/// completion rate and latency quantiles, and the completion spread.
pub(crate) fn multi_ego_metrics(r: &ScenarioReport) -> Vec<(&'static str, f64)> {
    let mut metrics = scenario_metrics_with_stages(r);
    metrics.push(("egos", r.egos as f64));
    metrics.push(("ego_completion_min", r.ego_completion_min));
    metrics.push(("ego_completion_spread", r.ego_completion_spread));
    metrics.push(("ego_p50_worst_ms", r.ego_p50_worst_ms));
    metrics.push(("ego_p95_worst_ms", r.ego_p95_worst_ms));
    metrics
}

// --- G3: fleet lifecycle churn through the engine ---

/// G3 — mid-run membership change: churn process × map family.
pub fn g3() -> FnWorkload<LifecycleConfig, ScenarioReport> {
    FnWorkload {
        name: "g3",
        title: "fleet lifecycle churn through the engine (spawn/despawn mid-run)",
        spec: g3_spec,
        run: run_lifecycle,
        metrics: lifecycle_metrics,
        tabulate: g3_tabulate,
        trace: Some(trace_lifecycle),
        observe: Some(observe_lifecycle),
    }
}

fn g3_families(quick: bool) -> Vec<FamilyKind> {
    let bridge = airdnd_worldgen::find("bridge").expect("registered").kind;
    if quick {
        vec![FamilyKind::Grid(GridParams::default()), bridge]
    } else {
        let roundabout = airdnd_worldgen::find("roundabout")
            .expect("registered")
            .kind;
        vec![FamilyKind::Grid(GridParams::default()), roundabout, bridge]
    }
}

fn g3_spec(quick: bool) -> SweepSpec<LifecycleConfig> {
    // Heavy churn first so `sweep --trace N g3` (which dumps the first
    // manifest run) shows real mid-run membership change.
    let churns: Vec<ChurnProcess> = if quick {
        vec![ChurnProcess::heavy(), ChurnProcess::none()]
    } else {
        vec![
            ChurnProcess::heavy(),
            ChurnProcess::mild(),
            ChurnProcess::none(),
        ]
    };
    let base = LifecycleConfig {
        gen: GenConfig {
            family: FamilyKind::Grid(GridParams::default()),
            profile: FleetProfile {
                parked: 2,
                ..FleetProfile::default()
            },
            demand: DemandKind::Steady,
            scenario: GenConfig::quick_or(quick, 40),
        },
        churn: ChurnProcess::none(),
    };
    SweepSpec::new(base)
        .axis_labeled(
            "family",
            g3_families(quick),
            |f| f.label().to_owned(),
            |cfg, &f| cfg.gen.family = f,
        )
        .axis_labeled(
            "churn",
            churns,
            |c| c.label().to_owned(),
            |cfg, &c| cfg.churn = c,
        )
        .replicates(replicates(quick))
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(115)
        .seed_with(|cfg, seed| cfg.gen.scenario.seed = seed)
}

fn g3_tabulate(
    manifest: &Manifest<LifecycleConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "G3",
        "fleet lifecycle churn through the engine (spawn/despawn mid-run)",
        &[
            "family",
            "churn",
            "tasks",
            "done %",
            "±95",
            "spawns",
            "despawns",
            "mesh ev/min",
            "p95 ms",
        ],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let done = Aggregate::of(rs, |r| r.completion_rate * 100.0);
        table.row(vec![
            plans[0].labels[0].clone(),
            plans[0].labels[1].clone(),
            fmt_f(Aggregate::of(rs, |r| r.tasks_submitted as f64).mean),
            fmt_f(done.mean),
            fmt_ci(&done),
            fmt_f(Aggregate::of(rs, |r| r.lifecycle_spawns as f64).mean),
            fmt_f(Aggregate::of(rs, |r| r.lifecycle_despawns as f64).mean),
            fmt_f(Aggregate::of(rs, |r| (r.joins + r.leaves) as f64 / (r.duration_s / 60.0)).mean),
            fmt_f(Aggregate::of(rs, |r| r.latency_p95_ms).mean),
        ]);
    }
    ExperimentResult::table_only(table)
}

// --- G4: multi-ego demand ---

/// G4 — concurrent query origins contending for the helper pool.
pub fn g4() -> FnWorkload<MultiEgoConfig, ScenarioReport> {
    FnWorkload {
        name: "g4",
        title: "multi-ego demand (concurrent query origins, per-ego grids)",
        spec: g4_spec,
        run: run_multi_ego,
        metrics: multi_ego_metrics,
        tabulate: g4_tabulate,
        trace: Some(trace_multi_ego),
        observe: Some(observe_multi_ego),
    }
}

fn g4_spec(quick: bool) -> SweepSpec<MultiEgoConfig> {
    let egos: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3] };
    let families: Vec<FamilyKind> = if quick {
        vec![FamilyKind::Grid(GridParams::default())]
    } else {
        vec![
            FamilyKind::Grid(GridParams::default()),
            airdnd_worldgen::find("roundabout")
                .expect("registered")
                .kind,
        ]
    };
    let base = MultiEgoConfig {
        gen: GenConfig {
            family: FamilyKind::Grid(GridParams::default()),
            profile: FleetProfile {
                vehicles: 14,
                parked: 2,
                arrival_window_s: 20.0,
            },
            demand: DemandKind::Steady,
            scenario: GenConfig::quick_or(quick, 40),
        },
        egos: 1,
    };
    SweepSpec::new(base)
        .axis_labeled(
            "family",
            families,
            |f| f.label().to_owned(),
            |cfg, &f| cfg.gen.family = f,
        )
        .axis("egos", egos.to_vec(), |cfg, &n| cfg.egos = n)
        .replicates(replicates(quick))
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(116)
        .seed_with(|cfg, seed| cfg.gen.scenario.seed = seed)
}

fn g4_tabulate(
    manifest: &Manifest<MultiEgoConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "G4",
        "multi-ego demand (concurrent query origins, per-ego grids)",
        &[
            "family",
            "egos",
            "tasks",
            "done %",
            "±95",
            "worst ego %",
            "spread",
            "worst p50 ms",
            "worst p95 ms",
            "coverage %",
            "kB/view",
        ],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let done = Aggregate::of(rs, |r| r.completion_rate * 100.0);
        table.row(vec![
            plans[0].labels[0].clone(),
            plans[0].labels[1].clone(),
            fmt_f(Aggregate::of(rs, |r| r.tasks_submitted as f64).mean),
            fmt_f(done.mean),
            fmt_ci(&done),
            fmt_f(Aggregate::of(rs, |r| r.ego_completion_min * 100.0).mean),
            fmt_f(Aggregate::of(rs, |r| r.ego_completion_spread * 100.0).mean),
            fmt_f(Aggregate::of(rs, |r| r.ego_p50_worst_ms).mean),
            fmt_f(Aggregate::of(rs, |r| r.ego_p95_worst_ms).mean),
            fmt_f(Aggregate::of(rs, |r| r.mean_coverage * 100.0).mean),
            fmt_f(Aggregate::of(rs, |r| r.bytes_per_task / 1_000.0).mean),
        ]);
    }
    ExperimentResult::table_only(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes() {
        assert_eq!(g3_spec(true).manifest().len(), 2 * 2);
        assert_eq!(
            g3_spec(false).manifest().len(),
            3 * 3 * super::super::scenario::FULL_REPLICATES
        );
        assert_eq!(g4_spec(true).manifest().len(), 2);
        assert_eq!(
            g4_spec(false).manifest().len(),
            2 * 3 * super::super::scenario::FULL_REPLICATES
        );
    }

    /// One churned quick cell end-to-end: membership really changes
    /// mid-run and the run still completes tasks.
    #[test]
    fn g3_churn_changes_membership_mid_run() {
        let manifest = g3_spec(true).manifest();
        // Cell order: (grid, heavy), (grid, none), (bridge, heavy), ...
        let churned = run_lifecycle(&manifest.runs[0]);
        let calm = run_lifecycle(&manifest.runs[1]);
        assert_eq!(calm.lifecycle_spawns + calm.lifecycle_despawns, 0);
        assert!(
            churned.lifecycle_spawns > 0 && churned.lifecycle_despawns > 0,
            "heavy churn must spawn and despawn: {} / {}",
            churned.lifecycle_spawns,
            churned.lifecycle_despawns
        );
        assert!(churned.tasks_submitted > 5);
    }

    /// The second query origin adds real demand on a generated world.
    #[test]
    fn g4_second_ego_adds_demand() {
        let manifest = g4_spec(true).manifest();
        let single = run_multi_ego(&manifest.runs[0]);
        let dual = run_multi_ego(&manifest.runs[1]);
        assert_eq!(single.egos, 1);
        assert_eq!(dual.egos, 2);
        assert!(
            dual.tasks_submitted > single.tasks_submitted,
            "{} vs {}",
            dual.tasks_submitted,
            single.tasks_submitted
        );
    }
}
