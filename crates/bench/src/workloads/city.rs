//! City-scale workload: the G5 scaling curve.
//!
//! * **G5** — completion, latency percentiles and per-ego fairness as
//!   fleet size and concurrent-ego count grow on the `city` composite
//!   family. The city itself scales with the fleet (more districts for
//!   more vehicles, so density stays roughly constant) — the curve
//!   therefore isolates how the *engine and protocol* respond to scale,
//!   not how a fixed map responds to crowding. Each ego is one demand
//!   stream riding its own portal arm; past one full cycle of arms the
//!   assignment wraps, stacking egos per portal.
//!
//! Every point is a [`MultiEgoConfig`] — the same pure-data config G4
//! sweeps — so G5 shards, merges, traces and drives through the harness
//! unchanged, and the per-ego fairness columns come from the same
//! telemetry registry.

use airdnd_harness::{
    fmt_f, Aggregate, ExperimentResult, FnWorkload, Manifest, SeedMode, SweepSpec, Table,
};
use airdnd_scenario::ScenarioReport;
use airdnd_sim::SimDuration;
use airdnd_worldgen::{CityParams, DemandKind, FamilyKind, FleetProfile};
use serde_json::json;

use super::lifecycle::{
    multi_ego_metrics, observe_multi_ego, run_multi_ego, trace_multi_ego, MultiEgoConfig,
};
use super::worldgen::GenConfig;

/// One point on the G5 scaling curve: a city of `dx × dy` districts
/// fielding `vehicles` and `egos`.
#[derive(Clone, Copy, Debug)]
struct ScalePoint {
    dx: usize,
    dy: usize,
    vehicles: usize,
    egos: usize,
}

impl ScalePoint {
    const fn new(dx: usize, dy: usize, vehicles: usize, egos: usize) -> Self {
        ScalePoint {
            dx,
            dy,
            vehicles,
            egos,
        }
    }

    fn label(&self) -> String {
        format!(
            "{}x{} / {}v / {}e",
            self.dx, self.dy, self.vehicles, self.egos
        )
    }
}

/// G5 — the city-scale fleet × ego scaling curve.
pub fn g5() -> FnWorkload<MultiEgoConfig, ScenarioReport> {
    FnWorkload {
        name: "g5",
        title: "city-scale fleets and concurrent egos (G5 scaling curve)",
        spec: g5_spec,
        run: run_multi_ego,
        metrics: multi_ego_metrics,
        tabulate: g5_tabulate,
        trace: Some(trace_multi_ego),
        observe: Some(observe_multi_ego),
    }
}

fn g5_spec(quick: bool) -> SweepSpec<MultiEgoConfig> {
    // A curve, not a cross: the fleet leg grows city and fleet together
    // (a constant ~40 vehicles per district, so radio density — the real
    // per-tick cost driver — stays flat while the world grows), the ego
    // leg holds the city and stacks demand. Quick keeps one small point
    // per leg so CI smokes both directions.
    let points: Vec<ScalePoint> = if quick {
        vec![ScalePoint::new(2, 1, 40, 2), ScalePoint::new(2, 2, 80, 4)]
    } else {
        vec![
            ScalePoint::new(2, 2, 160, 8),
            ScalePoint::new(4, 4, 640, 8),
            ScalePoint::new(8, 8, 2_560, 8),
            ScalePoint::new(16, 16, 10_240, 8),
            ScalePoint::new(4, 4, 640, 64),
            ScalePoint::new(4, 4, 640, 256),
        ]
    };
    // City blocks are long and arterials fast: a 500 ms tick loses no
    // fidelity, and it cuts the fixed-tick engine's per-second work 5×,
    // which is what makes the 10k-vehicle point tractable before the
    // event-scheduled core lands. The mesh timers scale with it —
    // beacons once per tick, neighbor timeout at the same 3.5-beacon
    // multiple the 100 ms default uses (leases already span 4 beacons).
    let mut scenario = GenConfig::quick_or(quick, 20);
    scenario.tick = SimDuration::from_millis(500);
    scenario.mesh.beacon_interval = SimDuration::from_millis(500);
    scenario.mesh.neighbor_timeout = SimDuration::from_millis(1_750);
    // City fleets can genuinely overload a collision domain (arterial
    // traffic funnels hundreds of transit vehicles through shared
    // airspace). Cap the MAC queue at a CAM-style frame lifetime so
    // overload sheds beacons — keeping surviving adverts fresh — instead
    // of deferring every frame later and later until all data ages out.
    scenario.radio_queue_cap = Some(SimDuration::from_millis(100));
    let base = MultiEgoConfig {
        gen: GenConfig {
            family: FamilyKind::City(CityParams::default()),
            profile: FleetProfile {
                vehicles: 40,
                parked: 2,
                arrival_window_s: 10.0,
            },
            demand: DemandKind::Steady,
            scenario,
        },
        egos: 1,
    };
    SweepSpec::new(base)
        .axis_labeled("scale", points, ScalePoint::label, |cfg, p| {
            cfg.gen.family = FamilyKind::City(CityParams::with_districts(p.dx, p.dy));
            cfg.gen.profile.vehicles = p.vehicles;
            cfg.egos = p.egos;
        })
        // One replicate even in full mode: G5 charts a scaling curve —
        // each point is a deterministic run at a scale where a second
        // seed costs minutes and the contrast of interest is across
        // points, not within a cell.
        .replicates(1)
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(117)
        .seed_with(|cfg, seed| cfg.gen.scenario.seed = seed)
}

fn g5_tabulate(
    manifest: &Manifest<MultiEgoConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "G5",
        "city-scale fleets and concurrent egos (G5 scaling curve)",
        &[
            "city",
            "fleet",
            "egos",
            "tasks",
            "done %",
            "worst ego %",
            "spread",
            "worst p50 ms",
            "worst p95 ms",
            "mesh ev/min",
        ],
    );
    let mut series = Vec::new();
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let cfg = &plans[0].config;
        let districts = match cfg.gen.family {
            FamilyKind::City(p) => format!("{}x{}", p.districts_x, p.districts_y),
            _ => "-".to_owned(),
        };
        let done = Aggregate::of(rs, |r| r.completion_rate * 100.0);
        table.row(vec![
            districts.clone(),
            cfg.gen.profile.vehicles.to_string(),
            cfg.egos.to_string(),
            fmt_f(Aggregate::of(rs, |r| r.tasks_submitted as f64).mean),
            fmt_f(done.mean),
            fmt_f(Aggregate::of(rs, |r| r.ego_completion_min * 100.0).mean),
            fmt_f(Aggregate::of(rs, |r| r.ego_completion_spread * 100.0).mean),
            fmt_f(Aggregate::of(rs, |r| r.ego_p50_worst_ms).mean),
            fmt_f(Aggregate::of(rs, |r| r.ego_p95_worst_ms).mean),
            fmt_f(Aggregate::of(rs, |r| (r.joins + r.leaves) as f64 / (r.duration_s / 60.0)).mean),
        ]);
        series.push(json!({
            "districts": districts,
            "vehicles": cfg.gen.profile.vehicles,
            "egos": cfg.egos,
            "completion_rate": done.mean / 100.0,
            "ego_completion_min": Aggregate::of(rs, |r| r.ego_completion_min).mean,
            "ego_p95_worst_ms": Aggregate::of(rs, |r| r.ego_p95_worst_ms).mean,
        }));
    }
    ExperimentResult {
        table,
        series: json!(series),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes() {
        assert_eq!(g5_spec(true).manifest().len(), 2);
        assert_eq!(g5_spec(false).manifest().len(), 6);
    }

    /// The fleet leg holds density flat: vehicles grow with the district
    /// count, and the 10k-vehicle acceptance point is on the curve.
    #[test]
    fn full_curve_reaches_ten_thousand_vehicles() {
        let manifest = g5_spec(false).manifest();
        let max = manifest
            .runs
            .iter()
            .map(|p| p.config.gen.profile.vehicles)
            .max()
            .unwrap();
        assert!(max >= 10_000, "{max}");
        let max_egos = manifest.runs.iter().map(|p| p.config.egos).max().unwrap();
        assert!(max_egos >= 256, "{max_egos}");
    }

    /// Wall-clock probe for the full-mode curve: `--ignored --nocapture`
    /// in release mode prints seconds per point. Not a correctness test —
    /// it exists so re-tuning the curve after engine changes is one
    /// command instead of a guessing game.
    #[test]
    #[ignore = "release-mode timing probe; run with --ignored --nocapture"]
    fn full_point_timing_probe() {
        let manifest = g5_spec(false).manifest();
        for plan in &manifest.runs {
            let started = std::time::Instant::now();
            let report = run_multi_ego(plan);
            println!(
                "{:>22}  {:>7.1}s wall  {:>5} tasks  {:.0}% done  {} offers  {} results  \
                 mesh@{:?}s  {:.1} members  {:.0}% cover",
                plan.labels.join(" "),
                started.elapsed().as_secs_f64(),
                report.tasks_submitted,
                report.completion_rate * 100.0,
                report.offers_sent,
                report.results_returned,
                report.mesh_formation_s,
                report.mean_members,
                report.mean_coverage * 100.0
            );
        }
    }

    /// One quick G5 cell end-to-end: the composite city really runs with
    /// multiple egos, each submitting its own demand stream.
    #[test]
    fn g5_quick_city_fields_multiple_egos() {
        let manifest = g5_spec(true).manifest();
        let report = run_multi_ego(&manifest.runs[0]);
        assert_eq!(report.egos, 2);
        assert!(report.tasks_submitted > 5, "{}", report.tasks_submitted);
        assert!(report.vehicles >= 40);
    }
}
