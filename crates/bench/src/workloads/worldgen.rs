//! Generated-world workloads: the scenario grid escapes the canonical
//! intersection.
//!
//! * **G1** — strategy comparison across map families × fleet density:
//!   does task-to-data offloading keep beating raw transfer and cloud
//!   upload when the geometry is a Manhattan grid, a radial/ring city or
//!   a highway merge instead of the hand-built corner?
//! * **G2** — mesh/orchestration dynamics under churn × demand pattern:
//!   how do formation, membership and completion respond when street
//!   speeds (churn) and the perception-query process (rush hour, bursts,
//!   spatial hotspots) vary on a generated grid with parked RSU anchors?
//!
//! Both workloads carry a [`GenConfig`]: the family recipe, the fleet
//! profile and the scenario knobs — pure data, so the runs shard, merge
//! and drive through the harness unchanged. World generation happens
//! inside the run (seed-deterministic), never in the spec.

use airdnd_harness::{
    fmt_ci, fmt_f, Aggregate, ExperimentResult, FnWorkload, Manifest, RunPlan, SeedMode, SweepSpec,
    Table,
};
use airdnd_scenario::{
    run_scenario_in, run_scenario_in_traced, ScenarioConfig, ScenarioReport, Strategy,
};
use airdnd_sim::SimDuration;
use airdnd_worldgen::{DemandKind, FamilyKind, FleetProfile, GridParams};
use serde::{Deserialize, Serialize};
use serde_json::json;

use super::full_mode_replicates as replicates;
use super::scenario::scenario_metrics_with_stages;

/// One generated-world run: family recipe + fleet profile + scenario
/// knobs + demand recipe.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GenConfig {
    /// Which map family to generate.
    pub family: FamilyKind,
    /// Fleet density/churn profile (parked helpers, arrival scatter).
    pub profile: FleetProfile,
    /// Demand recipe, resolved against the derived corridor at run time.
    pub demand: DemandKind,
    /// The scenario knobs (seed, vehicles, duration, strategy, ...).
    pub scenario: ScenarioConfig,
}

impl GenConfig {
    pub(crate) fn quick_or(quick: bool, full_secs: u64) -> ScenarioConfig {
        ScenarioConfig {
            duration: if quick {
                SimDuration::from_secs(12)
            } else {
                SimDuration::from_secs(full_secs)
            },
            ..Default::default()
        }
    }
}

/// Materializes one run: the profile's mobile-fleet density overrides
/// the scenario's vehicle count (the profile is the density knob), the
/// world generates from the config's seed, and the demand recipe
/// resolves against the derived corridor.
pub(crate) fn materialize(cfg: &GenConfig) -> (airdnd_scenario::WorldInstance, ScenarioConfig) {
    let scenario = cfg.scenario.with_vehicles(cfg.profile.vehicles);
    let world = cfg.family.instantiate(&scenario, &cfg.profile);
    let scenario = scenario.with_demand(cfg.demand.resolve(&world.stage));
    (world, scenario)
}

fn run_generated(plan: &RunPlan<GenConfig>) -> ScenarioReport {
    let (world, scenario) = materialize(&plan.config);
    run_scenario_in(world, scenario)
}

fn trace_generated(plan: &RunPlan<GenConfig>, capacity: usize) -> String {
    let (world, scenario) = materialize(&plan.config);
    run_scenario_in_traced(world, scenario, capacity).1
}

fn observe_generated(
    plan: &RunPlan<GenConfig>,
    opts: airdnd_scenario::TelemetryOptions,
) -> airdnd_scenario::RunTelemetry {
    let (world, scenario) = materialize(&plan.config);
    airdnd_scenario::run_scenario_in_observed(world, scenario, opts).1
}

/// The family axis both workloads draw from. The `city` composite is
/// excluded: G1's 8–24-vehicle densities would rattle around a
/// multi-kilometre map — the city scales through its own workload (G5).
fn family_axis(quick: bool) -> Vec<FamilyKind> {
    let all: Vec<FamilyKind> = airdnd_worldgen::families()
        .into_iter()
        .filter(|f| f.name != "corner" && f.name != "city")
        .map(|f| f.kind)
        .collect();
    if quick {
        all.into_iter().take(2).collect()
    } else {
        all
    }
}

// --- G1: strategy comparison across map families × density ---

/// G1 — strategy comparison across generated map families and densities.
pub fn g1() -> FnWorkload<GenConfig, ScenarioReport> {
    FnWorkload {
        name: "g1",
        title: "strategies across generated map families and densities",
        spec: g1_spec,
        run: run_generated,
        metrics: scenario_metrics_with_stages,
        tabulate: g1_tabulate,
        trace: Some(trace_generated),
        observe: Some(observe_generated),
    }
}

fn g1_spec(quick: bool) -> SweepSpec<GenConfig> {
    let densities: &[usize] = if quick { &[10] } else { &[8, 14, 24] };
    let strategies: &[Strategy] = if quick {
        &[Strategy::Airdnd, Strategy::LocalOnly]
    } else {
        &[
            Strategy::Airdnd,
            Strategy::Cloud { fiveg: true },
            Strategy::LocalOnly,
        ]
    };
    let base = GenConfig {
        family: FamilyKind::Grid(GridParams::default()),
        // Two parked cars on the occluded street: the excess resources
        // AirDnD rents a view from; the non-cooperative baselines pass
        // them by.
        profile: FleetProfile {
            parked: 2,
            ..FleetProfile::default()
        },
        demand: DemandKind::Steady,
        scenario: GenConfig::quick_or(quick, 40),
    };
    SweepSpec::new(base)
        .axis_labeled(
            "family",
            family_axis(quick),
            |f| f.label().to_owned(),
            |cfg, &f| cfg.family = f,
        )
        .axis("vehicles", densities.to_vec(), |cfg, &n| {
            cfg.profile.vehicles = n;
        })
        .axis_labeled(
            "strategy",
            strategies.to_vec(),
            |s| s.label().to_owned(),
            |cfg, &s| cfg.scenario.strategy = s,
        )
        .replicates(replicates(quick))
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(113)
        .seed_with(|cfg, seed| cfg.scenario.seed = seed)
}

fn g1_tabulate(manifest: &Manifest<GenConfig>, results: &[ScenarioReport]) -> ExperimentResult {
    let mut table = Table::new(
        "G1",
        "strategies across generated map families and densities",
        &[
            "family",
            "vehicles",
            "strategy",
            "done %",
            "±95",
            "p50 ms",
            "kB/view",
            "coverage %",
        ],
    );
    let mut series = Vec::new();
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let done = Aggregate::of(rs, |r| r.completion_rate * 100.0);
        table.row(vec![
            plans[0].labels[0].clone(),
            plans[0].config.profile.vehicles.to_string(),
            plans[0].labels[2].clone(),
            fmt_f(done.mean),
            fmt_ci(&done),
            fmt_f(Aggregate::of(rs, |r| r.latency_p50_ms).mean),
            fmt_f(Aggregate::of(rs, |r| r.bytes_per_task / 1_000.0).mean),
            fmt_f(Aggregate::of(rs, |r| r.mean_coverage * 100.0).mean),
        ]);
        series.push(json!({
            "family": plans[0].labels[0],
            "vehicles": plans[0].config.profile.vehicles,
            "strategy": plans[0].labels[2],
            "completion_rate": done.mean / 100.0,
            "bytes_per_task": Aggregate::of(rs, |r| r.bytes_per_task).mean,
        }));
    }
    ExperimentResult {
        table,
        series: json!(series),
    }
}

// --- G2: mesh/orchestration dynamics under churn × demand pattern ---

/// G2 — mesh dynamics under churn × demand on a generated grid.
pub fn g2() -> FnWorkload<GenConfig, ScenarioReport> {
    FnWorkload {
        name: "g2",
        title: "mesh dynamics under churn and demand patterns (generated grid)",
        spec: g2_spec,
        run: run_generated,
        metrics: scenario_metrics_with_stages,
        tabulate: g2_tabulate,
        trace: Some(trace_generated),
        observe: Some(observe_generated),
    }
}

/// The churn axis: the generated grid's street/arterial speeds (m/s).
fn grid_at_speed(arterial: f64) -> FamilyKind {
    FamilyKind::Grid(GridParams {
        arterial_speed: arterial,
        street_speed: arterial * 0.6,
        ..GridParams::default()
    })
}

fn g2_spec(quick: bool) -> SweepSpec<GenConfig> {
    let speeds: &[f64] = if quick {
        &[6.0, 13.9]
    } else {
        &[6.0, 10.0, 13.9]
    };
    let demands: &[DemandKind] = if quick {
        &[DemandKind::Steady, DemandKind::Bursty]
    } else {
        &[
            DemandKind::Steady,
            DemandKind::RushHour,
            DemandKind::Bursty,
            DemandKind::CorridorHotspot,
        ]
    };
    let base = GenConfig {
        family: grid_at_speed(13.9),
        profile: FleetProfile {
            vehicles: 12,
            parked: 4,
            arrival_window_s: 20.0,
        },
        demand: DemandKind::Steady,
        scenario: GenConfig::quick_or(quick, 40),
    };
    SweepSpec::new(base)
        .axis("speed_mps", speeds.to_vec(), |cfg, &v| {
            cfg.family = grid_at_speed(v);
        })
        .axis_labeled(
            "demand",
            demands.to_vec(),
            |d| d.label().to_owned(),
            |cfg, &d| cfg.demand = d,
        )
        .replicates(replicates(quick))
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(114)
        .seed_with(|cfg, seed| cfg.scenario.seed = seed)
}

fn g2_tabulate(manifest: &Manifest<GenConfig>, results: &[ScenarioReport]) -> ExperimentResult {
    let mut table = Table::new(
        "G2",
        "mesh dynamics under churn and demand patterns (generated grid)",
        &[
            "speed m/s",
            "demand",
            "tasks",
            "done %",
            "±95",
            "churn/min",
            "members",
            "p95 ms",
        ],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let done = Aggregate::of(rs, |r| r.completion_rate * 100.0);
        table.row(vec![
            plans[0].labels[0].clone(),
            plans[0].labels[1].clone(),
            fmt_f(Aggregate::of(rs, |r| r.tasks_submitted as f64).mean),
            fmt_f(done.mean),
            fmt_ci(&done),
            fmt_f(Aggregate::of(rs, |r| (r.joins + r.leaves) as f64 / (r.duration_s / 60.0)).mean),
            fmt_f(Aggregate::of(rs, |r| r.mean_members).mean),
            fmt_f(Aggregate::of(rs, |r| r.latency_p95_ms).mean),
        ]);
    }
    ExperimentResult::table_only(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes() {
        assert_eq!(g1_spec(true).manifest().len(), 2 * 2);
        // Full mode sweeps every registered generated family (5 now that
        // roundabout and bridge exist) × 3 densities × 3 strategies.
        assert_eq!(
            g1_spec(false).manifest().len(),
            5 * 3 * 3 * super::super::scenario::FULL_REPLICATES
        );
        assert_eq!(g2_spec(true).manifest().len(), 2 * 2);
        assert_eq!(
            g2_spec(false).manifest().len(),
            3 * 4 * super::super::scenario::FULL_REPLICATES
        );
    }

    /// One quick G1 cell end-to-end: the generated grid world really
    /// runs, the mesh forms, and offloading completes tasks.
    #[test]
    fn g1_quick_run_completes_on_a_generated_world() {
        let manifest = g1_spec(true).manifest();
        let plan = &manifest.runs[0];
        assert_eq!(plan.labels[0], "grid");
        let report = run_generated(plan);
        assert!(report.tasks_submitted > 5, "{}", report.tasks_submitted);
        assert!(
            report.completion_rate > 0.3,
            "completion {}",
            report.completion_rate
        );
        assert!(report.mesh_bytes > 0);
    }

    /// G2's parked anchors show up in the fleet and the demand axis
    /// changes the offered load.
    #[test]
    fn g2_demand_patterns_change_the_offered_load() {
        let manifest = g2_spec(true).manifest();
        // Runs 0/1 share the slow grid; 0 is steady, 1 is bursty.
        let steady = run_generated(&manifest.runs[0]);
        let bursty = run_generated(&manifest.runs[1]);
        assert_eq!(steady.vehicles, 12 + 4, "parked anchors join the fleet");
        assert_ne!(
            steady.tasks_submitted, bursty.tasks_submitted,
            "demand patterns must change the query process"
        );
    }
}
