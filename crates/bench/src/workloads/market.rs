//! Market workloads: a synthetic allocation market with swappable
//! mechanisms, driving experiments T6 (mechanism comparison) and F12
//! (async-vs-sync ablation).
//!
//! The `&mut dyn Assigner` mechanism choice is expressed as the
//! [`MechanismKind`] enum axis: configs stay plain serializable data, and
//! each run *builds* its mechanism from the enum — which is what lets the
//! market experiments ride the same generic harness (threads, shards,
//! aggregates) as the scenario sweeps.
//!
//! A pool of heterogeneous executors receives a Poisson stream of tasks;
//! the mechanism under test picks executor(s) per task; completions follow
//! the executors' (drained) backlogs plus the mechanism's decision
//! latency. Everything is deterministic per seed, so mechanism rows are
//! directly comparable.

use airdnd_baselines::{
    Assigner, CandidateInfo, CodedAssigner, DoubleAuctionAssigner, GreedyComputeAssigner,
    RandomAssigner, ScoreAssigner, SmartContractAssigner, SyncRoundAssigner,
};
use airdnd_harness::{
    fmt_ci, fmt_f, Aggregate, ExperimentResult, FnWorkload, Manifest, RunPlan, SeedMode, SweepSpec,
    Table,
};
use airdnd_radio::NodeAddr;
use airdnd_scenario::{EventKind, RunTelemetry, Scope, TelemetryOptions};
use airdnd_sim::{SimDuration, SimRng, SimTime};
use airdnd_task::{Program, ResourceRequirements, TaskId, TaskSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An allocation mechanism, as sweepable configuration data. Each run
/// builds the actual [`Assigner`] from this enum.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MechanismKind {
    /// AirDnD's asynchronous multi-criteria scoring.
    Score,
    /// Highest advertised compute rate wins.
    GreedyCompute,
    /// Uniform random feasible candidate (seeded).
    Random {
        /// Seed of the mechanism's own RNG.
        rng_seed: u64,
    },
    /// Sealed-bid double auction.
    DoubleAuction,
    /// On-chain allocation paying a block interval per decision.
    SmartContract,
    /// Coded computation over `shards` executors, `min_results` needed.
    Coded {
        /// Executors each task is split across.
        shards: usize,
        /// Earliest finishes required to reconstruct the result.
        min_results: usize,
    },
    /// Synchronous allocation rounds every `period_ms` (the F12 baseline).
    SyncRounds {
        /// Round period, milliseconds.
        period_ms: u64,
    },
}

impl MechanismKind {
    /// Builds the mechanism this configuration describes.
    pub fn build(&self) -> Box<dyn Assigner> {
        match *self {
            MechanismKind::Score => Box::new(ScoreAssigner),
            MechanismKind::GreedyCompute => Box::new(GreedyComputeAssigner),
            MechanismKind::Random { rng_seed } => {
                Box::new(RandomAssigner::new(SimRng::seed_from(rng_seed)))
            }
            MechanismKind::DoubleAuction => Box::new(DoubleAuctionAssigner::default()),
            MechanismKind::SmartContract => Box::new(SmartContractAssigner::default()),
            MechanismKind::Coded {
                shards,
                min_results,
            } => Box::new(CodedAssigner::new(shards, min_results)),
            MechanismKind::SyncRounds { period_ms } => {
                Box::new(SyncRoundAssigner::new(SimDuration::from_millis(period_ms)))
            }
        }
    }

    /// The mechanism's table label (its [`Assigner::name`]).
    pub fn label(&self) -> String {
        self.build().name().to_owned()
    }
}

/// One market run: mechanism, seed and workload size.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MarketConfig {
    /// The mechanism under test.
    pub mechanism: MechanismKind,
    /// Seed of the market's task stream and executor pool.
    pub seed: u64,
    /// Executor-pool size.
    pub candidates: usize,
    /// Tasks offered.
    pub tasks: usize,
}

/// Aggregate results of one market simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MarketStats {
    /// Fraction of tasks that received an executor.
    pub allocated_fraction: f64,
    /// Mean completion latency (decision + queueing + execution), seconds.
    pub mean_completion_s: f64,
    /// 95th-percentile completion latency, seconds.
    pub p95_completion_s: f64,
    /// Control-plane messages per task.
    pub control_msgs_per_task: f64,
    /// Jain fairness of gas assigned across executors.
    pub fairness: f64,
}

/// Runs `n_tasks` through `mechanism` over a pool of `n_candidates`.
pub fn market_sim(
    mechanism: &mut dyn Assigner,
    seed: u64,
    n_candidates: usize,
    n_tasks: usize,
) -> MarketStats {
    market_sim_observed(
        mechanism,
        seed,
        n_candidates,
        n_tasks,
        &mut RunTelemetry::disabled(),
    )
}

/// [`market_sim`] recording the task stream into `telemetry`: demand
/// fires, submissions, per-executor offloads, completions and the
/// unallocated tasks as expiries (ego 0 is the market's single origin).
/// Telemetry never feeds back, so the returned stats are byte-identical
/// to [`market_sim`]'s.
pub fn market_sim_observed(
    mechanism: &mut dyn Assigner,
    seed: u64,
    n_candidates: usize,
    n_tasks: usize,
    telemetry: &mut RunTelemetry,
) -> MarketStats {
    let mut rng = SimRng::seed_from(seed);
    // Heterogeneous executor pool.
    let mut gas_rates = BTreeMap::new();
    let mut backlogs: BTreeMap<u64, f64> = BTreeMap::new();
    let mut assigned_gas: BTreeMap<u64, f64> = BTreeMap::new();
    for i in 0..n_candidates {
        let id = i as u64 + 1;
        gas_rates.insert(id, 500_000.0 + rng.next_f64() * 3_500_000.0);
        backlogs.insert(id, 0.0);
        assigned_gas.insert(id, 0.0);
    }
    let links: BTreeMap<u64, f64> = gas_rates
        .keys()
        .map(|&id| (id, 0.5 + rng.next_f64() * 0.5))
        .collect();
    let trusts: BTreeMap<u64, f64> = gas_rates
        .keys()
        .map(|&id| (id, 0.5 + rng.next_f64() * 0.45))
        .collect();

    let mut now_s = 0.0f64;
    let mut completions = Vec::new();
    let mut allocated = 0usize;
    let mut control_msgs = 0u64;
    for t in 0..n_tasks {
        let dt = rng.exp(0.2); // mean 200 ms between arrivals
        now_s += dt;
        let now = SimTime::from_secs_f64(now_s);
        telemetry.event(
            now,
            0,
            EventKind::DemandFire {
                ego: 0,
                task: t as u64,
            },
        );
        telemetry.event(
            now,
            0,
            EventKind::TaskSubmit {
                task: t as u64,
                ego: 0,
            },
        );
        telemetry.metrics.inc("tasks_submitted", Scope::Ego(0));
        // Backlogs drain while time passes.
        for (id, backlog) in backlogs.iter_mut() {
            *backlog = (*backlog - gas_rates[id] * dt).max(0.0);
        }
        let gas = 500_000.0 + rng.next_f64() * 1_500_000.0;
        let task = TaskSpec::new(
            TaskId::new(t as u64),
            "market",
            Program::new(vec![airdnd_task::Instr::Halt], 0),
        )
        .with_requirements(ResourceRequirements {
            gas: gas as u64,
            deadline: SimDuration::from_secs(3),
            ..Default::default()
        });
        let candidates: Vec<CandidateInfo> = gas_rates
            .iter()
            .map(|(&id, &rate)| CandidateInfo {
                addr: NodeAddr::new(id),
                gas_rate: rate as u64,
                gas_backlog: backlogs[&id] as u64,
                link_quality: links[&id],
                has_data: true,
                trust: trusts[&id],
            })
            .collect();
        let Some(assignment) = mechanism.assign(&task, &candidates, now) else {
            telemetry.event(
                now,
                0,
                EventKind::TaskExpire {
                    task: t as u64,
                    ego: 0,
                },
            );
            telemetry.metrics.inc("tasks_failed", Scope::Ego(0));
            continue;
        };
        allocated += 1;
        control_msgs += assignment.control_messages;
        let decision_s = assignment.decision_latency.as_secs_f64();
        // Each chosen executor queues the full task; completion is the
        // min_results-th earliest finish.
        let mut finishes: Vec<f64> = assignment
            .executors
            .iter()
            .map(|addr| {
                let id = addr.raw();
                let rate = gas_rates[&id];
                let backlog = backlogs.get_mut(&id).expect("known executor");
                *backlog += gas;
                *assigned_gas.get_mut(&id).expect("known executor") += gas;
                decision_s + *backlog / rate
            })
            .collect();
        for addr in &assignment.executors {
            telemetry.event(
                now,
                0,
                EventKind::TaskOffload {
                    task: t as u64,
                    executor: addr.raw() as u32,
                },
            );
        }
        finishes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let k = assignment.min_results.clamp(1, finishes.len());
        let completion_s = finishes[k - 1];
        telemetry.event(
            SimTime::from_secs_f64(now_s + completion_s),
            0,
            EventKind::TaskComplete {
                task: t as u64,
                ego: 0,
                latency_us: (completion_s * 1.0e6) as u64,
            },
        );
        telemetry.metrics.inc("tasks_completed", Scope::Ego(0));
        telemetry.metrics.observe_us(
            "task_latency_us",
            Scope::Ego(0),
            (completion_s * 1.0e6) as u64,
        );
        completions.push(completion_s);
    }
    let fairness_input: Vec<f64> = assigned_gas.values().copied().collect();
    MarketStats {
        allocated_fraction: allocated as f64 / n_tasks as f64,
        mean_completion_s: if completions.is_empty() {
            0.0
        } else {
            completions.iter().sum::<f64>() / completions.len() as f64
        },
        p95_completion_s: airdnd_sim::percentile(&completions, 0.95).unwrap_or(0.0),
        control_msgs_per_task: control_msgs as f64 / n_tasks.max(1) as f64,
        fairness: airdnd_sim::stats::jain_fairness(&fairness_input),
    }
}

/// A market experiment: a grid of [`market_sim`] calls plus a table.
pub type MarketWorkload = FnWorkload<MarketConfig, MarketStats>;

fn run(plan: &RunPlan<MarketConfig>) -> MarketStats {
    let cfg = &plan.config;
    let mut mechanism = cfg.mechanism.build();
    market_sim(mechanism.as_mut(), cfg.seed, cfg.candidates, cfg.tasks)
}

fn observe_market(plan: &RunPlan<MarketConfig>, opts: TelemetryOptions) -> RunTelemetry {
    let cfg = &plan.config;
    let mut mechanism = cfg.mechanism.build();
    let mut telemetry = RunTelemetry::with(opts);
    market_sim_observed(
        mechanism.as_mut(),
        cfg.seed,
        cfg.candidates,
        cfg.tasks,
        &mut telemetry,
    );
    telemetry
}

/// The market metrics aggregated per grid cell in sweep reports.
pub fn market_metrics(stats: &MarketStats) -> Vec<(&'static str, f64)> {
    vec![
        ("allocated_fraction", stats.allocated_fraction),
        ("mean_completion_s", stats.mean_completion_s),
        ("p95_completion_s", stats.p95_completion_s),
        ("control_msgs_per_task", stats.control_msgs_per_task),
        ("fairness", stats.fairness),
    ]
}

fn market_base(quick: bool, seed: u64) -> MarketConfig {
    MarketConfig {
        mechanism: MechanismKind::Score,
        seed,
        candidates: 20,
        tasks: if quick { 300 } else { 2000 },
    }
}

use super::full_mode_replicates as replicates;

// --- T6: allocation-mechanism comparison on an identical market ---

/// T6 — allocator comparison over the mechanism axis.
pub fn t6() -> MarketWorkload {
    FnWorkload {
        name: "t6",
        title: "allocator comparison (identical workload)",
        spec: t6_spec,
        run,
        metrics: market_metrics,
        tabulate: t6_tabulate,
        trace: None,
        observe: Some(observe_market),
    }
}

fn t6_spec(quick: bool) -> SweepSpec<MarketConfig> {
    let mechanisms = vec![
        MechanismKind::Score,
        MechanismKind::GreedyCompute,
        MechanismKind::Random { rng_seed: 61 },
        MechanismKind::DoubleAuction,
        MechanismKind::SmartContract,
        MechanismKind::Coded {
            shards: 3,
            min_results: 2,
        },
    ];
    // Common random numbers: every mechanism sees the identical task
    // stream and executor pool, which is what makes rows comparable.
    SweepSpec::new(market_base(quick, 0))
        .axis_labeled(
            "mechanism",
            mechanisms,
            MechanismKind::label,
            |cfg, &kind| cfg.mechanism = kind,
        )
        .replicates(replicates(quick))
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(106)
        .seed_with(|cfg, seed| cfg.seed = seed)
}

fn t6_tabulate(manifest: &Manifest<MarketConfig>, results: &[MarketStats]) -> ExperimentResult {
    let mut table = Table::new(
        "T6",
        "allocator comparison (identical workload)",
        &[
            "mechanism",
            "alloc %",
            "mean s",
            "±95",
            "p95 s",
            "ctrl msgs/task",
            "fairness",
        ],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let mean_s = Aggregate::of(rs, |r| r.mean_completion_s);
        table.row(vec![
            plans[0].labels[0].clone(),
            fmt_f(Aggregate::of(rs, |r| r.allocated_fraction * 100.0).mean),
            fmt_f(mean_s.mean),
            fmt_ci(&mean_s),
            fmt_f(Aggregate::of(rs, |r| r.p95_completion_s).mean),
            fmt_f(Aggregate::of(rs, |r| r.control_msgs_per_task).mean),
            fmt_f(Aggregate::of(rs, |r| r.fairness).mean),
        ]);
    }
    ExperimentResult::table_only(table)
}

// --- F12: the asynchrony ablation — async vs synchronous rounds ---

/// F12 — asynchronous orchestration vs synchronous rounds.
pub fn f12() -> MarketWorkload {
    FnWorkload {
        name: "f12",
        title: "asynchronous orchestration vs synchronous rounds",
        spec: f12_spec,
        run,
        metrics: market_metrics,
        tabulate: f12_tabulate,
        trace: None,
        observe: Some(observe_market),
    }
}

fn f12_spec(quick: bool) -> SweepSpec<MarketConfig> {
    let periods: &[u64] = if quick {
        &[250, 1000]
    } else {
        &[100, 250, 500, 1000]
    };
    let mut modes = vec![MechanismKind::Score];
    modes.extend(
        periods
            .iter()
            .map(|&period_ms| MechanismKind::SyncRounds { period_ms }),
    );
    SweepSpec::new(market_base(quick, 0))
        .axis_labeled(
            "mode",
            modes,
            |kind| match kind {
                MechanismKind::Score => "async (airdnd)".to_owned(),
                MechanismKind::SyncRounds { period_ms } => format!("sync {period_ms} ms"),
                other => other.label(),
            },
            |cfg, &kind| cfg.mechanism = kind,
        )
        .replicates(replicates(quick))
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(112)
        .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f12_tabulate(manifest: &Manifest<MarketConfig>, results: &[MarketStats]) -> ExperimentResult {
    let mut table = Table::new(
        "F12",
        "asynchronous orchestration vs synchronous rounds",
        &["mode", "alloc %", "mean s", "±95", "p95 s"],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let mean_s = Aggregate::of(rs, |r| r.mean_completion_s);
        table.row(vec![
            plans[0].labels[0].clone(),
            fmt_f(Aggregate::of(rs, |r| r.allocated_fraction * 100.0).mean),
            fmt_f(mean_s.mean),
            fmt_ci(&mean_s),
            fmt_f(Aggregate::of(rs, |r| r.p95_completion_s).mean),
        ]);
    }
    ExperimentResult::table_only(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_baselines::{GreedyComputeAssigner, ScoreAssigner, SmartContractAssigner};

    #[test]
    fn market_is_deterministic() {
        let a = market_sim(&mut ScoreAssigner, 5, 10, 200);
        let b = market_sim(&mut ScoreAssigner, 5, 10, 200);
        assert_eq!(a.mean_completion_s, b.mean_completion_s);
        assert_eq!(a.allocated_fraction, b.allocated_fraction);
    }

    #[test]
    fn smart_contract_pays_its_block_interval() {
        let fast = market_sim(&mut GreedyComputeAssigner, 6, 10, 300);
        let chained = market_sim(&mut SmartContractAssigner::default(), 6, 10, 300);
        assert!(
            chained.mean_completion_s > fast.mean_completion_s + 1.5,
            "block interval must show up: {} vs {}",
            chained.mean_completion_s,
            fast.mean_completion_s
        );
    }

    #[test]
    fn greedy_beats_nothing_and_allocates_everything() {
        let stats = market_sim(&mut GreedyComputeAssigner, 7, 10, 300);
        assert_eq!(stats.allocated_fraction, 1.0);
        assert!(stats.mean_completion_s > 0.0);
        assert!(stats.fairness > 0.0 && stats.fairness <= 1.0);
    }

    /// The enum axis builds the same mechanisms the old hand-rolled T6
    /// loop constructed, and every grid cell shares one seed (common
    /// random numbers) so rows stay comparable.
    #[test]
    fn mechanism_axis_is_faithful() {
        let manifest = t6_spec(true).manifest();
        assert_eq!(manifest.len(), 6);
        let labels: Vec<&str> = manifest.runs.iter().map(|r| r.labels[0].as_str()).collect();
        assert!(labels.contains(&"airdnd"), "{labels:?}");
        let seeds: Vec<u64> = manifest.runs.iter().map(|r| r.config.seed).collect();
        assert!(
            seeds.windows(2).all(|w| w[0] == w[1]),
            "mechanism rows must share the market seed"
        );
    }

    /// Full-mode T6/F12 run seed replicates per mechanism cell (the
    /// ROADMAP "extend replicate CIs to the market axis" item); replicate
    /// *k* still shares one seed across cells (common random numbers).
    #[test]
    fn full_mode_market_grids_carry_replicates() {
        let t6 = t6_spec(false).manifest();
        assert_eq!(t6.len(), 6 * super::super::scenario::FULL_REPLICATES);
        assert_eq!(t6.replicates, super::super::scenario::FULL_REPLICATES);
        let f12 = f12_spec(false).manifest();
        assert_eq!(f12.len(), 5 * super::super::scenario::FULL_REPLICATES);
        // CRN across cells, per replicate.
        for cell in 1..t6.cell_count {
            for rep in 0..t6.replicates {
                assert_eq!(t6.cell_runs(cell)[rep].seed, t6.cell_runs(0)[rep].seed);
            }
        }
        assert_ne!(t6.cell_runs(0)[0].seed, t6.cell_runs(0)[1].seed);
        // Quick mode stays single-shot so CI finishes in seconds.
        assert_eq!(t6_spec(true).manifest().replicates, 1);
        assert_eq!(f12_spec(true).manifest().replicates, 1);
    }

    /// The T6/F12 tables carry a `±95` confidence column like F1/F2/F4/F7:
    /// present in the header, populated (not `-`) in full mode where every
    /// cell has ≥ 2 replicates, and deterministic across renders.
    #[test]
    fn market_tables_render_replicate_cis() {
        let run_all = |manifest: &Manifest<MarketConfig>| -> Vec<MarketStats> {
            manifest.runs.iter().map(run).collect()
        };
        let t6_manifest = t6_spec(false).manifest();
        let t6_results = run_all(&t6_manifest);
        let rendered = t6_tabulate(&t6_manifest, &t6_results).table;
        assert!(rendered.columns.contains(&"±95".to_owned()));
        assert_eq!(rendered.rows.len(), t6_manifest.cell_count);
        let ci_col = rendered.columns.iter().position(|c| c == "±95").unwrap();
        for row in &rendered.rows {
            assert_ne!(row[ci_col], "-", "full-mode cells must show an interval");
        }
        // Deterministic: re-running the whole pipeline reproduces the bytes.
        let again = t6_tabulate(&t6_manifest, &run_all(&t6_manifest)).table;
        assert_eq!(rendered.render(), again.render());

        let f12_manifest = f12_spec(false).manifest();
        let f12_table = f12_tabulate(&f12_manifest, &run_all(&f12_manifest)).table;
        assert!(f12_table.columns.contains(&"±95".to_owned()));
        assert_eq!(f12_table.rows.len(), f12_manifest.cell_count);
    }
}
