//! T11 — NFV chain survival under node departures.
//!
//! A perception service chain is deployed over a pool of vehicle nodes;
//! every round, each hosting node departs with the swept probability and
//! the manager heals orphaned VNFs onto survivors (one fresh node arrives
//! per round to keep density stable). Deterministic per seed.

use airdnd_harness::{
    fmt_f, ExperimentResult, FnWorkload, Manifest, RunPlan, SeedMode, SweepSpec, Table,
};
use airdnd_nfv::{
    NfManager, PlacementStrategy, ResourceCapacity, ServiceChain, VnfDescriptor, VnfKind,
};
use airdnd_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// One churn-study point.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct NfvChurnConfig {
    /// Per-round departure probability of each hosting node.
    pub departure_prob: f64,
    /// Simulated rounds (one second each).
    pub rounds: usize,
    /// Initial node-pool size.
    pub nodes: usize,
    /// Seed of the departure draws.
    pub seed: u64,
}

/// One churn-study measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NfvChurnReport {
    /// Successful VNF migrations.
    pub migrations_ok: u64,
    /// VNF instances lost (no capacity to heal onto).
    pub vnfs_lost: u64,
    /// Fraction of the run the full chain was up.
    pub availability: f64,
}

/// An NFV churn workload.
pub type NfvWorkload = FnWorkload<NfvChurnConfig, NfvChurnReport>;

/// T11 — VNF migration & chain availability under churn.
pub fn t11() -> NfvWorkload {
    FnWorkload {
        name: "t11",
        title: "VNF migration & chain availability under churn",
        spec: t11_spec,
        run,
        metrics: t11_metrics,
        tabulate: t11_tabulate,
        trace: None,
        observe: None,
    }
}

fn t11_spec(quick: bool) -> SweepSpec<NfvChurnConfig> {
    let sweep: &[f64] = if quick {
        &[0.05, 0.2]
    } else {
        &[0.02, 0.05, 0.1, 0.2, 0.3]
    };
    SweepSpec::new(NfvChurnConfig {
        departure_prob: 0.0,
        rounds: if quick { 50 } else { 300 },
        nodes: 12,
        seed: 0,
    })
    .axis("departure_prob", sweep.to_vec(), |cfg, &p| {
        cfg.departure_prob = p
    })
    .seed_mode(SeedMode::PerReplicate)
    .base_seed(111)
    .seed_with(|cfg, seed| cfg.seed = seed)
}

fn run(plan: &RunPlan<NfvChurnConfig>) -> NfvChurnReport {
    let cfg = &plan.config;
    let mut rng = SimRng::seed_from(cfg.seed);
    let mut manager = NfManager::new(PlacementStrategy::BestFit);
    let mut next_node = 0u64;
    for _ in 0..cfg.nodes {
        manager.register_node(next_node, ResourceCapacity::new(1_000, 1 << 30, 2_000_000));
        next_node += 1;
    }
    let chain = ServiceChain::new(
        "perception",
        vec![
            VnfDescriptor::of_kind("fw", VnfKind::Firewall),
            VnfDescriptor::of_kind("agg", VnfKind::Aggregator),
            VnfDescriptor::of_kind("fuse", VnfKind::PerceptionFuser),
        ],
    );
    let chain_id = manager
        .deploy_chain(&chain, SimTime::ZERO)
        .expect("initial placement fits");
    let mut lost_total = 0u64;
    for round in 1..=cfg.rounds {
        let now = SimTime::from_secs(round as u64);
        // Random departures + one arrival to keep density stable.
        let hosts: Vec<u64> = manager.instances().map(|i| i.host).collect();
        for host in hosts {
            if rng.chance(cfg.departure_prob) {
                let orphans = manager.node_departed(host);
                let (_, lost) = manager.heal(&orphans, now);
                lost_total += lost.len() as u64;
            }
        }
        manager.register_node(next_node, ResourceCapacity::new(1_000, 1 << 30, 2_000_000));
        next_node += 1;
        manager.refresh_chain_status(now);
    }
    let (migrations_ok, _failed) = manager.migration_counts();
    let availability = manager.chain_status(chain_id).map_or(0.0, |s| {
        s.availability(SimTime::from_secs(cfg.rounds as u64))
    });
    NfvChurnReport {
        migrations_ok,
        vnfs_lost: lost_total,
        availability,
    }
}

fn t11_metrics(report: &NfvChurnReport) -> Vec<(&'static str, f64)> {
    vec![
        ("migrations_ok", report.migrations_ok as f64),
        ("vnfs_lost", report.vnfs_lost as f64),
        ("availability", report.availability),
    ]
}

fn t11_tabulate(
    manifest: &Manifest<NfvChurnConfig>,
    results: &[NfvChurnReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "T11",
        "VNF migration & chain availability under churn",
        &[
            "departure %/round",
            "migrations ok",
            "vnfs lost",
            "availability %",
        ],
    );
    for (plan, r) in manifest.runs.iter().zip(results) {
        table.row(vec![
            fmt_f(plan.config.departure_prob * 100.0),
            r.migrations_ok.to_string(),
            r.vnfs_lost.to_string(),
            fmt_f(r.availability * 100.0),
        ]);
    }
    ExperimentResult::table_only(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_run_is_deterministic() {
        let manifest = t11_spec(true).manifest();
        let a = run(&manifest.runs[1]);
        let b = run(&manifest.runs[1]);
        assert_eq!(a.migrations_ok, b.migrations_ok);
        assert_eq!(a.vnfs_lost, b.vnfs_lost);
        assert_eq!(a.availability, b.availability);
    }

    #[test]
    fn zero_churn_never_loses_a_vnf() {
        let plan = RunPlan {
            run_index: 0,
            cell: 0,
            replicate: 0,
            seed: 1,
            labels: vec!["0".into()],
            config: NfvChurnConfig {
                departure_prob: 0.0,
                rounds: 20,
                nodes: 12,
                seed: 1,
            },
        };
        let r = run(&plan);
        assert_eq!(r.vnfs_lost, 0);
        assert_eq!(r.migrations_ok, 0);
        assert!(r.availability > 0.99);
    }
}
