//! F10 — orchestrator scalability: `score_candidates` cost vs mesh size.
//!
//! The one workload whose report is *not* a pure function of its config:
//! it measures wall-clock microseconds per selection decision, so rows
//! vary run to run and the byte-identity guarantees the other workloads
//! enjoy (threads=1 ≡ threads=N, sharded ≡ unsharded) deliberately do not
//! apply to its table. It still rides the generic harness for gridding,
//! registry and reporting; `candidates_ranked` stays deterministic.

use airdnd_core::{score_candidates, OrchestratorConfig};
use airdnd_data::{DataCatalog, DataQuery, DataType, QualityDescriptor};
use airdnd_geo::Vec2;
use airdnd_harness::{fmt_f, ExperimentResult, FnWorkload, Manifest, RunPlan, SweepSpec, Table};
use airdnd_mesh::{MemberDescriptor, MeshDescriptor, NodeAdvert};
use airdnd_radio::NodeAddr;
use airdnd_sim::{SimDuration, SimRng, SimTime};
use airdnd_task::{Program, ResourceRequirements, TaskId, TaskSpec};
use airdnd_trust::ReputationTable;
use serde::{Deserialize, Serialize};

/// One micro-benchmark point: mesh size and timing-loop length.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SelectionBenchConfig {
    /// Synthetic mesh size (candidates to rank).
    pub members: usize,
    /// Timed `score_candidates` iterations.
    pub iterations: usize,
    /// Seed of the synthetic mesh.
    pub mesh_seed: u64,
}

/// One micro-benchmark measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelectionBenchReport {
    /// Mesh size the point ranked.
    pub members: usize,
    /// Wall-clock microseconds per selection decision (environment-
    /// dependent; excluded from determinism guarantees).
    pub micros_per_decision: f64,
    /// Mean candidates ranked per decision (deterministic).
    pub candidates_ranked: f64,
}

/// A selection micro-benchmark workload.
pub type SelectionWorkload = FnWorkload<SelectionBenchConfig, SelectionBenchReport>;

/// F10 — node-selection cost vs mesh size.
pub fn f10() -> SelectionWorkload {
    FnWorkload {
        name: "f10",
        title: "node-selection cost vs mesh size (wall clock)",
        spec: f10_spec,
        run,
        metrics: f10_metrics,
        tabulate: f10_tabulate,
        trace: None,
        observe: None,
    }
}

fn f10_spec(quick: bool) -> SweepSpec<SelectionBenchConfig> {
    let sweep: &[usize] = if quick {
        &[10, 100]
    } else {
        &[10, 50, 100, 250, 500]
    };
    SweepSpec::new(SelectionBenchConfig {
        members: 0,
        iterations: if quick { 200 } else { 1000 },
        mesh_seed: 77,
    })
    .axis("members", sweep.to_vec(), |cfg, &n| cfg.members = n)
    .base_seed(110)
}

fn synthetic_mesh(n: usize, seed: u64, now: SimTime) -> MeshDescriptor {
    let mut rng = SimRng::seed_from(seed);
    let members = (0..n)
        .map(|i| {
            let mut catalog = DataCatalog::new(4);
            catalog.insert(
                DataType::OccupancyGrid,
                800,
                QualityDescriptor::basic(now, 0.9, 1.0),
            );
            MemberDescriptor {
                addr: NodeAddr::new(i as u64 + 10),
                pos: Vec2::new(
                    rng.next_f64() * 400.0 - 200.0,
                    rng.next_f64() * 400.0 - 200.0,
                ),
                velocity: Vec2::new(rng.next_f64() * 20.0 - 10.0, 0.0),
                link_quality: 0.5 + rng.next_f64() * 0.5,
                advert: NodeAdvert {
                    gas_rate: 500_000 + (rng.next_f64() * 3_500_000.0) as u64,
                    gas_backlog: (rng.next_f64() * 2_000_000.0) as u64,
                    mem_free_bytes: 1 << 30,
                    accepting: true,
                    catalog: catalog.summarize(),
                },
                info_age: SimDuration::from_millis(100),
            }
        })
        .collect();
    MeshDescriptor {
        generated_at: now,
        local: NodeAddr::new(1),
        local_pos: Vec2::ZERO,
        members,
        churn_per_sec: 0.5,
    }
}

fn run(plan: &RunPlan<SelectionBenchConfig>) -> SelectionBenchReport {
    let cfg = &plan.config;
    let now = SimTime::from_secs(1);
    let task = TaskSpec::new(
        TaskId::new(1),
        "t",
        Program::new(vec![airdnd_task::Instr::Halt], 0),
    )
    .with_input(DataQuery::of_type(DataType::OccupancyGrid))
    .with_requirements(ResourceRequirements {
        gas: 1_000_000,
        ..Default::default()
    });
    let trust = ReputationTable::default();
    let orch = OrchestratorConfig::default();
    let mesh = synthetic_mesh(cfg.members, cfg.mesh_seed, now);
    let start = std::time::Instant::now();
    let mut ranked_total = 0usize;
    for _ in 0..cfg.iterations {
        let scores = score_candidates(&task, &mesh, Vec2::ZERO, &trust, &orch, now);
        ranked_total += scores.len();
    }
    let micros = start.elapsed().as_micros() as f64 / cfg.iterations as f64;
    SelectionBenchReport {
        members: cfg.members,
        micros_per_decision: micros,
        candidates_ranked: ranked_total as f64 / cfg.iterations as f64,
    }
}

fn f10_metrics(report: &SelectionBenchReport) -> Vec<(&'static str, f64)> {
    vec![
        ("micros_per_decision", report.micros_per_decision),
        ("candidates_ranked", report.candidates_ranked),
    ]
}

fn f10_tabulate(
    _manifest: &Manifest<SelectionBenchConfig>,
    results: &[SelectionBenchReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F10",
        "node-selection cost vs mesh size (wall clock)",
        &["members", "µs/decision", "candidates ranked"],
    );
    for r in results {
        table.row(vec![
            r.members.to_string(),
            fmt_f(r.micros_per_decision),
            fmt_f(r.candidates_ranked),
        ]);
    }
    ExperimentResult::table_only(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_harness::{AnyWorkload, Progress};

    /// The ranking itself (everything but the wall clock) is
    /// deterministic and covers the whole synthetic mesh.
    #[test]
    fn ranking_is_deterministic_and_complete() {
        let manifest = f10_spec(true).manifest();
        let a = run(&manifest.runs[0]);
        let b = run(&manifest.runs[0]);
        assert_eq!(a.candidates_ranked, b.candidates_ranked);
        assert_eq!(a.members, manifest.runs[0].config.members);
        assert!(a.candidates_ranked > 0.0);
    }

    #[test]
    fn executes_through_the_erased_registry_entry() {
        let output = f10().execute(true, 1, &mut |_: Progress| {});
        assert_eq!(output.name, "f10");
        assert_eq!(output.result.table.rows.len(), 2);
    }
}
