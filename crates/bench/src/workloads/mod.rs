//! The unified experiment registry: every figure and table in
//! `EXPERIMENTS.md` — grid-shaped scenario sweeps, the latency CDF, the
//! selection ablation, the market-mechanism comparisons, the NFV churn
//! study and the selection micro-benchmark — declared as one
//! [`airdnd_harness::Workload`] each and registered here, in
//! EXPERIMENTS.md order.
//!
//! One registry drives everything: `run_experiments` farms the entries
//! across the harness pool, the `sweep` binary exposes per-run grids with
//! `--threads`/`--shard i/n`/`--merge`, and the aggregate JSON/CSV
//! artifacts all render through the same workload-polymorphic path. No
//! experiment hand-rolls its own loop anymore.
//!
//! Determinism: every workload except F10 is a pure function of its
//! config, so tables and artifacts are byte-identical across thread
//! counts and shard splits. F10 measures wall-clock selection cost and is
//! the one deliberate exception (documented on [`selection`]).

pub mod city;
pub mod lifecycle;
pub mod market;
pub mod nfv;
pub mod scenario;
pub mod selection;
pub mod worldgen;

use airdnd_harness::{AnyWorkload, ExperimentResult, Progress};

/// Seed replicates per cell for the CI-replicated figures (F1/F2/F4/F7
/// and the T6/F12 market rows): full mode runs
/// [`scenario::FULL_REPLICATES`]; quick stays single-shot so CI finishes
/// in seconds.
pub(crate) fn full_mode_replicates(quick: bool) -> usize {
    if quick {
        1
    } else {
        scenario::FULL_REPLICATES
    }
}

/// Every experiment as a type-erased workload, in EXPERIMENTS.md order.
pub fn registry() -> Vec<Box<dyn AnyWorkload>> {
    vec![
        Box::new(scenario::f1()),
        Box::new(scenario::f2()),
        Box::new(scenario::f3()),
        Box::new(scenario::f4()),
        Box::new(scenario::t5()),
        Box::new(market::t6()),
        Box::new(scenario::f7()),
        Box::new(scenario::f8()),
        Box::new(scenario::t9()),
        Box::new(selection::f10()),
        Box::new(nfv::t11()),
        Box::new(market::f12()),
        Box::new(worldgen::g1()),
        Box::new(worldgen::g2()),
        Box::new(lifecycle::g3()),
        Box::new(lifecycle::g4()),
        Box::new(city::g5()),
    ]
}

/// Looks up one workload by registry id.
pub fn find(name: &str) -> Option<Box<dyn AnyWorkload>> {
    registry().into_iter().find(|w| w.name() == name)
}

/// The registry ids, in order.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|w| w.name()).collect()
}

/// Executes one workload by name with silent progress; the table/series
/// result. Panics on unknown names (callers validate against [`names`]).
pub fn run_named(name: &str, quick: bool, threads: usize) -> ExperimentResult {
    let workload = find(name).unwrap_or_else(|| panic!("workload `{name}` is registered"));
    workload
        .execute(quick, threads, &mut |_: Progress| {})
        .result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_canonical_and_unique() {
        let names = names();
        assert_eq!(
            names,
            [
                "f1", "f2", "f3", "f4", "t5", "t6", "f7", "f8", "t9", "f10", "t11", "f12", "g1",
                "g2", "g3", "g4", "g5"
            ]
        );
        for name in &names {
            assert!(find(name).is_some());
        }
        assert!(find("nope").is_none());
    }

    /// Every workload's quick grid expands to a non-empty manifest — an
    /// empty grid would make `run_experiments` silently print nothing.
    #[test]
    fn every_workload_expands_runs() {
        for workload in registry() {
            assert!(
                workload.total_runs(true) > 0,
                "{} quick grid is empty",
                workload.name()
            );
            assert!(
                workload.total_runs(false) >= workload.total_runs(true),
                "{} full grid smaller than quick",
                workload.name()
            );
        }
    }
}
