//! Scenario-backed workloads: every figure that is a grid of
//! [`run_scenario`] calls — F1, F2, F3, F4, T5, F7, F8 and T9.
//!
//! All eight share `Config = ScenarioConfig`, `Report = ScenarioReport`
//! and the same metric extractor; they differ only in grid and table. The
//! full-mode specs of F1/F2/F4/F7 run [`FULL_REPLICATES`] seed replicates
//! per cell and their tables carry a `±95` column (the half-width of the
//! 95 % confidence interval on the highlighted mean); quick mode stays
//! single-shot so CI runs in seconds.

use airdnd_core::SelectionWeights;
use airdnd_harness::{
    fmt_ci, fmt_f, fmt_opt, Aggregate, ExperimentResult, FnWorkload, Manifest, SeedMode, SweepSpec,
    Table,
};
use airdnd_scenario::{run_scenario, ScenarioConfig, ScenarioReport, Strategy};
use airdnd_sim::SimDuration;
use serde_json::json;

/// A scenario experiment: a grid of `run_scenario` calls plus a table.
pub type ScenarioWorkload = FnWorkload<ScenarioConfig, ScenarioReport>;

/// Seed replicates per cell in full mode for the F1/F2/F4/F7 figures
/// (quick mode stays at 1 so CI runs in seconds).
pub const FULL_REPLICATES: usize = 3;

fn base(quick: bool) -> ScenarioConfig {
    ScenarioConfig {
        duration: if quick {
            SimDuration::from_secs(15)
        } else {
            SimDuration::from_secs(60)
        },
        ..Default::default()
    }
}

use super::full_mode_replicates as replicates;

/// The scenario metrics aggregated per grid cell in sweep reports.
pub fn scenario_metrics(r: &ScenarioReport) -> Vec<(&'static str, f64)> {
    vec![
        ("completion_rate", r.completion_rate),
        ("latency_mean_ms", r.latency_mean_ms),
        ("latency_p50_ms", r.latency_p50_ms),
        ("latency_p95_ms", r.latency_p95_ms),
        ("mesh_bytes", r.mesh_bytes as f64),
        ("cellular_bytes", r.cellular_bytes as f64),
        ("bytes_per_task", r.bytes_per_task),
        ("mean_coverage", r.mean_coverage),
        ("mean_members", r.mean_members),
        ("mean_executor_utilization", r.mean_executor_utilization),
        (
            "invalid_results_accepted",
            r.invalid_results_accepted as f64,
        ),
    ]
}

/// The ten critical-path latency-decomposition columns
/// (`telemetry::critical_path`): per-stage p50/p95 over completed
/// queries. Deterministic — the always-on tracer book feeds them, so the
/// values are identical with span recording on or off.
pub fn stage_metrics(r: &ScenarioReport) -> Vec<(&'static str, f64)> {
    vec![
        ("lat_discover_p50_ms", r.lat_discover_p50_ms),
        ("lat_discover_p95_ms", r.lat_discover_p95_ms),
        ("lat_select_p50_ms", r.lat_select_p50_ms),
        ("lat_select_p95_ms", r.lat_select_p95_ms),
        ("lat_radio_p50_ms", r.lat_radio_p50_ms),
        ("lat_radio_p95_ms", r.lat_radio_p95_ms),
        ("lat_exec_p50_ms", r.lat_exec_p50_ms),
        ("lat_exec_p95_ms", r.lat_exec_p95_ms),
        ("lat_return_p50_ms", r.lat_return_p50_ms),
        ("lat_return_p95_ms", r.lat_return_p95_ms),
    ]
}

/// [`scenario_metrics`] plus the latency-decomposition columns — the
/// extractor for the G-series workloads. The F/T figures keep the plain
/// list so their pinned goldens stay byte-identical.
pub fn scenario_metrics_with_stages(r: &ScenarioReport) -> Vec<(&'static str, f64)> {
    let mut metrics = scenario_metrics(r);
    metrics.extend(stage_metrics(r));
    metrics
}

fn run(plan: &airdnd_harness::RunPlan<ScenarioConfig>) -> ScenarioReport {
    run_scenario(plan.config)
}

/// The `sweep --trace N` hook shared by every scenario-backed workload:
/// one run with the engine's bounded trace enabled.
fn trace_scenario(plan: &airdnd_harness::RunPlan<ScenarioConfig>, capacity: usize) -> String {
    airdnd_scenario::run_scenario_traced(plan.config, capacity).1
}

/// The `sweep --trace-out` / `--bench-engine` hook shared by every
/// scenario-backed workload: one run returning the full telemetry.
fn observe_scenario(
    plan: &airdnd_harness::RunPlan<ScenarioConfig>,
    opts: airdnd_scenario::TelemetryOptions,
) -> airdnd_scenario::RunTelemetry {
    airdnd_scenario::run_scenario_observed(plan.config, opts).1
}

/// Mean over the present values of an optional per-run metric (`None`
/// when no replicate observed it).
fn mean_opt(results: &[ScenarioReport], f: impl Fn(&ScenarioReport) -> Option<f64>) -> Option<f64> {
    let present: Vec<f64> = results.iter().filter_map(f).collect();
    if present.is_empty() {
        None
    } else {
        Some(present.iter().sum::<f64>() / present.len() as f64)
    }
}

// --- F1: mesh formation & dissolution vs density (Model 1 dynamicity) ---

/// F1 — mesh formation & dissolution vs fleet density.
pub fn f1() -> ScenarioWorkload {
    FnWorkload {
        name: "f1",
        title: "mesh formation & dissolution vs fleet density",
        spec: f1_spec,
        run,
        metrics: scenario_metrics,
        tabulate: f1_tabulate,
        trace: Some(trace_scenario),
        observe: Some(observe_scenario),
    }
}

fn f1_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let sweep: &[usize] = if quick {
        &[5, 10, 20]
    } else {
        &[5, 10, 20, 40, 60]
    };
    SweepSpec::new(base(quick))
        .axis("vehicles", sweep.to_vec(), |cfg, &n| cfg.vehicles = n)
        .replicates(replicates(quick))
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(101)
        .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f1_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F1",
        "mesh formation & dissolution vs fleet density",
        &[
            "vehicles",
            "formation s",
            "mean members",
            "±95",
            "joins/min",
            "leaves/min",
        ],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let members = Aggregate::of(rs, |r| r.mean_members);
        let per_min = |n: u64, r: &ScenarioReport| n as f64 / (r.duration_s / 60.0);
        table.row(vec![
            plans[0].config.vehicles.to_string(),
            fmt_opt(mean_opt(rs, |r| r.mesh_formation_s)),
            fmt_f(members.mean),
            fmt_ci(&members),
            fmt_f(Aggregate::of(rs, |r| per_min(r.joins, r)).mean),
            fmt_f(Aggregate::of(rs, |r| per_min(r.leaves, r)).mean),
        ]);
    }
    ExperimentResult::table_only(table)
}

// --- F2: data transferred per perception view (the minimization claim) ---

/// F2 — bytes per completed perception view, by strategy and fleet size.
pub fn f2() -> ScenarioWorkload {
    FnWorkload {
        name: "f2",
        title: "bytes per completed perception view, by strategy and fleet size",
        spec: f2_spec,
        run,
        metrics: scenario_metrics,
        tabulate: f2_tabulate,
        trace: Some(trace_scenario),
        observe: Some(observe_scenario),
    }
}

fn f2_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let sweep: &[usize] = if quick { &[8] } else { &[4, 8, 12, 16] };
    SweepSpec::new(base(quick))
        .axis("vehicles", sweep.to_vec(), |cfg, &n| cfg.vehicles = n)
        .axis_labeled(
            "strategy",
            vec![
                Strategy::Airdnd,
                Strategy::Cloud { fiveg: true },
                Strategy::RawSharing,
            ],
            |s| s.label().to_owned(),
            |cfg, &s| cfg.strategy = s,
        )
        .replicates(replicates(quick))
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(102)
        .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f2_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F2",
        "bytes per completed perception view, by strategy and fleet size",
        &[
            "vehicles", "strategy", "kB/view", "±95", "total MB", "done %",
        ],
    );
    let mut series = Vec::new();
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let kb_per_view = Aggregate::of(rs, |r| r.bytes_per_task / 1_000.0);
        table.row(vec![
            plans[0].config.vehicles.to_string(),
            plans[0].labels[1].clone(),
            fmt_f(kb_per_view.mean),
            fmt_ci(&kb_per_view),
            fmt_f(Aggregate::of(rs, |r| (r.mesh_bytes + r.cellular_bytes) as f64 / 1e6).mean),
            fmt_f(Aggregate::of(rs, |r| r.completion_rate * 100.0).mean),
        ]);
        series.push(json!({
            "vehicles": plans[0].config.vehicles,
            "strategy": plans[0].labels[1],
            "bytes_per_task": kb_per_view.mean * 1_000.0,
            "bytes_per_task_ci95": kb_per_view.ci95 * 1_000.0,
        }));
    }
    ExperimentResult {
        table,
        series: json!(series),
    }
}

// --- F3: end-to-end latency CDF: mesh vs cellular cloud ---

/// F3 — task latency distribution: AirDnD mesh vs cellular cloud.
pub fn f3() -> ScenarioWorkload {
    FnWorkload {
        name: "f3",
        title: "task latency: AirDnD mesh vs cellular cloud",
        spec: f3_spec,
        run,
        metrics: scenario_metrics,
        tabulate: f3_tabulate,
        trace: Some(trace_scenario),
        observe: Some(observe_scenario),
    }
}

fn f3_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    SweepSpec::new(ScenarioConfig {
        vehicles: 12,
        ..base(quick)
    })
    .axis_labeled(
        "strategy",
        vec![
            Strategy::Airdnd,
            Strategy::Cloud { fiveg: true },
            Strategy::Cloud { fiveg: false },
        ],
        |s| s.label().to_owned(),
        |cfg, &s| cfg.strategy = s,
    )
    .seed_mode(SeedMode::PerReplicate)
    .base_seed(103)
    .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f3_tabulate(
    _manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F3",
        "task latency: AirDnD mesh vs cellular cloud",
        &[
            "strategy", "done %", "mean ms", "p50 ms", "p95 ms", "max ms",
        ],
    );
    let mut series = Vec::new();
    for r in results {
        table.row(vec![
            r.strategy.clone(),
            fmt_f(r.completion_rate * 100.0),
            fmt_f(r.latency_mean_ms),
            fmt_f(r.latency_p50_ms),
            fmt_f(r.latency_p95_ms),
            fmt_f(r.latency_max_ms),
        ]);
        let cdf = airdnd_sim::stats::cdf_points(&r.latencies_ms, 40);
        series.push(json!({ "strategy": r.strategy, "cdf": cdf }));
    }
    ExperimentResult {
        table,
        series: json!(series),
    }
}

// --- F4: looking-around-the-corner coverage vs cooperating vehicles ---

/// F4 — hidden-region coverage & detection time vs fleet size.
pub fn f4() -> ScenarioWorkload {
    FnWorkload {
        name: "f4",
        title: "hidden-region coverage & detection time vs fleet size",
        spec: f4_spec,
        run,
        metrics: scenario_metrics,
        tabulate: f4_tabulate,
        trace: Some(trace_scenario),
        observe: Some(observe_scenario),
    }
}

fn f4_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let sweep: &[usize] = if quick {
        &[4, 12]
    } else {
        &[2, 4, 8, 12, 16, 24]
    };
    SweepSpec::new(base(quick))
        .axis("vehicles", sweep.to_vec(), |cfg, &n| cfg.vehicles = n)
        .axis_labeled(
            "strategy",
            vec![Strategy::Airdnd, Strategy::LocalOnly],
            |s| s.label().to_owned(),
            |cfg, &s| cfg.strategy = s,
        )
        .replicates(replicates(quick))
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(104)
        .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f4_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F4",
        "hidden-region coverage & detection time vs fleet size",
        &[
            "vehicles",
            "strategy",
            "coverage %",
            "±95",
            "ego-only %",
            "detect s",
        ],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let coverage = Aggregate::of(rs, |r| r.mean_coverage * 100.0);
        table.row(vec![
            plans[0].config.vehicles.to_string(),
            plans[0].labels[1].clone(),
            fmt_f(coverage.mean),
            fmt_ci(&coverage),
            fmt_f(Aggregate::of(rs, |r| r.ego_only_coverage * 100.0).mean),
            fmt_opt(mean_opt(rs, |r| r.time_to_detect_s)),
        ]);
    }
    ExperimentResult::table_only(table)
}

// --- T5: RQ1 ablation — which selection criteria matter ---

/// T5 — node-selection feature ablation over a [`SelectionWeights`] axis.
pub fn t5() -> ScenarioWorkload {
    FnWorkload {
        name: "t5",
        title: "node-selection feature ablation (RQ1)",
        spec: t5_spec,
        run,
        metrics: scenario_metrics,
        tabulate: t5_tabulate,
        trace: Some(trace_scenario),
        observe: Some(observe_scenario),
    }
}

/// The ablated weight variants swept by T5's `weights` axis.
fn t5_variants() -> Vec<(&'static str, SelectionWeights)> {
    vec![
        ("full", SelectionWeights::default()),
        ("compute-only", SelectionWeights::compute_only()),
        (
            "no-link",
            SelectionWeights {
                link: 0.0,
                ..SelectionWeights::default()
            },
        ),
        (
            "no-trust",
            SelectionWeights {
                trust: 0.0,
                ..SelectionWeights::default()
            },
        ),
        (
            "no-in-range",
            SelectionWeights {
                in_range: 0.0,
                ..SelectionWeights::default()
            },
        ),
    ]
}

fn t5_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let mut base = ScenarioConfig {
        vehicles: 14,
        byzantine_fraction: 0.2,
        ..base(quick)
    };
    base.orch.redundancy = 1;
    // Spot checks let reputations actually evolve, which is what the
    // trust weight consumes.
    base.orch.spot_check_probability = 0.25;
    SweepSpec::new(base)
        .axis_labeled(
            "weights",
            t5_variants(),
            |(name, _)| (*name).to_owned(),
            |cfg, (_, weights)| cfg.orch.weights = *weights,
        )
        .replicates(if quick { 2 } else { 4 })
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(105)
        .seed_with(|cfg, seed| cfg.seed = seed)
}

fn t5_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "T5",
        "node-selection feature ablation (RQ1)",
        &[
            "weights",
            "done %",
            "±95",
            "p95 ms",
            "failed",
            "bad results",
        ],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let done = Aggregate::of(rs, |r| r.completion_rate * 100.0);
        let p95 = rs.iter().map(|r| r.latency_p95_ms).fold(0.0, f64::max);
        let failed: u64 = rs.iter().map(|r| r.tasks_failed).sum();
        let bad: u64 = rs.iter().map(|r| r.invalid_results_accepted).sum();
        let submitted: u64 = rs.iter().map(|r| r.tasks_submitted).sum();
        table.row(vec![
            plans[0].labels[0].clone(),
            fmt_f(done.mean),
            fmt_ci(&done),
            fmt_f(p95),
            failed.to_string(),
            format!(
                "{bad} ({:.1}%)",
                bad as f64 / submitted.max(1) as f64 * 100.0
            ),
        ]);
    }
    ExperimentResult::table_only(table)
}

// --- F7: churn resilience — completion vs vehicle speed ---

/// F7 — task completion under mobility-driven churn.
pub fn f7() -> ScenarioWorkload {
    FnWorkload {
        name: "f7",
        title: "task completion under mobility-driven churn",
        spec: f7_spec,
        run,
        metrics: scenario_metrics,
        tabulate: f7_tabulate,
        trace: Some(trace_scenario),
        observe: Some(observe_scenario),
    }
}

fn f7_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let sweep: &[f64] = if quick {
        &[8.0, 20.0]
    } else {
        &[5.0, 10.0, 15.0, 20.0, 25.0]
    };
    SweepSpec::new(ScenarioConfig {
        vehicles: 12,
        ..base(quick)
    })
    .axis("speed_mps", sweep.to_vec(), |cfg, &speed| {
        cfg.speed_limit = speed
    })
    .replicates(replicates(quick))
    .seed_mode(SeedMode::PerReplicate)
    .base_seed(107)
    .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f7_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F7",
        "task completion under mobility-driven churn",
        &[
            "speed m/s",
            "churn/min",
            "done %",
            "±95",
            "p95 ms",
            "offers/task",
        ],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let rs = manifest.cell_results(results, cell);
        let done = Aggregate::of(rs, |r| r.completion_rate * 100.0);
        table.row(vec![
            fmt_f(plans[0].config.speed_limit),
            fmt_f(Aggregate::of(rs, |r| (r.joins + r.leaves) as f64 / (r.duration_s / 60.0)).mean),
            fmt_f(done.mean),
            fmt_ci(&done),
            fmt_f(Aggregate::of(rs, |r| r.latency_p95_ms).mean),
            fmt_f(
                Aggregate::of(rs, |r| {
                    r.offers_sent as f64 / r.tasks_submitted.max(1) as f64
                })
                .mean,
            ),
        ]);
    }
    ExperimentResult::table_only(table)
}

// --- F8: excess-resource utilization vs offered load (the Airbnb claim) ---

/// F8 — helper-ECU utilization vs offered load.
pub fn f8() -> ScenarioWorkload {
    FnWorkload {
        name: "f8",
        title: "helper-ECU utilization vs offered load",
        spec: f8_spec,
        run,
        metrics: scenario_metrics,
        tabulate: f8_tabulate,
        trace: Some(trace_scenario),
        observe: Some(observe_scenario),
    }
}

fn f8_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let sweep: &[u32] = if quick { &[10, 3] } else { &[20, 10, 5, 3, 2] };
    SweepSpec::new(ScenarioConfig {
        vehicles: 10,
        task_compute_rounds: 600,
        ..base(quick)
    })
    .axis("task_every_ticks", sweep.to_vec(), |cfg, &every| {
        cfg.task_every_ticks = every
    })
    .seed_mode(SeedMode::PerReplicate)
    .base_seed(108)
    .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f8_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F8",
        "helper-ECU utilization vs offered load",
        &["task period ms", "done %", "helper util %", "p95 ms"],
    );
    for (plan, r) in manifest.runs.iter().zip(results) {
        table.row(vec![
            (plan.config.task_every_ticks as u64 * 100).to_string(),
            fmt_f(r.completion_rate * 100.0),
            fmt_f(r.mean_executor_utilization * 100.0),
            fmt_f(r.latency_p95_ms),
        ]);
    }
    ExperimentResult::table_only(table)
}

// --- T9: RQ3 — integrity under byzantine executors, with replicates ---

/// T9 — byzantine tolerance: redundancy + reputation.
pub fn t9() -> ScenarioWorkload {
    FnWorkload {
        name: "t9",
        title: "byzantine tolerance: redundancy + reputation (RQ3)",
        spec: t9_spec,
        run,
        metrics: scenario_metrics,
        tabulate: t9_tabulate,
        trace: Some(trace_scenario),
        observe: Some(observe_scenario),
    }
}

fn t9_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let fractions: &[f64] = if quick {
        &[0.0, 0.3]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.4]
    };
    let replicates = if quick { 2 } else { 4 };
    SweepSpec::new(ScenarioConfig {
        vehicles: 14,
        ..base(quick)
    })
    .axis(
        "byzantine_pct",
        fractions.iter().map(|f| Pct(*f)).collect::<Vec<_>>(),
        |cfg, p| {
            cfg.byzantine_fraction = p.0;
        },
    )
    .axis("redundancy", vec![1usize, 3], |cfg, &r| {
        cfg.orch.redundancy = r;
        cfg.orch.max_candidates = r + 2;
    })
    .replicates(replicates)
    .seed_mode(SeedMode::PerReplicate)
    .base_seed(109)
    .seed_with(|cfg, seed| cfg.seed = seed)
}

/// A fraction labelled as a percentage on its sweep axis.
struct Pct(f64);

impl std::fmt::Display for Pct {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0 * 100.0)
    }
}

fn t9_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "T9",
        "byzantine tolerance: redundancy + reputation (RQ3)",
        &["byz %", "redundancy", "done %", "bad accepted", "p95 ms"],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let cell_results = manifest.cell_results(results, cell);
        let n = cell_results.len() as f64;
        let done: f64 = cell_results.iter().map(|r| r.completion_rate).sum::<f64>() / n;
        let p95 = cell_results
            .iter()
            .map(|r| r.latency_p95_ms)
            .fold(0.0, f64::max);
        let bad: u64 = cell_results
            .iter()
            .map(|r| r.invalid_results_accepted)
            .sum();
        let submitted: u64 = cell_results.iter().map(|r| r.tasks_submitted).sum();
        let cfg = &plans[0].config;
        table.row(vec![
            fmt_f(cfg.byzantine_fraction * 100.0),
            cfg.orch.redundancy.to_string(),
            fmt_f(done * 100.0),
            format!(
                "{bad} ({:.1}%)",
                bad as f64 / submitted.max(1) as f64 * 100.0
            ),
            fmt_f(p95),
        ]);
    }
    ExperimentResult::table_only(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Grid shapes: quick and full expansions, including the full-mode
    /// replicates the F1/F2/F4/F7 confidence intervals rest on.
    #[test]
    fn grid_shapes() {
        assert_eq!(f1_spec(true).manifest().len(), 3);
        assert_eq!(f1_spec(false).manifest().len(), 5 * FULL_REPLICATES);
        assert_eq!(f2_spec(true).manifest().len(), 3); // 1 fleet size × 3 strategies
        assert_eq!(f2_spec(false).manifest().len(), 4 * 3 * FULL_REPLICATES);
        assert_eq!(f3_spec(true).manifest().len(), 3);
        assert_eq!(f4_spec(true).manifest().len(), 2 * 2);
        assert_eq!(f4_spec(false).manifest().len(), 6 * 2 * FULL_REPLICATES);
        assert_eq!(t5_spec(true).manifest().len(), 5 * 2);
        assert_eq!(t5_spec(false).manifest().len(), 5 * 4);
        assert_eq!(f7_spec(true).manifest().len(), 2);
        assert_eq!(f7_spec(false).manifest().len(), 5 * FULL_REPLICATES);
        assert_eq!(f8_spec(true).manifest().len(), 2);
        assert_eq!(f8_spec(false).manifest().len(), 5);
        assert_eq!(t9_spec(true).manifest().len(), 2 * 2 * 2);
        assert_eq!(t9_spec(false).manifest().len(), 5 * 2 * 4);
    }

    /// The replicated figures label their CI column; single-shot cells
    /// render `-` so quick tables never show a misleading interval.
    #[test]
    fn ci_column_renders_dash_for_single_replicate() {
        let one = Aggregate::from_samples(&[5.0]);
        assert_eq!(fmt_ci(&one), "-");
        let three = Aggregate::from_samples(&[5.0, 6.0, 7.0]);
        assert_ne!(fmt_ci(&three), "-");
    }
}
