//! The sweep-experiment registry: every grid-shaped figure (density,
//! strategy, churn, byzantine fraction) declared through the
//! `airdnd-harness` builder instead of a hand-rolled loop.
//!
//! Each entry contributes a [`SweepSpec`] (what to vary) and a tabulator
//! (how to render the familiar EXPERIMENTS.md table from the ordered
//! results). The harness guarantees that the result vector is in manifest
//! order regardless of the worker count, so the rendered table — and the
//! JSON/CSV aggregate reports — are byte-identical for `threads = 1` and
//! `threads = N`.

use crate::report::{fmt_f, fmt_opt, ExperimentResult, Table};
use airdnd_harness::{
    run_sweep_with_progress, summarize_cells, Manifest, Progress, SeedMode, SweepReport, SweepSpec,
};
use airdnd_scenario::{run_scenario, ScenarioConfig, ScenarioReport, Strategy};
use airdnd_sim::SimDuration;
use serde_json::json;

fn base(quick: bool) -> ScenarioConfig {
    ScenarioConfig {
        duration: if quick {
            SimDuration::from_secs(15)
        } else {
            SimDuration::from_secs(60)
        },
        ..Default::default()
    }
}

/// One sweep-shaped experiment: its grid plus its table renderer.
pub struct SweepExperiment {
    /// Experiment id (`"f2"`), used for filtering and artifact names.
    pub name: &'static str,
    /// Human title for the aggregate report.
    pub title: &'static str,
    /// Builds the parameter grid (`quick` selects the CI-sized version).
    pub spec: fn(bool) -> SweepSpec<ScenarioConfig>,
    /// Renders the EXPERIMENTS.md table from ordered results.
    pub tabulate: fn(&Manifest<ScenarioConfig>, &[ScenarioReport]) -> ExperimentResult,
}

/// Every experiment expressed as a harness sweep, in EXPERIMENTS.md order.
pub fn registry() -> Vec<SweepExperiment> {
    vec![
        SweepExperiment {
            name: "f1",
            title: "mesh formation & dissolution vs fleet density",
            spec: f1_spec,
            tabulate: f1_tabulate,
        },
        SweepExperiment {
            name: "f2",
            title: "bytes per completed perception view, by strategy and fleet size",
            spec: f2_spec,
            tabulate: f2_tabulate,
        },
        SweepExperiment {
            name: "f4",
            title: "hidden-region coverage & detection time vs fleet size",
            spec: f4_spec,
            tabulate: f4_tabulate,
        },
        SweepExperiment {
            name: "f7",
            title: "task completion under mobility-driven churn",
            spec: f7_spec,
            tabulate: f7_tabulate,
        },
        SweepExperiment {
            name: "t9",
            title: "byzantine tolerance: redundancy + reputation (RQ3)",
            spec: t9_spec,
            tabulate: t9_tabulate,
        },
    ]
}

/// Looks up one sweep experiment by name.
pub fn find(name: &str) -> Option<SweepExperiment> {
    registry().into_iter().find(|e| e.name == name)
}

/// Expands, executes (across `threads` workers; `0` = all cores) and
/// tabulates one sweep experiment. `progress` streams completion counts —
/// send it to stderr so stdout stays byte-identical across thread counts.
pub fn execute(
    exp: &SweepExperiment,
    quick: bool,
    threads: usize,
    mut progress: impl FnMut(Progress),
) -> (
    Manifest<ScenarioConfig>,
    Vec<ScenarioReport>,
    ExperimentResult,
) {
    let manifest = (exp.spec)(quick).manifest();
    let outcome = run_sweep_with_progress(
        &manifest,
        threads,
        |plan| run_scenario(plan.config),
        &mut progress,
    );
    let result = (exp.tabulate)(&manifest, &outcome.results);
    (manifest, outcome.results, result)
}

/// Convenience used by `exp::*`: execute by name with silent progress.
pub fn run_named(name: &str, quick: bool, threads: usize) -> ExperimentResult {
    let exp = find(name).unwrap_or_else(|| panic!("sweep experiment `{name}` is registered"));
    let (_, _, result) = execute(&exp, quick, threads, |_| {});
    result
}

/// The scenario metrics aggregated per grid cell in sweep reports.
pub fn scenario_metrics(r: &ScenarioReport) -> Vec<(&'static str, f64)> {
    vec![
        ("completion_rate", r.completion_rate),
        ("latency_mean_ms", r.latency_mean_ms),
        ("latency_p50_ms", r.latency_p50_ms),
        ("latency_p95_ms", r.latency_p95_ms),
        ("mesh_bytes", r.mesh_bytes as f64),
        ("cellular_bytes", r.cellular_bytes as f64),
        ("bytes_per_task", r.bytes_per_task),
        ("mean_coverage", r.mean_coverage),
        ("mean_members", r.mean_members),
        ("mean_executor_utilization", r.mean_executor_utilization),
        (
            "invalid_results_accepted",
            r.invalid_results_accepted as f64,
        ),
    ]
}

/// Builds the deterministic aggregate report (JSON/CSV payload) for one
/// executed sweep.
pub fn aggregate_report(
    exp: &SweepExperiment,
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> SweepReport {
    SweepReport {
        name: exp.name.to_owned(),
        title: exp.title.to_owned(),
        axis_names: manifest.axis_names.clone(),
        replicates: manifest.replicates,
        base_seed: manifest.base_seed,
        cells: summarize_cells(manifest, results, scenario_metrics),
    }
}

// --- F1: mesh formation & dissolution vs density (Model 1 dynamicity) ---

fn f1_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let sweep: &[usize] = if quick {
        &[5, 10, 20]
    } else {
        &[5, 10, 20, 40, 60]
    };
    SweepSpec::new(base(quick))
        .axis("vehicles", sweep.to_vec(), |cfg, &n| cfg.vehicles = n)
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(101)
        .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f1_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F1",
        "mesh formation & dissolution vs fleet density",
        &[
            "vehicles",
            "formation s",
            "mean members",
            "joins/min",
            "leaves/min",
        ],
    );
    for (plan, r) in manifest.runs.iter().zip(results) {
        let minutes = r.duration_s / 60.0;
        table.row(vec![
            plan.config.vehicles.to_string(),
            fmt_opt(r.mesh_formation_s),
            fmt_f(r.mean_members),
            fmt_f(r.joins as f64 / minutes),
            fmt_f(r.leaves as f64 / minutes),
        ]);
    }
    ExperimentResult::table_only(table)
}

// --- F2: data transferred per perception view (the minimization claim) ---

fn strategy_axis_f2() -> Vec<Strategy> {
    vec![
        Strategy::Airdnd,
        Strategy::Cloud { fiveg: true },
        Strategy::RawSharing,
    ]
}

fn f2_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let sweep: &[usize] = if quick { &[8] } else { &[4, 8, 12, 16] };
    SweepSpec::new(base(quick))
        .axis("vehicles", sweep.to_vec(), |cfg, &n| cfg.vehicles = n)
        .axis_labeled(
            "strategy",
            strategy_axis_f2(),
            |s| s.label().to_owned(),
            |cfg, &s| cfg.strategy = s,
        )
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(102)
        .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f2_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F2",
        "bytes per completed perception view, by strategy and fleet size",
        &["vehicles", "strategy", "kB/view", "total MB", "done %"],
    );
    let mut series = Vec::new();
    for (plan, r) in manifest.runs.iter().zip(results) {
        table.row(vec![
            plan.config.vehicles.to_string(),
            r.strategy.clone(),
            fmt_f(r.bytes_per_task / 1_000.0),
            fmt_f((r.mesh_bytes + r.cellular_bytes) as f64 / 1e6),
            fmt_f(r.completion_rate * 100.0),
        ]);
        series.push(json!({
            "vehicles": plan.config.vehicles,
            "strategy": r.strategy,
            "bytes_per_task": r.bytes_per_task,
        }));
    }
    ExperimentResult {
        table,
        series: json!(series),
    }
}

// --- F4: looking-around-the-corner coverage vs cooperating vehicles ---

fn f4_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let sweep: &[usize] = if quick {
        &[4, 12]
    } else {
        &[2, 4, 8, 12, 16, 24]
    };
    SweepSpec::new(base(quick))
        .axis("vehicles", sweep.to_vec(), |cfg, &n| cfg.vehicles = n)
        .axis_labeled(
            "strategy",
            vec![Strategy::Airdnd, Strategy::LocalOnly],
            |s| s.label().to_owned(),
            |cfg, &s| cfg.strategy = s,
        )
        .seed_mode(SeedMode::PerReplicate)
        .base_seed(104)
        .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f4_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F4",
        "hidden-region coverage & detection time vs fleet size",
        &[
            "vehicles",
            "strategy",
            "coverage %",
            "ego-only %",
            "detect s",
        ],
    );
    for (plan, r) in manifest.runs.iter().zip(results) {
        table.row(vec![
            plan.config.vehicles.to_string(),
            r.strategy.clone(),
            fmt_f(r.mean_coverage * 100.0),
            fmt_f(r.ego_only_coverage * 100.0),
            fmt_opt(r.time_to_detect_s),
        ]);
    }
    ExperimentResult::table_only(table)
}

// --- F7: churn resilience: completion vs vehicle speed ---

fn f7_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let sweep: &[f64] = if quick {
        &[8.0, 20.0]
    } else {
        &[5.0, 10.0, 15.0, 20.0, 25.0]
    };
    SweepSpec::new(ScenarioConfig {
        vehicles: 12,
        ..base(quick)
    })
    .axis("speed_mps", sweep.to_vec(), |cfg, &speed| {
        cfg.speed_limit = speed
    })
    .seed_mode(SeedMode::PerReplicate)
    .base_seed(107)
    .seed_with(|cfg, seed| cfg.seed = seed)
}

fn f7_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "F7",
        "task completion under mobility-driven churn",
        &["speed m/s", "churn/min", "done %", "p95 ms", "offers/task"],
    );
    for (plan, r) in manifest.runs.iter().zip(results) {
        let minutes = r.duration_s / 60.0;
        table.row(vec![
            fmt_f(plan.config.speed_limit),
            fmt_f((r.joins + r.leaves) as f64 / minutes),
            fmt_f(r.completion_rate * 100.0),
            fmt_f(r.latency_p95_ms),
            fmt_f(r.offers_sent as f64 / r.tasks_submitted.max(1) as f64),
        ]);
    }
    ExperimentResult::table_only(table)
}

// --- T9: RQ3 — integrity under byzantine executors, with replicates ---

fn t9_spec(quick: bool) -> SweepSpec<ScenarioConfig> {
    let fractions: &[f64] = if quick {
        &[0.0, 0.3]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.4]
    };
    let replicates = if quick { 2 } else { 4 };
    SweepSpec::new(ScenarioConfig {
        vehicles: 14,
        ..base(quick)
    })
    .axis(
        "byzantine_pct",
        fractions.iter().map(|f| Pct(*f)).collect::<Vec<_>>(),
        |cfg, p| {
            cfg.byzantine_fraction = p.0;
        },
    )
    .axis("redundancy", vec![1usize, 3], |cfg, &r| {
        cfg.orch.redundancy = r;
        cfg.orch.max_candidates = r + 2;
    })
    .replicates(replicates)
    .seed_mode(SeedMode::PerReplicate)
    .base_seed(109)
    .seed_with(|cfg, seed| cfg.seed = seed)
}

/// A fraction labelled as a percentage on its sweep axis.
struct Pct(f64);

impl std::fmt::Display for Pct {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0 * 100.0)
    }
}

fn t9_tabulate(
    manifest: &Manifest<ScenarioConfig>,
    results: &[ScenarioReport],
) -> ExperimentResult {
    let mut table = Table::new(
        "T9",
        "byzantine tolerance: redundancy + reputation (RQ3)",
        &["byz %", "redundancy", "done %", "bad accepted", "p95 ms"],
    );
    for cell in 0..manifest.cell_count {
        let plans = manifest.cell_runs(cell);
        let cell_results = manifest.cell_results(results, cell);
        let n = cell_results.len() as f64;
        let done: f64 = cell_results.iter().map(|r| r.completion_rate).sum::<f64>() / n;
        let p95 = cell_results
            .iter()
            .map(|r| r.latency_p95_ms)
            .fold(0.0, f64::max);
        let bad: u64 = cell_results
            .iter()
            .map(|r| r.invalid_results_accepted)
            .sum();
        let submitted: u64 = cell_results.iter().map(|r| r.tasks_submitted).sum();
        let cfg = &plans[0].config;
        table.row(vec![
            fmt_f(cfg.byzantine_fraction * 100.0),
            cfg.orch.redundancy.to_string(),
            fmt_f(done * 100.0),
            format!(
                "{bad} ({:.1}%)",
                bad as f64 / submitted.max(1) as f64 * 100.0
            ),
            fmt_f(p95),
        ]);
    }
    ExperimentResult::table_only(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `exp::*` delegates look sweeps up by string at runtime
    /// (`run_named`); pin both registries together so a rename fails here
    /// in unit tests instead of panicking mid-suite in `run_experiments`.
    #[test]
    fn sweep_registry_matches_exp_registry() {
        let exp_names: Vec<&str> = crate::exp::registry()
            .iter()
            .map(|(name, _)| *name)
            .collect();
        for sweep in registry() {
            assert!(
                exp_names.contains(&sweep.name),
                "sweep `{}` has no exp::registry entry",
                sweep.name
            );
            assert!(find(sweep.name).is_some());
        }
        let names: Vec<&str> = registry().iter().map(|e| e.name).collect();
        assert_eq!(names, ["f1", "f2", "f4", "f7", "t9"]);
    }

    /// Grid shapes: quick and full expansions match the hand-rolled loops
    /// they replaced.
    #[test]
    fn grid_shapes_match_the_original_loops() {
        assert_eq!(f1_spec(true).manifest().len(), 3);
        assert_eq!(f1_spec(false).manifest().len(), 5);
        assert_eq!(f2_spec(true).manifest().len(), 3); // 1 fleet size × 3 strategies
        assert_eq!(f2_spec(false).manifest().len(), 4 * 3);
        assert_eq!(f4_spec(true).manifest().len(), 2 * 2);
        assert_eq!(f4_spec(false).manifest().len(), 6 * 2);
        assert_eq!(f7_spec(true).manifest().len(), 2);
        assert_eq!(f7_spec(false).manifest().len(), 5);
        // T9: fractions × redundancy × seed replicates.
        assert_eq!(t9_spec(true).manifest().len(), 2 * 2 * 2);
        assert_eq!(t9_spec(false).manifest().len(), 5 * 2 * 4);
    }
}
