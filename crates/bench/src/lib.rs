//! # airdnd-bench — the experiment harness
//!
//! One [`airdnd_harness::Workload`] per table/figure in `EXPERIMENTS.md`,
//! all registered in the unified typed registry ([`workloads::registry`]);
//! the `run_experiments` binary executes them all, prints the tables and
//! writes machine-readable JSON to `target/experiments/`, and the `sweep`
//! binary exposes each grid with `--threads`, `--shard i/n` and `--merge`.
//!
//! The paper is a vision paper with no quantitative evaluation of its own,
//! so each experiment here regenerates a *constructed* figure derived from
//! an explicit claim or research question (see DESIGN.md §4 for the
//! mapping). Experiments run in two sizes: `quick` (seconds, CI-friendly)
//! and `full` (the numbers recorded in EXPERIMENTS.md).

#![forbid(unsafe_code)]

pub mod compare;
pub mod exp;
pub mod report;
pub mod workloads;

pub use report::{ExperimentResult, Table};
