//! `sweep --bench-compare` — the perf-trajectory regression gate.
//!
//! Compares two `BENCH_engine.json`-style profiles (the artifact
//! `sweep --bench-engine` records: per-workload wall-clock plus its
//! attribution to engine phases) and flags phases that got slower than a
//! tolerance. CI runs it advisory against the committed baseline; the
//! CLI exits nonzero on regression so a threshold can gate a branch.
//!
//! Comparison is per `(workload, phase)` on the attributed milliseconds,
//! plus each workload's `wall_ms`. A regression is a new value exceeding
//! the old by more than `max_regress_pct` **and** by more than an
//! absolute 1 ms floor — phases that cost microseconds jitter by large
//! percentages without meaning anything.

use serde_json::{Number, Value};
use std::fmt;

/// Absolute floor below which a delta is noise, whatever its
/// percentage (wall-clock entries this small jitter freely).
const ABS_FLOOR_MS: f64 = 1.0;

/// One compared `(workload, phase)` cell.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseDelta {
    /// Workload name (`f2`, `g3`, ...).
    pub workload: String,
    /// Phase name, or `"wall"` for the workload's total wall-clock.
    pub phase: String,
    /// Milliseconds in the old profile.
    pub old_ms: f64,
    /// Milliseconds in the new profile.
    pub new_ms: f64,
    /// `true` when the delta exceeds both the percentage tolerance and
    /// the absolute floor.
    pub regressed: bool,
}

impl PhaseDelta {
    /// Percent change from old to new (0 when the old value is 0).
    pub fn pct(&self) -> f64 {
        if self.old_ms <= 0.0 {
            0.0
        } else {
            (self.new_ms - self.old_ms) / self.old_ms * 100.0
        }
    }
}

impl fmt::Display for PhaseDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<6} {:<10} {:>10.3} ms -> {:>10.3} ms  ({:+.1}%){}",
            self.workload,
            self.phase,
            self.old_ms,
            self.new_ms,
            self.pct(),
            if self.regressed { "  REGRESSED" } else { "" }
        )
    }
}

/// The full comparison: every `(workload, phase)` present in both
/// profiles, in profile order.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Per-cell deltas (wall-clock rows included as phase `"wall"`).
    pub deltas: Vec<PhaseDelta>,
}

impl Comparison {
    /// The cells that regressed beyond tolerance.
    pub fn regressions(&self) -> Vec<&PhaseDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }
}

/// Looks up `name` in a JSON object (the vendored `Value` has no
/// `Index` impl).
fn field<'v>(value: &'v Value, name: &str) -> Option<&'v Value> {
    match value {
        Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

/// A JSON number as f64 (integers included).
fn numeric(value: &Value) -> Option<f64> {
    match value {
        Value::Number(Number::PosInt(n)) => Some(*n as f64),
        Value::Number(Number::NegInt(n)) => Some(*n as f64),
        Value::Number(Number::Float(f)) => Some(*f),
        _ => None,
    }
}

/// Every `(workload, phase, ms)` cell of one engine-bench profile, in
/// document order, with each workload's wall-clock as phase `"wall"`.
fn cells(profile: &Value) -> Result<Vec<(String, String, f64)>, String> {
    let workloads = field(profile, "workloads").ok_or("profile has no `workloads` object")?;
    let Value::Object(entries) = workloads else {
        return Err("`workloads` is not an object".into());
    };
    let mut out = Vec::new();
    for (name, workload) in entries {
        if let Some(wall) = field(workload, "wall_ms").and_then(numeric) {
            out.push((name.clone(), "wall".to_string(), wall));
        }
        let phases = field(workload, "phases")
            .and_then(|p| field(p, "phases"))
            .ok_or_else(|| format!("workload `{name}` has no phases object"))?;
        let Value::Object(phase_entries) = phases else {
            return Err(format!("workload `{name}` phases is not an object"));
        };
        for (phase, detail) in phase_entries {
            let ms = field(detail, "ms")
                .and_then(numeric)
                .ok_or_else(|| format!("phase `{name}/{phase}` has no numeric `ms`"))?;
            out.push((name.clone(), phase.clone(), ms));
        }
    }
    Ok(out)
}

/// Compares two engine-bench profiles: every `(workload, phase)` present
/// in both becomes a [`PhaseDelta`], flagged as regressed when the new
/// time exceeds the old by more than `max_regress_pct` percent *and*
/// more than an absolute 1 ms floor. Cells present on only one side are
/// skipped (workload sets may legitimately change across commits).
pub fn compare_profiles(
    old_text: &str,
    new_text: &str,
    max_regress_pct: f64,
) -> Result<Comparison, String> {
    let old = Value::parse(old_text).ok_or("old profile: not valid JSON")?;
    let new = Value::parse(new_text).ok_or("new profile: not valid JSON")?;
    let old_cells = cells(&old).map_err(|e| format!("old profile: {e}"))?;
    let new_cells = cells(&new).map_err(|e| format!("new profile: {e}"))?;
    let mut deltas = Vec::new();
    for (workload, phase, old_ms) in &old_cells {
        let Some((_, _, new_ms)) = new_cells
            .iter()
            .find(|(w, p, _)| w == workload && p == phase)
        else {
            continue;
        };
        let regressed =
            *new_ms > old_ms * (1.0 + max_regress_pct / 100.0) && new_ms - old_ms > ABS_FLOOR_MS;
        deltas.push(PhaseDelta {
            workload: workload.clone(),
            phase: phase.clone(),
            old_ms: *old_ms,
            new_ms: *new_ms,
            regressed,
        });
    }
    Ok(Comparison { deltas })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(f2_tasks_ms: f64, f2_wall_ms: f64) -> String {
        format!(
            r#"{{
  "description": "test profile",
  "mode": "quick",
  "workloads": {{
    "f2": {{
      "wall_ms": {f2_wall_ms},
      "attributed_ms": {f2_tasks_ms},
      "phases": {{
        "total_ms": {f2_tasks_ms},
        "phases": {{
          "tasks": {{ "ms": {f2_tasks_ms}, "share": 0.9, "entries": 100 }},
          "radio": {{ "ms": 0.4, "share": 0.1, "entries": 100 }}
        }}
      }}
    }}
  }}
}}"#
        )
    }

    #[test]
    fn identical_profiles_have_no_regressions() {
        let p = profile(30.0, 40.0);
        let cmp = compare_profiles(&p, &p, 10.0).unwrap();
        assert!(cmp.regressions().is_empty());
        assert_eq!(cmp.deltas.len(), 3); // wall + tasks + radio
    }

    #[test]
    fn injected_regression_beyond_threshold_is_flagged() {
        let old = profile(30.0, 40.0);
        let new = profile(45.0, 56.0); // +50 % on tasks and wall
        let cmp = compare_profiles(&old, &new, 10.0).unwrap();
        let regressed: Vec<String> = cmp
            .regressions()
            .iter()
            .map(|d| format!("{}/{}", d.workload, d.phase))
            .collect();
        assert_eq!(regressed, ["f2/wall", "f2/tasks"]);
        let tasks = cmp
            .deltas
            .iter()
            .find(|d| d.phase == "tasks")
            .expect("tasks compared");
        assert!((tasks.pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn small_absolute_deltas_are_noise_even_at_high_percentages() {
        // radio goes 0.4 ms -> 0.9 ms: +125 %, but under the 1 ms floor.
        let old = profile(30.0, 40.0);
        let new = old.replace(r#""radio": { "ms": 0.4"#, r#""radio": { "ms": 0.9"#);
        let cmp = compare_profiles(&old, &new, 10.0).unwrap();
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn improvements_never_flag() {
        let old = profile(30.0, 40.0);
        let new = profile(10.0, 15.0);
        let cmp = compare_profiles(&old, &new, 10.0).unwrap();
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn malformed_profiles_name_the_problem() {
        assert!(compare_profiles("{}", "{}", 10.0)
            .unwrap_err()
            .contains("workloads"));
        assert!(compare_profiles("not json", "{}", 10.0).is_err());
    }
}
