//! A synthetic allocation market: one workload, swappable mechanisms.
//!
//! Used by experiments T6 and F12. A pool of heterogeneous executors
//! receives a Poisson stream of tasks; the mechanism under test picks
//! executor(s) per task; completions follow the executors' (drained)
//! backlogs plus the mechanism's decision latency. Everything is
//! deterministic per seed, so mechanism rows are directly comparable.

use airdnd_baselines::{Assigner, CandidateInfo};
use airdnd_radio::NodeAddr;
use airdnd_sim::{SimRng, SimTime};
use airdnd_task::{Program, ResourceRequirements, TaskId, TaskSpec};
use std::collections::BTreeMap;

/// Aggregate results of one market simulation.
#[derive(Clone, Debug)]
pub struct MarketStats {
    /// Fraction of tasks that received an executor.
    pub allocated_fraction: f64,
    /// Mean completion latency (decision + queueing + execution), seconds.
    pub mean_completion_s: f64,
    /// 95th-percentile completion latency, seconds.
    pub p95_completion_s: f64,
    /// Control-plane messages per task.
    pub control_msgs_per_task: f64,
    /// Jain fairness of gas assigned across executors.
    pub fairness: f64,
}

/// Runs `n_tasks` through `mechanism` over a pool of `n_candidates`.
pub fn market_sim(
    mechanism: &mut dyn Assigner,
    seed: u64,
    n_candidates: usize,
    n_tasks: usize,
) -> MarketStats {
    let mut rng = SimRng::seed_from(seed);
    // Heterogeneous executor pool.
    let mut gas_rates = BTreeMap::new();
    let mut backlogs: BTreeMap<u64, f64> = BTreeMap::new();
    let mut assigned_gas: BTreeMap<u64, f64> = BTreeMap::new();
    for i in 0..n_candidates {
        let id = i as u64 + 1;
        gas_rates.insert(id, 500_000.0 + rng.next_f64() * 3_500_000.0);
        backlogs.insert(id, 0.0);
        assigned_gas.insert(id, 0.0);
    }
    let links: BTreeMap<u64, f64> = gas_rates
        .keys()
        .map(|&id| (id, 0.5 + rng.next_f64() * 0.5))
        .collect();
    let trusts: BTreeMap<u64, f64> = gas_rates
        .keys()
        .map(|&id| (id, 0.5 + rng.next_f64() * 0.45))
        .collect();

    let mut now_s = 0.0f64;
    let mut completions = Vec::new();
    let mut allocated = 0usize;
    let mut control_msgs = 0u64;
    for t in 0..n_tasks {
        let dt = rng.exp(0.2); // mean 200 ms between arrivals
        now_s += dt;
        // Backlogs drain while time passes.
        for (id, backlog) in backlogs.iter_mut() {
            *backlog = (*backlog - gas_rates[id] * dt).max(0.0);
        }
        let gas = 500_000.0 + rng.next_f64() * 1_500_000.0;
        let task = TaskSpec::new(
            TaskId::new(t as u64),
            "market",
            Program::new(vec![airdnd_task::Instr::Halt], 0),
        )
        .with_requirements(ResourceRequirements {
            gas: gas as u64,
            deadline: airdnd_sim::SimDuration::from_secs(3),
            ..Default::default()
        });
        let candidates: Vec<CandidateInfo> = gas_rates
            .iter()
            .map(|(&id, &rate)| CandidateInfo {
                addr: NodeAddr::new(id),
                gas_rate: rate as u64,
                gas_backlog: backlogs[&id] as u64,
                link_quality: links[&id],
                has_data: true,
                trust: trusts[&id],
            })
            .collect();
        let Some(assignment) = mechanism.assign(&task, &candidates, SimTime::from_secs_f64(now_s))
        else {
            continue;
        };
        allocated += 1;
        control_msgs += assignment.control_messages;
        let decision_s = assignment.decision_latency.as_secs_f64();
        // Each chosen executor queues the full task; completion is the
        // min_results-th earliest finish.
        let mut finishes: Vec<f64> = assignment
            .executors
            .iter()
            .map(|addr| {
                let id = addr.raw();
                let rate = gas_rates[&id];
                let backlog = backlogs.get_mut(&id).expect("known executor");
                *backlog += gas;
                *assigned_gas.get_mut(&id).expect("known executor") += gas;
                decision_s + *backlog / rate
            })
            .collect();
        finishes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let k = assignment.min_results.clamp(1, finishes.len());
        completions.push(finishes[k - 1]);
    }
    let fairness_input: Vec<f64> = assigned_gas.values().copied().collect();
    MarketStats {
        allocated_fraction: allocated as f64 / n_tasks as f64,
        mean_completion_s: if completions.is_empty() {
            0.0
        } else {
            completions.iter().sum::<f64>() / completions.len() as f64
        },
        p95_completion_s: airdnd_sim::percentile(&completions, 0.95).unwrap_or(0.0),
        control_msgs_per_task: control_msgs as f64 / n_tasks.max(1) as f64,
        fairness: airdnd_sim::stats::jain_fairness(&fairness_input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_baselines::{GreedyComputeAssigner, ScoreAssigner, SmartContractAssigner};

    #[test]
    fn market_is_deterministic() {
        let a = market_sim(&mut ScoreAssigner, 5, 10, 200);
        let b = market_sim(&mut ScoreAssigner, 5, 10, 200);
        assert_eq!(a.mean_completion_s, b.mean_completion_s);
        assert_eq!(a.allocated_fraction, b.allocated_fraction);
    }

    #[test]
    fn smart_contract_pays_its_block_interval() {
        let fast = market_sim(&mut GreedyComputeAssigner, 6, 10, 300);
        let chained = market_sim(&mut SmartContractAssigner::default(), 6, 10, 300);
        assert!(
            chained.mean_completion_s > fast.mean_completion_s + 1.5,
            "block interval must show up: {} vs {}",
            chained.mean_completion_s,
            fast.mean_completion_s
        );
    }

    #[test]
    fn greedy_beats_nothing_and_allocates_everything() {
        let stats = market_sim(&mut GreedyComputeAssigner, 7, 10, 300);
        assert_eq!(stats.allocated_fraction, 1.0);
        assert!(stats.mean_completion_s > 0.0);
        assert!(stats.fairness > 0.0 && stats.fairness <= 1.0);
    }
}
