//! One module per experiment in EXPERIMENTS.md.
//!
//! Every function takes `quick` (small, CI-sized runs) and returns an
//! [`ExperimentResult`]. DESIGN.md §4 maps each experiment to the paper
//! claim it tests.

mod market;

use crate::report::{fmt_f, fmt_opt, ExperimentResult, Table};
use airdnd_baselines::{
    Assigner, CodedAssigner, DoubleAuctionAssigner, GreedyComputeAssigner, RandomAssigner,
    ScoreAssigner, SmartContractAssigner, SyncRoundAssigner,
};
use airdnd_core::{score_candidates, OrchestratorConfig, SelectionWeights};
use airdnd_data::{DataCatalog, DataQuery, DataType, QualityDescriptor};
use airdnd_geo::Vec2;
use airdnd_mesh::{MemberDescriptor, MeshDescriptor, NodeAdvert};
use airdnd_nfv::{NfManager, PlacementStrategy, ResourceCapacity, ServiceChain, VnfDescriptor, VnfKind};
use airdnd_radio::NodeAddr;
use airdnd_scenario::{run_scenario, ScenarioConfig, Strategy};
use airdnd_sim::{SimDuration, SimRng, SimTime};
use airdnd_task::{Program, ResourceRequirements, TaskId, TaskSpec};
use airdnd_trust::ReputationTable;
use serde_json::json;

pub use market::market_sim;

fn base(quick: bool) -> ScenarioConfig {
    ScenarioConfig {
        duration: if quick { SimDuration::from_secs(15) } else { SimDuration::from_secs(60) },
        ..Default::default()
    }
}

/// F1 — mesh formation & dissolution vs density (Model 1 dynamicity).
pub fn f1_mesh_dynamics(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F1",
        "mesh formation & dissolution vs fleet density",
        &["vehicles", "formation s", "mean members", "joins/min", "leaves/min"],
    );
    let sweep: &[usize] = if quick { &[5, 10, 20] } else { &[5, 10, 20, 40, 60] };
    for &n in sweep {
        let r = run_scenario(ScenarioConfig { seed: 101, vehicles: n, ..base(quick) });
        let minutes = r.duration_s / 60.0;
        table.row(vec![
            n.to_string(),
            fmt_opt(r.mesh_formation_s),
            fmt_f(r.mean_members),
            fmt_f(r.joins as f64 / minutes),
            fmt_f(r.leaves as f64 / minutes),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// F2 — data transferred per perception view (the minimization claim).
pub fn f2_data_transfer(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F2",
        "bytes per completed perception view, by strategy and fleet size",
        &["vehicles", "strategy", "kB/view", "total MB", "done %"],
    );
    let sweep: &[usize] = if quick { &[8] } else { &[4, 8, 12, 16] };
    let strategies = [Strategy::Airdnd, Strategy::Cloud { fiveg: true }, Strategy::RawSharing];
    let mut series = Vec::new();
    for &n in sweep {
        for strategy in strategies {
            let r = run_scenario(ScenarioConfig { seed: 102, vehicles: n, strategy, ..base(quick) });
            table.row(vec![
                n.to_string(),
                r.strategy.clone(),
                fmt_f(r.bytes_per_task / 1_000.0),
                fmt_f((r.mesh_bytes + r.cellular_bytes) as f64 / 1e6),
                fmt_f(r.completion_rate * 100.0),
            ]);
            series.push(json!({
                "vehicles": n,
                "strategy": r.strategy,
                "bytes_per_task": r.bytes_per_task,
            }));
        }
    }
    ExperimentResult { table, series: json!(series) }
}

/// F3 — end-to-end latency CDF: mesh vs cellular cloud.
pub fn f3_latency_cdf(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F3",
        "task latency: AirDnD mesh vs cellular cloud",
        &["strategy", "done %", "mean ms", "p50 ms", "p95 ms", "max ms"],
    );
    let strategies =
        [Strategy::Airdnd, Strategy::Cloud { fiveg: true }, Strategy::Cloud { fiveg: false }];
    let mut series = Vec::new();
    for strategy in strategies {
        let r = run_scenario(ScenarioConfig { seed: 103, vehicles: 12, strategy, ..base(quick) });
        table.row(vec![
            r.strategy.clone(),
            fmt_f(r.completion_rate * 100.0),
            fmt_f(r.latency_mean_ms),
            fmt_f(r.latency_p50_ms),
            fmt_f(r.latency_p95_ms),
            fmt_f(r.latency_max_ms),
        ]);
        let cdf = airdnd_sim::stats::cdf_points(&r.latencies_ms, 40);
        series.push(json!({ "strategy": r.strategy, "cdf": cdf }));
    }
    ExperimentResult { table, series: json!(series) }
}

/// F4 — looking-around-the-corner coverage vs cooperating vehicles.
pub fn f4_coverage(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F4",
        "hidden-region coverage & detection time vs fleet size",
        &["vehicles", "strategy", "coverage %", "ego-only %", "detect s"],
    );
    let sweep: &[usize] = if quick { &[4, 12] } else { &[2, 4, 8, 12, 16, 24] };
    for &n in sweep {
        for strategy in [Strategy::Airdnd, Strategy::LocalOnly] {
            let r = run_scenario(ScenarioConfig { seed: 104, vehicles: n, strategy, ..base(quick) });
            table.row(vec![
                n.to_string(),
                r.strategy.clone(),
                fmt_f(r.mean_coverage * 100.0),
                fmt_f(r.ego_only_coverage * 100.0),
                fmt_opt(r.time_to_detect_s),
            ]);
        }
    }
    ExperimentResult::table_only(table)
}

/// T5 — RQ1 ablation: which selection criteria matter.
pub fn t5_selection_ablation(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "T5",
        "node-selection feature ablation (RQ1)",
        &["weights", "done %", "p95 ms", "failed", "bad results"],
    );
    let variants: Vec<(&str, SelectionWeights)> = vec![
        ("full", SelectionWeights::default()),
        ("compute-only", SelectionWeights::compute_only()),
        ("no-link", SelectionWeights { link: 0.0, ..SelectionWeights::default() }),
        ("no-trust", SelectionWeights { trust: 0.0, ..SelectionWeights::default() }),
        ("no-in-range", SelectionWeights { in_range: 0.0, ..SelectionWeights::default() }),
    ];
    let seeds: &[u64] = if quick { &[105, 205] } else { &[105, 205, 305, 405] };
    for (name, weights) in variants {
        let (mut done, mut p95, mut failed, mut bad, mut submitted) = (0.0, 0.0, 0u64, 0u64, 0u64);
        for &seed in seeds {
            let mut cfg = ScenarioConfig {
                seed,
                vehicles: 14,
                byzantine_fraction: 0.2,
                ..base(quick)
            };
            cfg.orch.weights = weights;
            cfg.orch.redundancy = 1;
            // Spot checks let reputations actually evolve, which is what
            // the trust weight consumes.
            cfg.orch.spot_check_probability = 0.25;
            let r = run_scenario(cfg);
            done += r.completion_rate;
            p95 = f64::max(p95, r.latency_p95_ms);
            failed += r.tasks_failed;
            bad += r.invalid_results_accepted;
            submitted += r.tasks_submitted;
        }
        let n = seeds.len() as f64;
        table.row(vec![
            name.to_owned(),
            fmt_f(done / n * 100.0),
            fmt_f(p95),
            failed.to_string(),
            format!("{bad} ({:.1}%)", bad as f64 / submitted.max(1) as f64 * 100.0),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// T6 — allocation-mechanism comparison on an identical synthetic market.
pub fn t6_allocators(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "T6",
        "allocator comparison (identical workload)",
        &["mechanism", "alloc %", "mean s", "p95 s", "ctrl msgs/task", "fairness"],
    );
    let tasks = if quick { 300 } else { 2000 };
    let mut mechanisms: Vec<Box<dyn Assigner>> = vec![
        Box::new(ScoreAssigner),
        Box::new(GreedyComputeAssigner),
        Box::new(RandomAssigner::new(SimRng::seed_from(61))),
        Box::new(DoubleAuctionAssigner::default()),
        Box::new(SmartContractAssigner::default()),
        Box::new(CodedAssigner::new(3, 2)),
    ];
    for mechanism in &mut mechanisms {
        let stats = market_sim(mechanism.as_mut(), 106, 20, tasks);
        table.row(vec![
            mechanism.name().to_owned(),
            fmt_f(stats.allocated_fraction * 100.0),
            fmt_f(stats.mean_completion_s),
            fmt_f(stats.p95_completion_s),
            fmt_f(stats.control_msgs_per_task),
            fmt_f(stats.fairness),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// F7 — churn resilience: completion vs vehicle speed.
pub fn f7_churn(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F7",
        "task completion under mobility-driven churn",
        &["speed m/s", "churn/min", "done %", "p95 ms", "offers/task"],
    );
    let sweep: &[f64] = if quick { &[8.0, 20.0] } else { &[5.0, 10.0, 15.0, 20.0, 25.0] };
    for &speed in sweep {
        let r = run_scenario(ScenarioConfig {
            seed: 107,
            vehicles: 12,
            speed_limit: speed,
            ..base(quick)
        });
        let minutes = r.duration_s / 60.0;
        table.row(vec![
            fmt_f(speed),
            fmt_f((r.joins + r.leaves) as f64 / minutes),
            fmt_f(r.completion_rate * 100.0),
            fmt_f(r.latency_p95_ms),
            fmt_f(r.offers_sent as f64 / r.tasks_submitted.max(1) as f64),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// F8 — excess-resource utilization vs offered load (the Airbnb claim).
pub fn f8_utilization(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F8",
        "helper-ECU utilization vs offered load",
        &["task period ms", "done %", "helper util %", "p95 ms"],
    );
    let sweep: &[u32] = if quick { &[10, 3] } else { &[20, 10, 5, 3, 2] };
    for &every in sweep {
        let r = run_scenario(ScenarioConfig {
            seed: 108,
            vehicles: 10,
            task_every_ticks: every,
            task_compute_rounds: 600,
            ..base(quick)
        });
        table.row(vec![
            (every as u64 * 100).to_string(),
            fmt_f(r.completion_rate * 100.0),
            fmt_f(r.mean_executor_utilization * 100.0),
            fmt_f(r.latency_p95_ms),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// T9 — RQ3: integrity under byzantine executors.
pub fn t9_trust(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "T9",
        "byzantine tolerance: redundancy + reputation (RQ3)",
        &["byz %", "redundancy", "done %", "bad accepted", "p95 ms"],
    );
    let fractions: &[f64] = if quick { &[0.0, 0.3] } else { &[0.0, 0.1, 0.2, 0.3, 0.4] };
    let seeds: &[u64] = if quick { &[109, 209] } else { &[109, 209, 309, 409] };
    for &frac in fractions {
        for redundancy in [1usize, 3] {
            let (mut done, mut p95, mut bad, mut submitted) = (0.0, 0.0f64, 0u64, 0u64);
            for &seed in seeds {
                let mut cfg = ScenarioConfig {
                    seed,
                    vehicles: 14,
                    byzantine_fraction: frac,
                    ..base(quick)
                };
                cfg.orch.redundancy = redundancy;
                cfg.orch.max_candidates = redundancy + 2;
                let r = run_scenario(cfg);
                done += r.completion_rate;
                p95 = f64::max(p95, r.latency_p95_ms);
                bad += r.invalid_results_accepted;
                submitted += r.tasks_submitted;
            }
            let n = seeds.len() as f64;
            table.row(vec![
                fmt_f(frac * 100.0),
                redundancy.to_string(),
                fmt_f(done / n * 100.0),
                format!("{bad} ({:.1}%)", bad as f64 / submitted.max(1) as f64 * 100.0),
                fmt_f(p95),
            ]);
        }
    }
    ExperimentResult::table_only(table)
}

fn synthetic_mesh(n: usize, now: SimTime) -> MeshDescriptor {
    let mut rng = SimRng::seed_from(77);
    let members = (0..n)
        .map(|i| {
            let mut catalog = DataCatalog::new(4);
            catalog.insert(DataType::OccupancyGrid, 800, QualityDescriptor::basic(now, 0.9, 1.0));
            MemberDescriptor {
                addr: NodeAddr::new(i as u64 + 10),
                pos: Vec2::new(rng.next_f64() * 400.0 - 200.0, rng.next_f64() * 400.0 - 200.0),
                velocity: Vec2::new(rng.next_f64() * 20.0 - 10.0, 0.0),
                link_quality: 0.5 + rng.next_f64() * 0.5,
                advert: NodeAdvert {
                    gas_rate: 500_000 + (rng.next_f64() * 3_500_000.0) as u64,
                    gas_backlog: (rng.next_f64() * 2_000_000.0) as u64,
                    mem_free_bytes: 1 << 30,
                    accepting: true,
                    catalog: catalog.summarize(),
                },
                info_age: SimDuration::from_millis(100),
            }
        })
        .collect();
    MeshDescriptor {
        generated_at: now,
        local: NodeAddr::new(1),
        local_pos: Vec2::ZERO,
        members,
        churn_per_sec: 0.5,
    }
}

/// F10 — orchestrator scalability: selection cost vs mesh size.
pub fn f10_scalability(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F10",
        "node-selection cost vs mesh size (wall clock)",
        &["members", "µs/decision", "candidates ranked"],
    );
    let sweep: &[usize] = if quick { &[10, 100] } else { &[10, 50, 100, 250, 500] };
    let now = SimTime::from_secs(1);
    let task = TaskSpec::new(TaskId::new(1), "t", Program::new(vec![airdnd_task::Instr::Halt], 0))
        .with_input(DataQuery::of_type(DataType::OccupancyGrid))
        .with_requirements(ResourceRequirements { gas: 1_000_000, ..Default::default() });
    let trust = ReputationTable::default();
    let cfg = OrchestratorConfig::default();
    for &n in sweep {
        let mesh = synthetic_mesh(n, now);
        let iterations = if quick { 200 } else { 1000 };
        let start = std::time::Instant::now();
        let mut ranked_total = 0usize;
        for _ in 0..iterations {
            let scores = score_candidates(&task, &mesh, Vec2::ZERO, &trust, &cfg, now);
            ranked_total += scores.len();
        }
        let micros = start.elapsed().as_micros() as f64 / iterations as f64;
        table.row(vec![
            n.to_string(),
            fmt_f(micros),
            fmt_f(ranked_total as f64 / iterations as f64),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// T11 — NFV chain survival under node departures.
pub fn t11_nfv(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "T11",
        "VNF migration & chain availability under churn",
        &["departure %/round", "migrations ok", "vnfs lost", "availability %"],
    );
    let rounds = if quick { 50 } else { 300 };
    let sweep: &[f64] = if quick { &[0.05, 0.2] } else { &[0.02, 0.05, 0.1, 0.2, 0.3] };
    for &p in sweep {
        let mut rng = SimRng::seed_from(111);
        let mut manager = NfManager::new(PlacementStrategy::BestFit);
        let mut next_node = 0u64;
        for _ in 0..12 {
            manager.register_node(next_node, ResourceCapacity::new(1_000, 1 << 30, 2_000_000));
            next_node += 1;
        }
        let chain = ServiceChain::new(
            "perception",
            vec![
                VnfDescriptor::of_kind("fw", VnfKind::Firewall),
                VnfDescriptor::of_kind("agg", VnfKind::Aggregator),
                VnfDescriptor::of_kind("fuse", VnfKind::PerceptionFuser),
            ],
        );
        let chain_id = manager.deploy_chain(&chain, SimTime::ZERO).expect("initial placement fits");
        let mut lost_total = 0usize;
        for round in 1..=rounds {
            let now = SimTime::from_secs(round as u64);
            // Random departures + one arrival to keep density stable.
            let hosts: Vec<u64> = manager.instances().map(|i| i.host).collect();
            for host in hosts {
                if rng.chance(p) {
                    let orphans = manager.node_departed(host);
                    let (_, lost) = manager.heal(&orphans, now);
                    lost_total += lost.len();
                }
            }
            manager.register_node(next_node, ResourceCapacity::new(1_000, 1 << 30, 2_000_000));
            next_node += 1;
            manager.refresh_chain_status(now);
        }
        let (ok, _failed) = manager.migration_counts();
        let availability = manager
            .chain_status(chain_id)
            .map_or(0.0, |s| s.availability(SimTime::from_secs(rounds as u64)));
        table.row(vec![
            fmt_f(p * 100.0),
            ok.to_string(),
            lost_total.to_string(),
            fmt_f(availability * 100.0),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// F12 — the asynchrony ablation: async vs synchronous rounds.
pub fn f12_async_ablation(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F12",
        "asynchronous orchestration vs synchronous rounds",
        &["mode", "alloc %", "mean s", "p95 s"],
    );
    let tasks = if quick { 300 } else { 2000 };
    let mut modes: Vec<(String, Box<dyn Assigner>)> = vec![
        ("async (airdnd)".to_owned(), Box::new(ScoreAssigner)),
    ];
    let periods: &[u64] = if quick { &[250, 1000] } else { &[100, 250, 500, 1000] };
    for &ms in periods {
        modes.push((
            format!("sync {ms} ms"),
            Box::new(SyncRoundAssigner::new(SimDuration::from_millis(ms))),
        ));
    }
    for (label, mechanism) in &mut modes {
        let stats = market_sim(mechanism.as_mut(), 112, 20, tasks);
        table.row(vec![
            label.clone(),
            fmt_f(stats.allocated_fraction * 100.0),
            fmt_f(stats.mean_completion_s),
            fmt_f(stats.p95_completion_s),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// Every experiment, in EXPERIMENTS.md order.
pub fn all(quick: bool) -> Vec<(&'static str, ExperimentResult)> {
    vec![
        ("f1", f1_mesh_dynamics(quick)),
        ("f2", f2_data_transfer(quick)),
        ("f3", f3_latency_cdf(quick)),
        ("f4", f4_coverage(quick)),
        ("t5", t5_selection_ablation(quick)),
        ("t6", t6_allocators(quick)),
        ("f7", f7_churn(quick)),
        ("f8", f8_utilization(quick)),
        ("t9", t9_trust(quick)),
        ("f10", f10_scalability(quick)),
        ("t11", t11_nfv(quick)),
        ("f12", f12_async_ablation(quick)),
    ]
}
