//! Legacy per-experiment entry points, one per table/figure in
//! `EXPERIMENTS.md`.
//!
//! Every function is a thin delegate into the unified typed registry in
//! [`crate::workloads`] — the single source of truth for grids, runners,
//! metrics and tables. Nothing here rolls its own sweep loop; each
//! experiment is a [`airdnd_harness::Workload`] executed through the
//! generic harness (worker pool, aggregation, sharding). DESIGN.md §4
//! maps each experiment to the paper claim it tests.
//!
//! Sweep-backed delegates run their grid serially (`threads = 1`):
//! parallelism belongs to the caller — `run_experiments --threads N`
//! parallelizes *across* experiments, the `sweep` binary *within* one —
//! so pools never nest and `--threads` limits stay honest.

use crate::report::ExperimentResult;
use crate::workloads::run_named;

pub use crate::workloads::market::{market_sim, MarketStats};

/// F1 — mesh formation & dissolution vs density (Model 1 dynamicity).
pub fn f1_mesh_dynamics(quick: bool) -> ExperimentResult {
    run_named("f1", quick, 1)
}

/// F2 — data transferred per perception view (the minimization claim).
pub fn f2_data_transfer(quick: bool) -> ExperimentResult {
    run_named("f2", quick, 1)
}

/// F3 — end-to-end latency CDF: mesh vs cellular cloud.
pub fn f3_latency_cdf(quick: bool) -> ExperimentResult {
    run_named("f3", quick, 1)
}

/// F4 — looking-around-the-corner coverage vs cooperating vehicles.
pub fn f4_coverage(quick: bool) -> ExperimentResult {
    run_named("f4", quick, 1)
}

/// T5 — RQ1 ablation over a `SelectionWeights` axis.
pub fn t5_selection_ablation(quick: bool) -> ExperimentResult {
    run_named("t5", quick, 1)
}

/// T6 — allocation-mechanism comparison on an identical synthetic market.
pub fn t6_allocators(quick: bool) -> ExperimentResult {
    run_named("t6", quick, 1)
}

/// F7 — churn resilience: completion vs vehicle speed.
pub fn f7_churn(quick: bool) -> ExperimentResult {
    run_named("f7", quick, 1)
}

/// F8 — excess-resource utilization vs offered load (the Airbnb claim).
pub fn f8_utilization(quick: bool) -> ExperimentResult {
    run_named("f8", quick, 1)
}

/// T9 — RQ3: integrity under byzantine executors.
pub fn t9_trust(quick: bool) -> ExperimentResult {
    run_named("t9", quick, 1)
}

/// F10 — orchestrator scalability: selection cost vs mesh size.
pub fn f10_scalability(quick: bool) -> ExperimentResult {
    run_named("f10", quick, 1)
}

/// T11 — NFV chain survival under node departures.
pub fn t11_nfv(quick: bool) -> ExperimentResult {
    run_named("t11", quick, 1)
}

/// F12 — the asynchrony ablation: async vs synchronous rounds.
pub fn f12_async_ablation(quick: bool) -> ExperimentResult {
    run_named("f12", quick, 1)
}

/// Every experiment, executed sequentially in EXPERIMENTS.md order.
pub fn all(quick: bool) -> Vec<(&'static str, ExperimentResult)> {
    crate::workloads::registry()
        .into_iter()
        .map(|workload| {
            let name = workload.name();
            (name, run_named(name, quick, 1))
        })
        .collect()
}
