//! One module per experiment in EXPERIMENTS.md.
//!
//! Every function takes `quick` (small, CI-sized runs) and returns an
//! [`ExperimentResult`]. DESIGN.md §4 maps each experiment to the paper
//! claim it tests.

mod market;

use crate::report::{fmt_f, ExperimentResult, Table};
use airdnd_baselines::{
    Assigner, CodedAssigner, DoubleAuctionAssigner, GreedyComputeAssigner, RandomAssigner,
    ScoreAssigner, SmartContractAssigner, SyncRoundAssigner,
};
use airdnd_core::{score_candidates, OrchestratorConfig, SelectionWeights};
use airdnd_data::{DataCatalog, DataQuery, DataType, QualityDescriptor};
use airdnd_geo::Vec2;
use airdnd_mesh::{MemberDescriptor, MeshDescriptor, NodeAdvert};
use airdnd_nfv::{
    NfManager, PlacementStrategy, ResourceCapacity, ServiceChain, VnfDescriptor, VnfKind,
};
use airdnd_radio::NodeAddr;
use airdnd_scenario::{run_scenario, ScenarioConfig, Strategy};
use airdnd_sim::{SimDuration, SimRng, SimTime};
use airdnd_task::{Program, ResourceRequirements, TaskId, TaskSpec};
use airdnd_trust::ReputationTable;
use serde_json::json;

pub use market::market_sim;

fn base(quick: bool) -> ScenarioConfig {
    ScenarioConfig {
        duration: if quick {
            SimDuration::from_secs(15)
        } else {
            SimDuration::from_secs(60)
        },
        ..Default::default()
    }
}

/// F1 — mesh formation & dissolution vs density (Model 1 dynamicity).
///
/// Declared as a harness sweep over fleet density (see [`crate::sweeps`]).
/// Sweep-backed experiments run their grid serially (`threads = 1`):
/// parallelism belongs to the caller — `run_experiments --threads N`
/// parallelizes *across* experiments, the `sweep` binary *within* one —
/// so pools never nest and `--threads` limits stay honest.
pub fn f1_mesh_dynamics(quick: bool) -> ExperimentResult {
    crate::sweeps::run_named("f1", quick, 1)
}

/// F2 — data transferred per perception view (the minimization claim).
///
/// Declared as a harness sweep over fleet size × strategy (see
/// [`crate::sweeps`]); the `sweep` binary exposes the same grid with
/// explicit thread control.
pub fn f2_data_transfer(quick: bool) -> ExperimentResult {
    crate::sweeps::run_named("f2", quick, 1)
}

/// F3 — end-to-end latency CDF: mesh vs cellular cloud.
pub fn f3_latency_cdf(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F3",
        "task latency: AirDnD mesh vs cellular cloud",
        &[
            "strategy", "done %", "mean ms", "p50 ms", "p95 ms", "max ms",
        ],
    );
    let strategies = [
        Strategy::Airdnd,
        Strategy::Cloud { fiveg: true },
        Strategy::Cloud { fiveg: false },
    ];
    let mut series = Vec::new();
    for strategy in strategies {
        let r = run_scenario(ScenarioConfig {
            seed: 103,
            vehicles: 12,
            strategy,
            ..base(quick)
        });
        table.row(vec![
            r.strategy.clone(),
            fmt_f(r.completion_rate * 100.0),
            fmt_f(r.latency_mean_ms),
            fmt_f(r.latency_p50_ms),
            fmt_f(r.latency_p95_ms),
            fmt_f(r.latency_max_ms),
        ]);
        let cdf = airdnd_sim::stats::cdf_points(&r.latencies_ms, 40);
        series.push(json!({ "strategy": r.strategy, "cdf": cdf }));
    }
    ExperimentResult {
        table,
        series: json!(series),
    }
}

/// F4 — looking-around-the-corner coverage vs cooperating vehicles.
///
/// Declared as a harness sweep over fleet size × strategy (see
/// [`crate::sweeps`]).
pub fn f4_coverage(quick: bool) -> ExperimentResult {
    crate::sweeps::run_named("f4", quick, 1)
}

/// T5 — RQ1 ablation: which selection criteria matter.
pub fn t5_selection_ablation(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "T5",
        "node-selection feature ablation (RQ1)",
        &["weights", "done %", "p95 ms", "failed", "bad results"],
    );
    let variants: Vec<(&str, SelectionWeights)> = vec![
        ("full", SelectionWeights::default()),
        ("compute-only", SelectionWeights::compute_only()),
        (
            "no-link",
            SelectionWeights {
                link: 0.0,
                ..SelectionWeights::default()
            },
        ),
        (
            "no-trust",
            SelectionWeights {
                trust: 0.0,
                ..SelectionWeights::default()
            },
        ),
        (
            "no-in-range",
            SelectionWeights {
                in_range: 0.0,
                ..SelectionWeights::default()
            },
        ),
    ];
    let seeds: &[u64] = if quick {
        &[105, 205]
    } else {
        &[105, 205, 305, 405]
    };
    for (name, weights) in variants {
        let (mut done, mut p95, mut failed, mut bad, mut submitted) = (0.0, 0.0, 0u64, 0u64, 0u64);
        for &seed in seeds {
            let mut cfg = ScenarioConfig {
                seed,
                vehicles: 14,
                byzantine_fraction: 0.2,
                ..base(quick)
            };
            cfg.orch.weights = weights;
            cfg.orch.redundancy = 1;
            // Spot checks let reputations actually evolve, which is what
            // the trust weight consumes.
            cfg.orch.spot_check_probability = 0.25;
            let r = run_scenario(cfg);
            done += r.completion_rate;
            p95 = f64::max(p95, r.latency_p95_ms);
            failed += r.tasks_failed;
            bad += r.invalid_results_accepted;
            submitted += r.tasks_submitted;
        }
        let n = seeds.len() as f64;
        table.row(vec![
            name.to_owned(),
            fmt_f(done / n * 100.0),
            fmt_f(p95),
            failed.to_string(),
            format!(
                "{bad} ({:.1}%)",
                bad as f64 / submitted.max(1) as f64 * 100.0
            ),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// T6 — allocation-mechanism comparison on an identical synthetic market.
pub fn t6_allocators(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "T6",
        "allocator comparison (identical workload)",
        &[
            "mechanism",
            "alloc %",
            "mean s",
            "p95 s",
            "ctrl msgs/task",
            "fairness",
        ],
    );
    let tasks = if quick { 300 } else { 2000 };
    let mut mechanisms: Vec<Box<dyn Assigner>> = vec![
        Box::new(ScoreAssigner),
        Box::new(GreedyComputeAssigner),
        Box::new(RandomAssigner::new(SimRng::seed_from(61))),
        Box::new(DoubleAuctionAssigner::default()),
        Box::new(SmartContractAssigner::default()),
        Box::new(CodedAssigner::new(3, 2)),
    ];
    for mechanism in &mut mechanisms {
        let stats = market_sim(mechanism.as_mut(), 106, 20, tasks);
        table.row(vec![
            mechanism.name().to_owned(),
            fmt_f(stats.allocated_fraction * 100.0),
            fmt_f(stats.mean_completion_s),
            fmt_f(stats.p95_completion_s),
            fmt_f(stats.control_msgs_per_task),
            fmt_f(stats.fairness),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// F7 — churn resilience: completion vs vehicle speed.
///
/// Declared as a harness sweep over the speed limit (see [`crate::sweeps`]).
pub fn f7_churn(quick: bool) -> ExperimentResult {
    crate::sweeps::run_named("f7", quick, 1)
}

/// F8 — excess-resource utilization vs offered load (the Airbnb claim).
pub fn f8_utilization(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F8",
        "helper-ECU utilization vs offered load",
        &["task period ms", "done %", "helper util %", "p95 ms"],
    );
    let sweep: &[u32] = if quick { &[10, 3] } else { &[20, 10, 5, 3, 2] };
    for &every in sweep {
        let r = run_scenario(ScenarioConfig {
            seed: 108,
            vehicles: 10,
            task_every_ticks: every,
            task_compute_rounds: 600,
            ..base(quick)
        });
        table.row(vec![
            (every as u64 * 100).to_string(),
            fmt_f(r.completion_rate * 100.0),
            fmt_f(r.mean_executor_utilization * 100.0),
            fmt_f(r.latency_p95_ms),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// T9 — RQ3: integrity under byzantine executors.
///
/// Declared as a harness sweep over byzantine fraction × redundancy with
/// seed replicates per cell (see [`crate::sweeps`]).
pub fn t9_trust(quick: bool) -> ExperimentResult {
    crate::sweeps::run_named("t9", quick, 1)
}

fn synthetic_mesh(n: usize, now: SimTime) -> MeshDescriptor {
    let mut rng = SimRng::seed_from(77);
    let members = (0..n)
        .map(|i| {
            let mut catalog = DataCatalog::new(4);
            catalog.insert(
                DataType::OccupancyGrid,
                800,
                QualityDescriptor::basic(now, 0.9, 1.0),
            );
            MemberDescriptor {
                addr: NodeAddr::new(i as u64 + 10),
                pos: Vec2::new(
                    rng.next_f64() * 400.0 - 200.0,
                    rng.next_f64() * 400.0 - 200.0,
                ),
                velocity: Vec2::new(rng.next_f64() * 20.0 - 10.0, 0.0),
                link_quality: 0.5 + rng.next_f64() * 0.5,
                advert: NodeAdvert {
                    gas_rate: 500_000 + (rng.next_f64() * 3_500_000.0) as u64,
                    gas_backlog: (rng.next_f64() * 2_000_000.0) as u64,
                    mem_free_bytes: 1 << 30,
                    accepting: true,
                    catalog: catalog.summarize(),
                },
                info_age: SimDuration::from_millis(100),
            }
        })
        .collect();
    MeshDescriptor {
        generated_at: now,
        local: NodeAddr::new(1),
        local_pos: Vec2::ZERO,
        members,
        churn_per_sec: 0.5,
    }
}

/// F10 — orchestrator scalability: selection cost vs mesh size.
pub fn f10_scalability(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F10",
        "node-selection cost vs mesh size (wall clock)",
        &["members", "µs/decision", "candidates ranked"],
    );
    let sweep: &[usize] = if quick {
        &[10, 100]
    } else {
        &[10, 50, 100, 250, 500]
    };
    let now = SimTime::from_secs(1);
    let task = TaskSpec::new(
        TaskId::new(1),
        "t",
        Program::new(vec![airdnd_task::Instr::Halt], 0),
    )
    .with_input(DataQuery::of_type(DataType::OccupancyGrid))
    .with_requirements(ResourceRequirements {
        gas: 1_000_000,
        ..Default::default()
    });
    let trust = ReputationTable::default();
    let cfg = OrchestratorConfig::default();
    for &n in sweep {
        let mesh = synthetic_mesh(n, now);
        let iterations = if quick { 200 } else { 1000 };
        let start = std::time::Instant::now();
        let mut ranked_total = 0usize;
        for _ in 0..iterations {
            let scores = score_candidates(&task, &mesh, Vec2::ZERO, &trust, &cfg, now);
            ranked_total += scores.len();
        }
        let micros = start.elapsed().as_micros() as f64 / iterations as f64;
        table.row(vec![
            n.to_string(),
            fmt_f(micros),
            fmt_f(ranked_total as f64 / iterations as f64),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// T11 — NFV chain survival under node departures.
pub fn t11_nfv(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "T11",
        "VNF migration & chain availability under churn",
        &[
            "departure %/round",
            "migrations ok",
            "vnfs lost",
            "availability %",
        ],
    );
    let rounds = if quick { 50 } else { 300 };
    let sweep: &[f64] = if quick {
        &[0.05, 0.2]
    } else {
        &[0.02, 0.05, 0.1, 0.2, 0.3]
    };
    for &p in sweep {
        let mut rng = SimRng::seed_from(111);
        let mut manager = NfManager::new(PlacementStrategy::BestFit);
        let mut next_node = 0u64;
        for _ in 0..12 {
            manager.register_node(next_node, ResourceCapacity::new(1_000, 1 << 30, 2_000_000));
            next_node += 1;
        }
        let chain = ServiceChain::new(
            "perception",
            vec![
                VnfDescriptor::of_kind("fw", VnfKind::Firewall),
                VnfDescriptor::of_kind("agg", VnfKind::Aggregator),
                VnfDescriptor::of_kind("fuse", VnfKind::PerceptionFuser),
            ],
        );
        let chain_id = manager
            .deploy_chain(&chain, SimTime::ZERO)
            .expect("initial placement fits");
        let mut lost_total = 0usize;
        for round in 1..=rounds {
            let now = SimTime::from_secs(round as u64);
            // Random departures + one arrival to keep density stable.
            let hosts: Vec<u64> = manager.instances().map(|i| i.host).collect();
            for host in hosts {
                if rng.chance(p) {
                    let orphans = manager.node_departed(host);
                    let (_, lost) = manager.heal(&orphans, now);
                    lost_total += lost.len();
                }
            }
            manager.register_node(next_node, ResourceCapacity::new(1_000, 1 << 30, 2_000_000));
            next_node += 1;
            manager.refresh_chain_status(now);
        }
        let (ok, _failed) = manager.migration_counts();
        let availability = manager
            .chain_status(chain_id)
            .map_or(0.0, |s| s.availability(SimTime::from_secs(rounds as u64)));
        table.row(vec![
            fmt_f(p * 100.0),
            ok.to_string(),
            lost_total.to_string(),
            fmt_f(availability * 100.0),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// F12 — the asynchrony ablation: async vs synchronous rounds.
pub fn f12_async_ablation(quick: bool) -> ExperimentResult {
    let mut table = Table::new(
        "F12",
        "asynchronous orchestration vs synchronous rounds",
        &["mode", "alloc %", "mean s", "p95 s"],
    );
    let tasks = if quick { 300 } else { 2000 };
    let mut modes: Vec<(String, Box<dyn Assigner>)> =
        vec![("async (airdnd)".to_owned(), Box::new(ScoreAssigner))];
    let periods: &[u64] = if quick {
        &[250, 1000]
    } else {
        &[100, 250, 500, 1000]
    };
    for &ms in periods {
        modes.push((
            format!("sync {ms} ms"),
            Box::new(SyncRoundAssigner::new(SimDuration::from_millis(ms))),
        ));
    }
    for (label, mechanism) in &mut modes {
        let stats = market_sim(mechanism.as_mut(), 112, 20, tasks);
        table.row(vec![
            label.clone(),
            fmt_f(stats.allocated_fraction * 100.0),
            fmt_f(stats.mean_completion_s),
            fmt_f(stats.p95_completion_s),
        ]);
    }
    ExperimentResult::table_only(table)
}

/// An experiment entry point: `quick` in, rendered result out.
pub type ExperimentFn = fn(bool) -> ExperimentResult;

/// Every experiment as a named function pointer, in EXPERIMENTS.md order.
///
/// `run_experiments` farms these across the harness worker pool; results
/// print in this order regardless of completion order.
pub fn registry() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("f1", f1_mesh_dynamics as ExperimentFn),
        ("f2", f2_data_transfer),
        ("f3", f3_latency_cdf),
        ("f4", f4_coverage),
        ("t5", t5_selection_ablation),
        ("t6", t6_allocators),
        ("f7", f7_churn),
        ("f8", f8_utilization),
        ("t9", t9_trust),
        ("f10", f10_scalability),
        ("t11", t11_nfv),
        ("f12", f12_async_ablation),
    ]
}

/// Every experiment, executed sequentially in EXPERIMENTS.md order.
pub fn all(quick: bool) -> Vec<(&'static str, ExperimentResult)> {
    registry()
        .into_iter()
        .map(|(name, run)| (name, run(quick)))
        .collect()
}
