//! End-to-end tests of `sweep drive`: the distributed driver must produce
//! output **byte-identical** to a single-process `--threads 1` run — the
//! tables on stdout and the JSON/CSV report artifacts alike — through
//! shard crashes (`--inject-fail`), torn half-written artifacts, stale
//! fingerprints, and resume. These spawn the real `sweep` binary, so the
//! whole child-process protocol is under test.

use airdnd_harness::{DriveState, ShardStatus};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("airdnd-drive-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let output = cmd.output().expect("sweep binary runs");
    assert!(
        output.status.success(),
        "sweep failed: {}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

/// Single-process reference run: `--threads 1` into `dir`, returns stdout.
fn single_process(dir: &Path, names: &[&str]) -> Vec<u8> {
    let mut cmd = sweep();
    cmd.args(["--quick", "--threads", "1", "--out"])
        .arg(dir)
        .args(names);
    run_ok(&mut cmd).stdout
}

fn drive_cmd(dir: &Path, shards: usize, names: &[&str]) -> Command {
    let mut cmd = sweep();
    cmd.arg("drive")
        .args([
            "--shards",
            &shards.to_string(),
            "--jobs",
            "2",
            "--quick",
            "--out",
        ])
        .arg(dir)
        .args(names);
    cmd
}

fn read(dir: &Path, file: &str) -> String {
    std::fs::read_to_string(dir.join(file))
        .unwrap_or_else(|e| panic!("cannot read {file} in {}: {e}", dir.display()))
}

fn state(dir: &Path) -> DriveState {
    DriveState::parse(&read(dir, "drive-state.json")).expect("drive state parses")
}

fn assert_reports_match(un: &Path, drv: &Path, names: &[&str]) {
    for name in names {
        assert_eq!(
            read(un, &format!("{name}.json")),
            read(drv, &format!("{name}.json")),
            "{name}.json must be byte-identical"
        );
        assert_eq!(
            read(un, &format!("{name}.csv")),
            read(drv, &format!("{name}.csv")),
            "{name}.csv must be byte-identical"
        );
    }
}

/// The acceptance-criteria scenario: `drive --jobs 2` over 3 shards, with
/// one shard killed mid-run on its first attempt, retried, and merged —
/// byte-identical to the unsharded single-threaded run, for a scenario
/// workload (f2) and a market workload (t6) in the same drive.
#[test]
fn drive_with_injected_crash_matches_single_process_byte_for_byte() {
    let names = &["f2", "t6"];
    let un = temp_dir("crash-un");
    let drv = temp_dir("crash-drv");
    let expected_stdout = single_process(&un, names);

    let out = run_ok(drive_cmd(&drv, 3, names).args(["--retries", "2", "--inject-fail", "1:1"]));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout),
        "driven stdout must match the single-process run"
    );
    assert_reports_match(&un, &drv, names);

    // The injected crash really happened: shard 1 needed a retry.
    let st = state(&drv);
    assert_eq!(st.shard_count, 3);
    assert_eq!(st.shards[1].status, ShardStatus::Done { attempts: 2 });
    assert_eq!(st.shards[0].status, ShardStatus::Done { attempts: 1 });
    // And the crash left a log trail behind.
    assert!(drv
        .join("drive-logs")
        .join("shard1of3.attempt0.log")
        .exists());

    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
}

/// Resume: re-running a completed drive relaunches nothing. Proven by
/// injecting a first-attempt crash into *every* shard with a zero retry
/// budget — the drive can only succeed if all shards are skipped.
#[test]
fn resumed_drive_skips_all_completed_shards() {
    let names = &["t6"];
    let un = temp_dir("resume-un");
    let drv = temp_dir("resume-drv");
    let expected_stdout = single_process(&un, names);
    run_ok(&mut drive_cmd(&drv, 3, names));

    let out = run_ok(drive_cmd(&drv, 3, names).args([
        "--retries",
        "0",
        "--inject-fail",
        "0:0",
        "--inject-fail",
        "1:0",
        "--inject-fail",
        "2:0",
    ]));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout),
        "resumed drive must re-emit the identical merge"
    );
    let st = state(&drv);
    for entry in &st.shards {
        assert_eq!(
            entry.status,
            ShardStatus::Done { attempts: 0 },
            "shard {} must be resumed, not re-run",
            entry.index
        );
    }
    assert_reports_match(&un, &drv, names);
    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
}

/// A torn, half-written artifact (here: a shard that died mid-write via
/// `--inject-torn`, leaving truncated JSON) must be detected, discarded
/// and re-run — never merged.
#[test]
fn torn_artifact_is_detected_and_rerun() {
    let names = &["t6"];
    let un = temp_dir("torn-un");
    let drv = temp_dir("torn-drv");
    let expected_stdout = single_process(&un, names);

    // Shard 2's first attempt leaves a truncated artifact and exits
    // nonzero; the drive must discard it and retry.
    let out = run_ok(drive_cmd(&drv, 3, names).args(["--retries", "1", "--inject-torn", "2"]));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout)
    );
    assert_eq!(
        state(&drv).shards[2].status,
        ShardStatus::Done { attempts: 2 }
    );
    assert_reports_match(&un, &drv, names);

    // Second flavour: corruption at rest. Truncate a finished artifact to
    // half its bytes and resume — only that shard may re-run.
    let artifact = drv.join("t6.shard1of3.json");
    let text = std::fs::read_to_string(&artifact).expect("artifact exists");
    std::fs::write(&artifact, &text.as_bytes()[..text.len() / 2]).expect("can truncate");
    let out = run_ok(&mut drive_cmd(&drv, 3, names));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout)
    );
    let st = state(&drv);
    assert_eq!(st.shards[0].status, ShardStatus::Done { attempts: 0 });
    assert_eq!(
        st.shards[1].status,
        ShardStatus::Done { attempts: 1 },
        "the torn shard must have been re-run"
    );
    assert_eq!(st.shards[2].status, ShardStatus::Done { attempts: 0 });
    assert_reports_match(&un, &drv, names);

    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
}

/// An artifact whose fingerprint no longer matches the grid — the sweep
/// definition changed since the shard ran — is stale: resume must discard
/// and re-run it rather than merge it.
#[test]
fn stale_fingerprint_invalidates_a_completed_shard() {
    let names = &["t6"];
    let un = temp_dir("stale-un");
    let drv = temp_dir("stale-drv");
    let expected_stdout = single_process(&un, names);
    run_ok(&mut drive_cmd(&drv, 3, names));

    // Rewrite shard 0's fingerprint in place: valid JSON, wrong grid stamp.
    let artifact = drv.join("t6.shard0of3.json");
    let text = std::fs::read_to_string(&artifact).expect("artifact exists");
    let fp = state(&drv).fingerprints[0].clone();
    assert!(
        text.contains(&fp),
        "artifact must carry the grid fingerprint"
    );
    std::fs::write(&artifact, text.replace(&fp, "00000000deadbeef")).expect("can tamper");

    let out = run_ok(&mut drive_cmd(&drv, 3, names));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout)
    );
    let st = state(&drv);
    assert_eq!(
        st.shards[0].status,
        ShardStatus::Done { attempts: 1 },
        "the stale shard must have been re-run"
    );
    assert_eq!(st.shards[1].status, ShardStatus::Done { attempts: 0 });
    assert_reports_match(&un, &drv, names);

    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
}

/// Changing `--shards` over the same output directory must not poison the
/// merge: artifacts from the abandoned split are purged, the new split
/// runs from scratch, and the result is still byte-identical.
#[test]
fn changing_the_shard_count_over_the_same_dir_reruns_cleanly() {
    let names = &["t6"];
    let un = temp_dir("resplit-un");
    let drv = temp_dir("resplit-drv");
    let expected_stdout = single_process(&un, names);
    run_ok(&mut drive_cmd(&drv, 4, names));
    assert!(drv.join("t6.shard3of4.json").exists());

    let out = run_ok(&mut drive_cmd(&drv, 3, names));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout),
        "the re-split drive must still match the single-process run"
    );
    assert!(
        !drv.join("t6.shard3of4.json").exists(),
        "artifacts from the abandoned 4-way split must be purged"
    );
    let st = state(&drv);
    assert_eq!(st.shard_count, 3);
    assert!(st
        .shards
        .iter()
        .all(|s| s.status == ShardStatus::Done { attempts: 1 }));
    assert_reports_match(&un, &drv, names);
    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
}

/// A shard that keeps dying past its retry budget fails the whole drive
/// with a nonzero exit, a Failed entry in the state manifest, and no
/// merged report.
#[test]
fn exhausted_retries_fail_the_drive() {
    let names = &["t6"];
    let drv = temp_dir("exhaust");
    let output = drive_cmd(&drv, 3, names)
        .args(["--retries", "0", "--inject-fail", "0:0", "--jobs", "1"])
        .env("AIRDND_SWEEP_FAIL_AFTER", "0") // env spelling: every attempt dies
        .output()
        .expect("sweep binary runs");
    assert!(
        !output.status.success(),
        "a permanently failed shard must fail the drive"
    );
    let st = state(&drv);
    assert!(
        matches!(st.shards[0].status, ShardStatus::Failed { attempts: 1, .. }),
        "{:?}",
        st.shards[0].status
    );
    assert!(
        !drv.join("t6.json").exists(),
        "no merged report may exist after a failed drive"
    );
    let _ = std::fs::remove_dir_all(&drv);
}
