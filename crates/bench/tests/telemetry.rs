//! Non-perturbation pins: telemetry must be free-floating observation,
//! never an input. Running a workload with full telemetry (bounded event
//! rings *and* phase profiling) must produce a report byte-identical to
//! the plain run — otherwise "debug it with tracing on" and "reproduce
//! the artifact" silently diverge. F2 pins the scenario-engine path and
//! T6 the market path; together they cover both `run_scenario` and
//! `market_sim` instrumentation.

use airdnd_bench::workloads::market::{market_sim, market_sim_observed, t6};
use airdnd_bench::workloads::scenario::f2;
use airdnd_scenario::{
    run_scenario, run_scenario_observed, EventCategory, RunTelemetry, TelemetryOptions,
};

/// Events bounded tight enough that rings demonstrably overflow in quick
/// runs — eviction must be as invisible to the report as recording is.
const TIGHT: usize = 64;

fn full() -> TelemetryOptions {
    TelemetryOptions {
        events: Some(65_536),
        profile: true,
    }
}

#[test]
fn f2_reports_are_byte_identical_with_telemetry_on() {
    let manifest = (f2().spec)(true).manifest();
    let mut saw_events = false;
    for plan in &manifest.runs {
        let plain = serde_json::to_string(&run_scenario(plan.config)).expect("serializes");
        let (report, telemetry) = run_scenario_observed(plan.config, full());
        let observed = serde_json::to_string(&report).expect("serializes");
        assert_eq!(
            plain, observed,
            "telemetry must not perturb {}: labels {:?}",
            plan.run_index, plan.labels
        );
        saw_events |= !telemetry.events.events().is_empty();
    }
    assert!(saw_events, "the observed runs must actually record events");
}

#[test]
fn f2_reports_survive_ring_overflow_unchanged() {
    let manifest = (f2().spec)(true).manifest();
    let plan = &manifest.runs[0];
    let plain = serde_json::to_string(&run_scenario(plan.config)).expect("serializes");
    let (report, telemetry) = run_scenario_observed(plan.config, TelemetryOptions::events(TIGHT));
    assert!(
        telemetry.events.dropped_total() > 0,
        "a {TIGHT}-entry ring must overflow on a quick run"
    );
    assert_eq!(
        plain,
        serde_json::to_string(&report).expect("serializes"),
        "ring eviction must not perturb the report"
    );
}

#[test]
fn t6_reports_are_byte_identical_with_telemetry_on() {
    let manifest = (t6().spec)(true).manifest();
    let mut saw_events = false;
    for plan in &manifest.runs {
        let cfg = &plan.config;
        let mut plain_mech = cfg.mechanism.build();
        let plain = serde_json::to_string(&market_sim(
            plain_mech.as_mut(),
            cfg.seed,
            cfg.candidates,
            cfg.tasks,
        ))
        .expect("serializes");
        let mut observed_mech = cfg.mechanism.build();
        let mut telemetry = RunTelemetry::with(full());
        let observed = serde_json::to_string(&market_sim_observed(
            observed_mech.as_mut(),
            cfg.seed,
            cfg.candidates,
            cfg.tasks,
            &mut telemetry,
        ))
        .expect("serializes");
        assert_eq!(
            plain, observed,
            "telemetry must not perturb t6: labels {:?}",
            plan.labels
        );
        saw_events |= telemetry
            .events
            .query()
            .category(EventCategory::Task)
            .exists();
    }
    assert!(
        saw_events,
        "the observed market runs must record task events"
    );
}
