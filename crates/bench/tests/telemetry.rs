//! Non-perturbation pins: telemetry must be free-floating observation,
//! never an input. Running a workload with full telemetry (bounded event
//! rings, phase profiling *and* causal span recording) must produce a
//! report byte-identical to the plain run — otherwise "debug it with
//! tracing on" and "reproduce the artifact" silently diverge. F2 pins
//! the scenario-engine path and T6 the market path; together they cover
//! both `run_scenario` and `market_sim` instrumentation.

use airdnd_bench::workloads::market::{market_sim, market_sim_observed, t6};
use airdnd_bench::workloads::scenario::f2;
use airdnd_scenario::{
    extract, run_scenario, run_scenario_observed, validate_spans, EventCategory, RunTelemetry,
    SpanKind, SpanStatus, TelemetryOptions,
};

/// Events bounded tight enough that rings demonstrably overflow in quick
/// runs — eviction must be as invisible to the report as recording is.
const TIGHT: usize = 64;

fn full() -> TelemetryOptions {
    TelemetryOptions {
        events: Some(65_536),
        profile: true,
        spans: true,
    }
}

#[test]
fn f2_reports_are_byte_identical_with_telemetry_on() {
    let manifest = (f2().spec)(true).manifest();
    let mut saw_events = false;
    let mut saw_spans = false;
    for plan in &manifest.runs {
        let plain = serde_json::to_string(&run_scenario(plan.config)).expect("serializes");
        let (report, telemetry) = run_scenario_observed(plan.config, full());
        let observed = serde_json::to_string(&report).expect("serializes");
        assert_eq!(
            plain, observed,
            "telemetry must not perturb {}: labels {:?}",
            plan.run_index, plan.labels
        );
        saw_events |= !telemetry.events.events().is_empty();
        saw_spans |= !telemetry.spans.is_empty();
    }
    assert!(saw_events, "the observed runs must actually record events");
    assert!(saw_spans, "the observed runs must actually record spans");
}

#[test]
fn f2_reports_survive_ring_overflow_unchanged() {
    let manifest = (f2().spec)(true).manifest();
    let plan = &manifest.runs[0];
    let plain = serde_json::to_string(&run_scenario(plan.config)).expect("serializes");
    let (report, telemetry) =
        run_scenario_observed(plan.config, TelemetryOptions::events(TIGHT).with_spans());
    assert!(
        telemetry.events.dropped_total() > 0,
        "a {TIGHT}-entry ring must overflow on a quick run"
    );
    assert_eq!(
        plain,
        serde_json::to_string(&report).expect("serializes"),
        "ring eviction (with spans recording) must not perturb the report"
    );
}

/// The recorded span trees are well-formed on a real engine run, and the
/// span-tree extractor's stage decomposition sums exactly to each
/// completed query's root span duration — the `sweep explain` contract,
/// held on actual protocol traffic rather than synthetic interleavings.
#[test]
fn f2_span_trees_decompose_end_to_end_latency() {
    let manifest = (f2().spec)(true).manifest();
    let mut decomposed = 0usize;
    let mut offloaded = 0usize;
    for plan in &manifest.runs {
        let (_, telemetry) =
            run_scenario_observed(plan.config, TelemetryOptions::default().with_spans());
        let spans = telemetry.spans.spans();
        validate_spans(spans).expect("engine-produced span log is well-formed");
        for root in spans
            .iter()
            .filter(|s| s.kind == SpanKind::Query && s.status == SpanStatus::Closed)
        {
            let budget =
                extract(spans, root.task).expect("every completed query yields a stage budget");
            assert_eq!(
                budget.stages_total_us(),
                budget.total_us,
                "stages partition task {}",
                root.task
            );
            assert_eq!(
                budget.total_us,
                root.duration_us(),
                "budget total equals the root span duration for task {}",
                root.task
            );
            decomposed += 1;
            if budget.radio_us > 0 || budget.discover_us > 0 {
                offloaded += 1;
            }
        }
    }
    assert!(decomposed > 0, "quick F2 completes queries to decompose");
    assert!(
        offloaded > 0,
        "at least one query crossed the radio (offloaded path exercised)"
    );
}

#[test]
fn t6_reports_are_byte_identical_with_telemetry_on() {
    let manifest = (t6().spec)(true).manifest();
    let mut saw_events = false;
    for plan in &manifest.runs {
        let cfg = &plan.config;
        let mut plain_mech = cfg.mechanism.build();
        let plain = serde_json::to_string(&market_sim(
            plain_mech.as_mut(),
            cfg.seed,
            cfg.candidates,
            cfg.tasks,
        ))
        .expect("serializes");
        let mut observed_mech = cfg.mechanism.build();
        let mut telemetry = RunTelemetry::with(full());
        let observed = serde_json::to_string(&market_sim_observed(
            observed_mech.as_mut(),
            cfg.seed,
            cfg.candidates,
            cfg.tasks,
            &mut telemetry,
        ))
        .expect("serializes");
        assert_eq!(
            plain, observed,
            "telemetry must not perturb t6: labels {:?}",
            plan.labels
        );
        saw_events |= telemetry
            .events
            .query()
            .category(EventCategory::Task)
            .exists();
    }
    assert!(
        saw_events,
        "the observed market runs must record task events"
    );
}
