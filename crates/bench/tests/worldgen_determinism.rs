//! Determinism of the generated-world workloads through the harness: the
//! same-seed generated world must yield byte-identical artifacts across
//! thread counts and shard splits — world generation happens *inside*
//! each run, so scheduling and process placement must not leak into it.

use airdnd_bench::workloads;
use airdnd_harness::{parse_shard, render_csv, render_json, render_shard, Shard};

/// `threads = 1` and `threads = 4` produce byte-identical tables and
/// JSON/CSV artifacts for both generated workloads.
#[test]
fn generated_sweeps_are_thread_count_invariant() {
    for name in ["g1", "g2", "g3", "g4"] {
        let workload = workloads::find(name).expect("registered");
        let seq = workload.execute(true, 1, &mut |_| {});
        let par = workload.execute(true, 4, &mut |_| {});
        assert_eq!(
            seq.result.table.render(),
            par.result.table.render(),
            "{name}: table differs across thread counts"
        );
        assert_eq!(
            render_json(&seq.aggregate),
            render_json(&par.aggregate),
            "{name}: JSON artifact differs across thread counts"
        );
        assert_eq!(
            render_csv(&seq.aggregate),
            render_csv(&par.aggregate),
            "{name}: CSV artifact differs across thread counts"
        );
    }
}

/// A 2-way shard split, serialized through the JSON artifact boundary and
/// merged in reverse order, reproduces the unsharded run byte for byte —
/// generated worlds (G1), churn schedules (G3) and extra-ego assignments
/// (G4) all survive process hops because they are generated *inside* each
/// run from the config seed.
#[test]
fn generated_sweep_shards_merge_byte_identically() {
    for name in ["g1", "g3", "g4"] {
        let workload = workloads::find(name).expect("registered");
        let unsharded = workload.execute(true, 2, &mut |_| {});
        let mut artifacts = Vec::new();
        for index in 0..2 {
            let artifact = workload.execute_shard(true, 2, Shard::new(index, 2), &mut |_| {});
            artifacts.push(parse_shard(&render_shard(&artifact)).expect("artifact round-trips"));
        }
        artifacts.reverse();
        let merged = workload
            .merge_shards(true, &artifacts)
            .expect("shards merge");
        assert_eq!(
            unsharded.result.table.render(),
            merged.result.table.render(),
            "{name}: table differs across the shard boundary"
        );
        assert_eq!(
            render_json(&unsharded.aggregate),
            render_json(&merged.aggregate),
            "{name}: JSON artifact differs across the shard boundary"
        );
        assert_eq!(
            render_csv(&unsharded.aggregate),
            render_csv(&merged.aggregate),
            "{name}: CSV artifact differs across the shard boundary"
        );
    }
}
