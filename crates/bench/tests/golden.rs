//! Golden-file conformance tests for sweep artifacts: the quick-mode
//! JSON + CSV reports (and rendered table) of one scenario workload (F2)
//! and one market workload (T6) are committed under `tests/golden/` and
//! diffed against regenerated output. Any accidental format drift in
//! `harness::report` — field order, float formatting, CSV quoting, table
//! alignment — fails loudly here instead of silently invalidating every
//! downstream consumer of the artifacts.
//!
//! Deliberate format changes are blessed by re-recording:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test -p airdnd-bench --test golden
//! ```

use airdnd_bench::workloads;
use airdnd_harness::{render_csv, render_json};
use std::path::PathBuf;

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

fn check(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("can create");
        std::fs::write(&path, actual).expect("can record golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); record it with \
             GOLDEN_REGEN=1 cargo test -p airdnd-bench --test golden",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{file} drifted from the committed golden copy — if the change is \
         deliberate, re-record with GOLDEN_REGEN=1"
    );
}

fn check_workload(name: &str) {
    let workload = workloads::find(name).expect("workload registered");
    let output = workload.execute(true, 0, &mut |_| {});
    check(
        &format!("{name}.quick.json"),
        &render_json(&output.aggregate),
    );
    check(&format!("{name}.quick.csv"), &render_csv(&output.aggregate));
    check(
        &format!("{name}.quick.table.txt"),
        &output.result.table.render(),
    );
}

/// F2, the scenario-workload representative: bytes/view grid over
/// strategies, including JSON plot series aggregation.
#[test]
fn f2_quick_artifacts_match_golden() {
    check_workload("f2");
}

/// T6, the market-workload representative: the mechanism axis through
/// `market_sim`, including the new ±95 replicate-CI table column.
#[test]
fn t6_quick_artifacts_match_golden() {
    check_workload("t6");
}

/// G1, the generated-world representative: strategy × family × density
/// over procedurally generated maps with derived occlusion grids.
#[test]
fn g1_quick_artifacts_match_golden() {
    check_workload("g1");
}

/// G2, the churn × demand representative: generated grid with parked
/// anchors under varying query patterns.
#[test]
fn g2_quick_artifacts_match_golden() {
    check_workload("g2");
}

/// G3, the lifecycle representative: seed-driven spawn/despawn schedules
/// applied through the engine at tick boundaries (including the
/// radio-partitioning bridge family).
#[test]
fn g3_quick_artifacts_match_golden() {
    check_workload("g3");
}

/// G4, the multi-ego representative: concurrent query origins with
/// per-ego derived hidden-region grids.
#[test]
fn g4_quick_artifacts_match_golden() {
    check_workload("g4");
}

/// G5, the city-scale representative: the composite city family with
/// fleet size and ego count scaling together.
#[test]
fn g5_quick_artifacts_match_golden() {
    check_workload("g5");
}
