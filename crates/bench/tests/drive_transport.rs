//! End-to-end tests of `sweep drive --hosts N`: the multi-host transport
//! under injected host faults — a host lost mid-shard, a network
//! partition cutting the coordinator off right at artifact-fetch time, a
//! host dying between validate and spawn — must recover by fencing and
//! reassigning shards to surviving hosts, and the merged report must stay
//! **byte-identical** to the single-process `--threads 1` run. Also pins
//! the unified "artifact absent = artifact invalid" validator outcome
//! (a zero-exit shard that wrote nothing is a failure, not Done) and
//! resume-after-a-killed-drive over the recorded host assignments.

use airdnd_harness::{DriveState, ShardStatus};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "airdnd-drive-transport-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let output = cmd.output().expect("sweep binary runs");
    assert!(
        output.status.success(),
        "sweep failed: {}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

/// Single-process reference run: `--threads 1` into `dir`, returns stdout.
fn single_process(dir: &Path, names: &[&str]) -> Vec<u8> {
    let mut cmd = sweep();
    cmd.args(["--quick", "--threads", "1", "--out"])
        .arg(dir)
        .args(names);
    run_ok(&mut cmd).stdout
}

fn drive_cmd(dir: &Path, shards: usize, hosts: usize, names: &[&str]) -> Command {
    let mut cmd = sweep();
    cmd.arg("drive")
        .args([
            "--shards",
            &shards.to_string(),
            "--hosts",
            &hosts.to_string(),
            "--jobs",
            "2",
            "--quick",
            "--out",
        ])
        .arg(dir)
        .args(names);
    cmd
}

fn read(dir: &Path, file: &str) -> String {
    std::fs::read_to_string(dir.join(file))
        .unwrap_or_else(|e| panic!("cannot read {file} in {}: {e}", dir.display()))
}

fn state(dir: &Path) -> DriveState {
    DriveState::parse(&read(dir, "drive-state.json")).expect("drive state parses")
}

fn assert_reports_match(un: &Path, drv: &Path, names: &[&str]) {
    for name in names {
        assert_eq!(
            read(un, &format!("{name}.json")),
            read(drv, &format!("{name}.json")),
            "{name}.json must be byte-identical"
        );
        assert_eq!(
            read(un, &format!("{name}.csv")),
            read(drv, &format!("{name}.csv")),
            "{name}.csv must be byte-identical"
        );
    }
}

/// A host dying mid-shard: its shard is fenced and reassigned to a
/// surviving host, the host is recorded lost, and the merge is
/// byte-identical to the single-process run.
#[test]
fn lost_host_mid_shard_reassigns_and_merges_identically() {
    let names = &["t6"];
    let un = temp_dir("lost-un");
    let drv = temp_dir("lost-drv");
    let expected_stdout = single_process(&un, names);

    let out = run_ok(drive_cmd(&drv, 3, 3, names).args(["--inject-lost-host", "1"]));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout),
        "faulted multi-host stdout must match the single-process run"
    );
    assert_reports_match(&un, &drv, names);

    let st = state(&drv);
    assert_eq!(st.hosts.len(), 3);
    assert!(st.hosts[1].lost, "host 1 must be recorded lost");
    assert!(!st.hosts[0].lost);
    assert!(st
        .shards
        .iter()
        .all(|s| matches!(s.status, ShardStatus::Done { .. })));
    // The shard stranded on host 1 was reassigned: its assignment history
    // starts on host 1 and ends on a survivor.
    let stranded: Vec<_> = st
        .shards
        .iter()
        .filter(|s| s.assignments.first() == Some(&1))
        .collect();
    assert!(
        !stranded.is_empty(),
        "some shard must have started on host 1"
    );
    for shard in &stranded {
        assert_ne!(
            shard.assignments.last(),
            Some(&1),
            "shard {} must have finished on a surviving host ({:?})",
            shard.index,
            shard.assignments
        );
    }
    assert!(
        st.events.iter().any(|e| e == "host 1 lost"),
        "the host loss must be in the event history: {:?}",
        st.events
    );
    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
}

/// A partition isolating two hosts from the coordinator exactly when the
/// first artifact fetch would happen: executions on both hosts are fenced
/// after the heartbeat deadline, reassigned, the partition heals, and the
/// merge is still byte-identical.
#[test]
fn partition_during_artifact_fetch_recovers_byte_identically() {
    let names = &["t6"];
    let un = temp_dir("part-un");
    let drv = temp_dir("part-drv");
    let expected_stdout = single_process(&un, names);

    let out = run_ok(drive_cmd(&drv, 3, 3, names).args(["--inject-partition", "0:2"]));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout)
    );
    assert_reports_match(&un, &drv, names);

    let st = state(&drv);
    // A partition is not a death: both hosts must end the drive alive.
    assert!(st.hosts.iter().all(|h| !h.lost));
    assert!(
        st.events.iter().any(|e| e.contains("unreachable")),
        "the partition must be in the event history: {:?}",
        st.events
    );
    assert!(
        st.events.iter().any(|e| e.contains("reassigned")),
        "the deadline must have forced a reassignment: {:?}",
        st.events
    );
    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
}

/// A host dead *between validate and spawn*: the spawn is refused, the
/// host is marked lost without consuming the shard's retry budget, and
/// the shard runs elsewhere.
#[test]
fn host_death_between_validate_and_spawn_reroutes_the_shard() {
    let names = &["t6"];
    let un = temp_dir("spawn-death-un");
    let drv = temp_dir("spawn-death-drv");
    let expected_stdout = single_process(&un, names);

    // --retries 0: only host-fault handling (which has its own budget)
    // can save the shard that hits the dead host.
    let out =
        run_ok(drive_cmd(&drv, 3, 3, names).args(["--retries", "0", "--inject-spawn-death", "2"]));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout)
    );
    assert_reports_match(&un, &drv, names);

    let st = state(&drv);
    assert!(st.hosts[2].lost, "host 2 must be recorded lost");
    assert!(
        st.shards.iter().all(|s| !s.assignments.contains(&2)),
        "a refused spawn is not an assignment: {:?}",
        st.shards.iter().map(|s| &s.assignments).collect::<Vec<_>>()
    );
    assert!(st
        .shards
        .iter()
        .all(|s| matches!(s.status, ShardStatus::Done { .. })));
    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
}

/// The CI scenario: lost host *and* partition in one drive, two workloads
/// (a scenario sweep and a market sweep) — all three hosts faulted in
/// some way, still byte-identical.
#[test]
fn combined_lost_host_and_partition_still_merge_byte_identically() {
    let names = &["f2", "t6"];
    let un = temp_dir("combined-un");
    let drv = temp_dir("combined-drv");
    let expected_stdout = single_process(&un, names);

    let out = run_ok(drive_cmd(&drv, 4, 3, names).args([
        "--inject-lost-host",
        "1",
        "--inject-partition",
        "0:2",
    ]));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout)
    );
    assert_reports_match(&un, &drv, names);
    let st = state(&drv);
    assert!(st.hosts[1].lost);
    assert!(!st.hosts[0].lost && !st.hosts[2].lost);
    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
}

/// Regression for the unified validator outcome: a shard child that exits
/// 0 without writing any artifact (`--inject-skip`) must count as a
/// failed attempt — retried when budget remains, never merged as Done.
#[test]
fn zero_exit_without_artifact_is_a_failure_not_done() {
    let names = &["t6"];
    let un = temp_dir("skip-un");
    let drv = temp_dir("skip-drv");
    let expected_stdout = single_process(&un, names);

    // With a retry budget the drive recovers: attempt 1 lies, attempt 2
    // delivers.
    let out = run_ok(drive_cmd(&drv, 3, 1, names).args(["--retries", "1", "--inject-skip", "1"]));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout)
    );
    assert_reports_match(&un, &drv, names);
    let st = state(&drv);
    assert_eq!(
        st.shards[1].status,
        ShardStatus::Done { attempts: 2 },
        "the lying first attempt must have been caught and retried"
    );

    // Without a retry budget the drive must FAIL — under the old
    // conflated validator a zero exit with nothing on disk could slip
    // through as Done.
    let drv2 = temp_dir("skip-fail-drv");
    let output = drive_cmd(&drv2, 3, 1, names)
        .args(["--retries", "0", "--inject-skip", "1"])
        .output()
        .expect("sweep binary runs");
    assert!(
        !output.status.success(),
        "a zero-exit shard with no artifact must fail the drive"
    );
    let st = state(&drv2);
    assert!(
        matches!(st.shards[1].status, ShardStatus::Failed { attempts: 1, .. }),
        "{:?}",
        st.shards[1].status
    );
    assert!(
        !drv2.join("t6.json").exists(),
        "no merged report may exist after a failed drive"
    );
    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
    let _ = std::fs::remove_dir_all(&drv2);
}

/// Killing a whole multi-host drive partway (a shard fails permanently →
/// nonzero exit) leaves a state file with the host assignments; a clean
/// re-drive picks it up, resumes every completed shard (attempts 0), and
/// re-runs only the failed one — byte-identical in the end.
#[test]
fn killed_multi_host_drive_resumes_from_recorded_assignments() {
    let names = &["t6"];
    let un = temp_dir("kill-resume-un");
    let drv = temp_dir("kill-resume-drv");
    let expected_stdout = single_process(&un, names);

    // First drive: shard 0's only attempt crashes, no retry budget — the
    // drive dies with shard 0 Failed and the others Done.
    let output = drive_cmd(&drv, 3, 3, names)
        .args(["--retries", "0", "--inject-fail", "0:0"])
        .output()
        .expect("sweep binary runs");
    assert!(!output.status.success(), "the first drive must fail");
    let st = state(&drv);
    assert!(matches!(st.shards[0].status, ShardStatus::Failed { .. }));
    assert_eq!(st.hosts.len(), 3);
    for shard in &st.shards {
        assert!(
            !shard.assignments.is_empty(),
            "every shard's host assignments must be recorded for resume"
        );
    }
    let done_before: Vec<usize> = st
        .shards
        .iter()
        .filter(|s| matches!(s.status, ShardStatus::Done { .. }))
        .map(|s| s.index)
        .collect();
    assert!(!done_before.is_empty(), "some shards must have completed");

    // Clean re-drive over the same out dir: completed shards resume with
    // zero launches, only the failed shard re-runs.
    let out = run_ok(&mut drive_cmd(&drv, 3, 3, names));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&expected_stdout)
    );
    assert_reports_match(&un, &drv, names);
    let st = state(&drv);
    for index in done_before {
        assert_eq!(
            st.shards[index].status,
            ShardStatus::Done { attempts: 0 },
            "shard {index} was complete and must resume, not re-run"
        );
    }
    assert_eq!(st.shards[0].status, ShardStatus::Done { attempts: 1 });
    let _ = std::fs::remove_dir_all(&un);
    let _ = std::fs::remove_dir_all(&drv);
}
