//! Ready-made radio profiles: V2V mesh and cellular uplink.
//!
//! [`dsrc`] parameterizes the V2V mesh path (802.11p-like: short access
//! delays, a few hundred metres of range, shared spectrum). [`CellularLink`]
//! models the alternative the paper argues against — hauling data over
//! LTE/5G to a centralized cloud: high per-link bandwidth but a
//! core-network round trip on every exchange, plus a shared uplink that
//! saturates when many vehicles push raw sensor data simultaneously.

use crate::channel::ChannelModel;
use crate::mac::MacParams;
use airdnd_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// 802.11p/DSRC-like V2V profile: `(channel, mac)`.
pub fn dsrc() -> (ChannelModel, MacParams) {
    (
        ChannelModel {
            tx_power_dbm: 23.0,
            path_loss_exponent: 2.75,
            reference_loss_db: 40.0,
            shadowing_sigma_db: 3.0,
            noise_floor_dbm: -99.0,
            obstacle_loss_db: 15.0,
        },
        MacParams {
            bitrate_bps: 6_000_000,
            slot: SimDuration::from_micros(13),
            difs: SimDuration::from_micros(58),
            cw_min: 15,
            cw_max: 1023,
            max_attempts: 4,
            header_bytes: 36,
            // Defer indefinitely by default (the historical model, and
            // the right call for bulk unicast with seconds of airtime);
            // saturation-prone scenarios cap this to a CAM-style frame
            // lifetime via `RadioMedium::set_max_queue_delay`.
            max_queue_delay: None,
        },
    )
}

/// Parameters of a cellular connection to a cloud region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellularParams {
    /// Uplink capacity shared by all vehicles in the cell, bits/s.
    pub uplink_bps: u64,
    /// Downlink capacity, bits/s.
    pub downlink_bps: u64,
    /// One-way latency radio→core→cloud (RAN + core + internet), per
    /// direction.
    pub one_way_latency: SimDuration,
    /// Per-message protocol overhead, bytes.
    pub header_bytes: u64,
}

impl CellularParams {
    /// LTE-like profile: 75 Mbps shared uplink, 35 ms one-way to the cloud.
    pub fn lte() -> Self {
        CellularParams {
            uplink_bps: 75_000_000,
            downlink_bps: 150_000_000,
            one_way_latency: SimDuration::from_millis(35),
            header_bytes: 60,
        }
    }

    /// 5G-like profile: 400 Mbps shared uplink, 12 ms one-way (edge core).
    pub fn fiveg() -> Self {
        CellularParams {
            uplink_bps: 400_000_000,
            downlink_bps: 800_000_000,
            one_way_latency: SimDuration::from_millis(12),
            header_bytes: 60,
        }
    }
}

/// A shared cellular link to the cloud with FIFO queueing per direction.
///
/// ```
/// use airdnd_radio::{CellularLink, CellularParams};
/// use airdnd_sim::SimTime;
///
/// let mut link = CellularLink::new(CellularParams::fiveg());
/// let (arrival, _bytes) = link.upload(SimTime::ZERO, 1_000_000);
/// assert!(arrival > SimTime::from_millis(12), "pays core latency");
/// ```
#[derive(Clone, Debug)]
pub struct CellularLink {
    params: CellularParams,
    uplink_busy_until: SimTime,
    downlink_busy_until: SimTime,
    total_bytes: u64,
}

impl CellularLink {
    /// Creates an idle link.
    pub fn new(params: CellularParams) -> Self {
        CellularLink {
            params,
            uplink_busy_until: SimTime::ZERO,
            downlink_busy_until: SimTime::ZERO,
            total_bytes: 0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CellularParams {
        &self.params
    }

    /// Total bytes ever carried (both directions).
    pub fn bytes_total(&self) -> u64 {
        self.total_bytes
    }

    fn serialize_on(
        busy_until: &mut SimTime,
        now: SimTime,
        bytes: u64,
        bps: u64,
        header: u64,
    ) -> (SimTime, u64) {
        let wire_bytes = bytes + header;
        let tx = SimDuration::from_nanos(wire_bytes.saturating_mul(8_000_000_000) / bps.max(1));
        let start = (*busy_until).max(now);
        let end = start + tx;
        *busy_until = end;
        (end, wire_bytes)
    }

    /// Uploads `bytes` starting at `now`; returns `(arrival_at_cloud,
    /// wire_bytes)`. Queues behind earlier uploads (shared uplink).
    pub fn upload(&mut self, now: SimTime, bytes: u64) -> (SimTime, u64) {
        let (end, wire) = Self::serialize_on(
            &mut self.uplink_busy_until,
            now,
            bytes,
            self.params.uplink_bps,
            self.params.header_bytes,
        );
        self.total_bytes += wire;
        (end + self.params.one_way_latency, wire)
    }

    /// Downloads `bytes` starting at `now` (cloud side); returns
    /// `(arrival_at_vehicle, wire_bytes)`.
    pub fn download(&mut self, now: SimTime, bytes: u64) -> (SimTime, u64) {
        let (end, wire) = Self::serialize_on(
            &mut self.downlink_busy_until,
            now,
            bytes,
            self.params.downlink_bps,
            self.params.header_bytes,
        );
        self.total_bytes += wire;
        (end + self.params.one_way_latency, wire)
    }

    /// Round trip: upload a request of `up_bytes`, compute for
    /// `compute_time` in the cloud, download a response of `down_bytes`.
    /// Returns `(response_arrival, total_wire_bytes)`.
    pub fn round_trip(
        &mut self,
        now: SimTime,
        up_bytes: u64,
        compute_time: SimDuration,
        down_bytes: u64,
    ) -> (SimTime, u64) {
        let (at_cloud, up_wire) = self.upload(now, up_bytes);
        let (at_vehicle, down_wire) = self.download(at_cloud + compute_time, down_bytes);
        (at_vehicle, up_wire + down_wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsrc_profile_is_consistent() {
        let (channel, mac) = dsrc();
        // Nominal LOS range should land in the DSRC ballpark (a few 100 m).
        let r = channel.nominal_range(true);
        assert!((150.0..800.0).contains(&r), "nominal range {r}");
        assert_eq!(mac.bitrate_bps, 6_000_000);
    }

    #[test]
    fn upload_pays_serialization_and_latency() {
        let mut link = CellularLink::new(CellularParams::lte());
        // 7.5 MB at 75 Mbps = 0.8 s serialization + 35 ms latency.
        let (arrival, wire) = link.upload(SimTime::ZERO, 7_500_000);
        let expected = 8.0 * 7_500_060.0 / 75e6 + 0.035;
        assert!(
            (arrival.as_secs_f64() - expected).abs() < 1e-6,
            "arrival {arrival}"
        );
        assert_eq!(wire, 7_500_060);
    }

    #[test]
    fn uplink_queues_but_downlink_is_independent() {
        let mut link = CellularLink::new(CellularParams::lte());
        let (a1, _) = link.upload(SimTime::ZERO, 7_500_000);
        let (a2, _) = link.upload(SimTime::ZERO, 7_500_000);
        assert!(a2 > a1, "second upload queues behind the first");
        // A download issued at t=0 does not wait for the uploads.
        let (d, _) = link.download(SimTime::ZERO, 1_000);
        assert!(d < a1);
    }

    #[test]
    fn round_trip_includes_both_directions_and_compute() {
        let mut link = CellularLink::new(CellularParams::fiveg());
        let compute = SimDuration::from_millis(50);
        let (resp, wire) = link.round_trip(SimTime::ZERO, 1_000_000, compute, 10_000);
        // Two one-way latencies + compute is a hard lower bound.
        assert!(resp > SimTime::from_millis(12 + 50 + 12));
        assert_eq!(wire, 1_000_060 + 10_060);
        assert_eq!(link.bytes_total(), wire);
    }

    #[test]
    fn fiveg_beats_lte_latency() {
        let mut lte = CellularLink::new(CellularParams::lte());
        let mut fg = CellularLink::new(CellularParams::fiveg());
        let (a, _) = lte.round_trip(SimTime::ZERO, 100_000, SimDuration::ZERO, 1_000);
        let (b, _) = fg.round_trip(SimTime::ZERO, 100_000, SimDuration::ZERO, 1_000);
        assert!(b < a);
    }
}
