//! Log-distance path-loss channel with shadowing and SNR-derived PER.
//!
//! Received power follows the standard log-distance model
//! `P_rx = P_tx − PL₀ − 10·n·log₁₀(d/d₀) − X_σ − L_obs`, where `X_σ` is
//! log-normal shadowing and `L_obs` penetration loss applied when the
//! line of sight is blocked. The bit-error rate uses the coherent-BPSK
//! approximation `BER ≈ ½·e^(−SNR/2)`, and the packet-error rate follows as
//! `PER = 1 − (1 − BER)^bits`. The absolute numbers are not calibrated to a
//! specific radio, but the *shape* — a sharp range cliff whose knee moves
//! with obstacle loss and frame size — is what the orchestration experiments
//! depend on.

use serde::{Deserialize, Serialize};

/// Parameters of the path-loss + PER model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Path-loss exponent `n` (2 free space, 2.7–3.5 urban).
    pub path_loss_exponent: f64,
    /// Reference path loss at 1 m, dB.
    pub reference_loss_db: f64,
    /// Log-normal shadowing standard deviation, dB.
    pub shadowing_sigma_db: f64,
    /// Thermal-noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// Extra penetration loss when line of sight is blocked, dB.
    pub obstacle_loss_db: f64,
}

impl Default for ChannelModel {
    /// The 802.11p/DSRC-like profile; see [`crate::profiles::dsrc`].
    fn default() -> Self {
        crate::profiles::dsrc().0
    }
}

impl ChannelModel {
    /// Mean received power at `distance` metres, dBm (before shadowing).
    ///
    /// Distances below 1 m are clamped to 1 m.
    pub fn mean_rx_power_dbm(&self, distance: f64, line_of_sight: bool) -> f64 {
        let d = distance.max(1.0);
        let pl = self.reference_loss_db + 10.0 * self.path_loss_exponent * d.log10();
        let obs = if line_of_sight {
            0.0
        } else {
            self.obstacle_loss_db
        };
        self.tx_power_dbm - pl - obs
    }

    /// Signal-to-noise ratio in dB for a given received power.
    pub fn snr_db(&self, rx_power_dbm: f64) -> f64 {
        rx_power_dbm - self.noise_floor_dbm
    }

    /// Packet-error rate for a frame of `bits` at the given SNR (dB).
    ///
    /// Monotone non-decreasing in frame size and non-increasing in SNR.
    pub fn per(&self, snr_db: f64, bits: u64) -> f64 {
        let snr = 10f64.powf(snr_db / 10.0);
        let ber = 0.5 * (-snr / 2.0).exp();
        let ok = (1.0 - ber).powf(bits as f64);
        (1.0 - ok).clamp(0.0, 1.0)
    }

    /// End-to-end PER at `distance` with a concrete shadowing draw
    /// (`shadow_db`, positive = deeper fade) for a frame of `bits`.
    pub fn per_at(&self, distance: f64, line_of_sight: bool, shadow_db: f64, bits: u64) -> f64 {
        let rx = self.mean_rx_power_dbm(distance, line_of_sight) - shadow_db;
        self.per(self.snr_db(rx), bits)
    }

    /// Approximate communication range: the distance where mean-SNR PER for
    /// a 256-byte frame crosses 50 % (bisection, no shadowing).
    pub fn nominal_range(&self, line_of_sight: bool) -> f64 {
        let bits = 256 * 8;
        let per_of = |d: f64| {
            let rx = self.mean_rx_power_dbm(d, line_of_sight);
            self.per(self.snr_db(rx), bits)
        };
        let (mut lo, mut hi) = (1.0, 100_000.0);
        if per_of(lo) > 0.5 {
            return 0.0;
        }
        if per_of(hi) < 0.5 {
            return hi;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if per_of(mid) < 0.5 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ChannelModel {
        ChannelModel {
            tx_power_dbm: 23.0,
            path_loss_exponent: 2.75,
            reference_loss_db: 47.0,
            shadowing_sigma_db: 3.0,
            noise_floor_dbm: -95.0,
            obstacle_loss_db: 15.0,
        }
    }

    #[test]
    fn power_decreases_with_distance() {
        let m = model();
        let p10 = m.mean_rx_power_dbm(10.0, true);
        let p100 = m.mean_rx_power_dbm(100.0, true);
        let p300 = m.mean_rx_power_dbm(300.0, true);
        assert!(p10 > p100 && p100 > p300);
        // Decade of distance = 10·n dB.
        assert!((p10 - p100 - 27.5).abs() < 1e-9);
    }

    #[test]
    fn sub_metre_distances_clamp() {
        let m = model();
        assert_eq!(
            m.mean_rx_power_dbm(0.0, true),
            m.mean_rx_power_dbm(1.0, true)
        );
    }

    #[test]
    fn obstacle_costs_fixed_loss() {
        let m = model();
        let los = m.mean_rx_power_dbm(50.0, true);
        let nlos = m.mean_rx_power_dbm(50.0, false);
        assert!((los - nlos - 15.0).abs() < 1e-12);
    }

    #[test]
    fn per_monotone_in_snr_and_size() {
        let m = model();
        assert!(m.per(30.0, 1000) < 1e-9, "high SNR ≈ lossless");
        assert!(m.per(-10.0, 1000) > 0.99, "negative SNR ≈ hopeless");
        let mut last = 0.0;
        for snr in (-10..=30).rev() {
            let p = m.per(snr as f64, 2048);
            assert!(p >= last - 1e-15, "PER must not decrease as SNR drops");
            last = p;
        }
        assert!(
            m.per(8.0, 16_000) >= m.per(8.0, 1_000),
            "bigger frames fail more"
        );
    }

    #[test]
    fn per_bounds() {
        let m = model();
        for snr in [-50.0, 0.0, 7.0, 50.0] {
            for bits in [1u64, 8_000, 1_000_000] {
                let p = m.per(snr, bits);
                assert!((0.0..=1.0).contains(&p), "per({snr},{bits}) = {p}");
            }
        }
    }

    #[test]
    fn nominal_range_is_plausible_and_shrinks_without_los() {
        let m = model();
        let los = m.nominal_range(true);
        let nlos = m.nominal_range(false);
        assert!(los > 100.0 && los < 2_000.0, "LOS range {los}");
        assert!(nlos < los, "NLOS {nlos} must be shorter than LOS {los}");
    }

    #[test]
    fn shadowing_draw_shifts_per() {
        let m = model();
        let d = m.nominal_range(true);
        let faded = m.per_at(d, true, 10.0, 2048);
        let boosted = m.per_at(d, true, -10.0, 2048);
        assert!(faded > 0.5 && boosted < 0.5);
    }
}
