//! The shared wireless medium: contention, loss, and delivery timing.
//!
//! [`RadioMedium`] is a passive service (no actor of its own): protocol
//! layers ask it *when* a frame would be delivered and *whether* it
//! survives, then schedule their own engine messages with the returned
//! delays. This keeps the radio independent of any particular message type
//! while still producing honest latency/loss/goodput behaviour:
//!
//! * **Contention** — transmissions carrier-sense a grid of airspace cells
//!   (`cs_range`-sized); a transmitter defers until its local airspace is
//!   free, then pays DIFS + slotted backoff. Spatially separated nodes
//!   reuse the spectrum, co-located ones serialize and collapse under load.
//! * **Loss** — per-frame PER from the [`ChannelModel`] with a fresh
//!   log-normal shadowing draw; unicast retries up to
//!   [`MacParams::max_attempts`], broadcast is send-once.
//! * **Accounting** — every call reports bytes put on the air, which the
//!   data-transfer experiments (F2) aggregate.
//!
//! Explicit hidden-terminal collisions are not modelled; contention and
//! SNR-based loss reproduce the load behaviour the experiments need (see
//! DESIGN.md §3).

use crate::channel::ChannelModel;
use crate::mac::MacParams;
use airdnd_engine::SpatialGrid;
use airdnd_geo::{ObstacleIndex, Vec2, World};
use airdnd_sim::{SimDuration, SimRng, SimTime};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Radio-level address of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeAddr(u64);

/// The broadcast address.
pub const BROADCAST: NodeAddr = NodeAddr(u64::MAX);

impl NodeAddr {
    /// Creates an address from a raw id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is `u64::MAX` (reserved for [`BROADCAST`]).
    pub fn new(id: u64) -> Self {
        assert_ne!(id, u64::MAX, "u64::MAX is the broadcast address");
        NodeAddr(id)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// `true` if this is the broadcast address.
    pub const fn is_broadcast(self) -> bool {
        self.0 == u64::MAX
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_broadcast() {
            write!(f, "radio:*")
        } else {
            write!(f, "radio:{}", self.0)
        }
    }
}

/// Result of a unicast transmission attempt sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The frame arrived at the destination at the given time.
    Delivered {
        /// Arrival time at the receiver.
        at: SimTime,
        /// Number of transmissions used (1 = first try).
        attempts: u32,
    },
    /// All attempts failed the channel draw.
    Lost {
        /// Number of transmissions used.
        attempts: u32,
    },
    /// Source or destination is not registered on the medium.
    Unreachable,
}

impl DeliveryOutcome {
    /// The arrival time if delivered.
    pub fn delivered_at(self) -> Option<SimTime> {
        match self {
            DeliveryOutcome::Delivered { at, .. } => Some(at),
            _ => None,
        }
    }
}

/// Airtime/byte accounting for one medium call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TxReport {
    /// Bytes put on the air (headers and retries included).
    pub bytes_on_air: u64,
    /// Total air occupancy caused by this call.
    pub airtime: SimDuration,
}

/// One broadcast delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastDelivery {
    /// The receiver.
    pub to: NodeAddr,
    /// Arrival time.
    pub at: SimTime,
}

/// The shared medium. See the module docs for the model.
#[derive(Clone, Debug)]
pub struct RadioMedium {
    channel: ChannelModel,
    mac: MacParams,
    /// Line-of-sight accelerator over the construction world's obstacles:
    /// the medium answers one LOS query per broadcast candidate per
    /// beacon, so on city-scale worlds this must be O(nearby obstacles),
    /// not O(all obstacles). The world's geometry is fixed for the
    /// medium's lifetime, so the index fully replaces it.
    los: ObstacleIndex,
    cs_range: f64,
    /// Node positions in a uniform-grid index (cells of `cs_range`), so
    /// broadcast candidate scans touch only nearby cells instead of the
    /// whole registry.
    positions: SpatialGrid<NodeAddr>,
    busy: BTreeMap<(i64, i64), SimTime>,
    rng: SimRng,
    total_bytes_on_air: u64,
    total_airtime: SimDuration,
    queue_drops: u64,
}

/// Speed of light, m/s (propagation delay).
const C: f64 = 299_792_458.0;

impl RadioMedium {
    /// Creates a medium.
    ///
    /// `cs_range` is the carrier-sense range in metres: transmitters within
    /// `cs_range` of each other contend for the same airspace.
    ///
    /// # Panics
    ///
    /// Panics if `cs_range` is not positive and finite.
    pub fn new(
        channel: ChannelModel,
        mac: MacParams,
        world: World,
        cs_range: f64,
        rng: SimRng,
    ) -> Self {
        assert!(
            cs_range.is_finite() && cs_range > 0.0,
            "carrier-sense range must be positive"
        );
        RadioMedium {
            channel,
            mac,
            los: ObstacleIndex::new(&world),
            cs_range,
            positions: SpatialGrid::new(cs_range),
            busy: BTreeMap::new(),
            rng,
            total_bytes_on_air: 0,
            total_airtime: SimDuration::ZERO,
            queue_drops: 0,
        }
    }

    /// A medium with V2V defaults over the given world.
    pub fn v2v(world: World, rng: SimRng) -> Self {
        let (channel, mac) = crate::profiles::dsrc();
        RadioMedium::new(channel, mac, world, 600.0, rng)
    }

    /// The channel model in use.
    pub fn channel(&self) -> &ChannelModel {
        &self.channel
    }

    /// The MAC parameters in use.
    pub fn mac(&self) -> &MacParams {
        &self.mac
    }

    /// Frames dropped at the MAC because the airspace was booked out past
    /// [`MacParams::max_queue_delay`] — the congestion-collapse signal.
    pub fn queue_drops(&self) -> u64 {
        self.queue_drops
    }

    /// Bounds (or unbounds, with `None`) the MAC transmit queue — see
    /// [`MacParams::max_queue_delay`]. Dense scenarios cap this near the
    /// beacon interval so overload sheds frames instead of accumulating
    /// an ever-later delivery backlog.
    pub fn set_max_queue_delay(&mut self, cap: Option<SimDuration>) {
        self.mac.max_queue_delay = cap;
    }

    /// Overrides the channel's through-obstacle penetration loss, dB.
    /// Worlds whose occluders are radio-opaque structures (tunnel shells,
    /// bridge decks) raise this far above the urban-building default so
    /// the obstacle genuinely partitions the mesh.
    pub fn set_obstacle_loss_db(&mut self, loss_db: f64) {
        self.channel.obstacle_loss_db = loss_db;
    }

    /// Registers or moves a node.
    pub fn set_position(&mut self, addr: NodeAddr, pos: Vec2) {
        assert!(
            !addr.is_broadcast(),
            "cannot position the broadcast address"
        );
        self.positions.insert(addr, pos);
    }

    /// Deregisters a node (frames to it become [`DeliveryOutcome::Unreachable`]).
    pub fn remove_node(&mut self, addr: NodeAddr) {
        self.positions.remove(addr);
    }

    /// Position of a node, if registered.
    pub fn position(&self, addr: NodeAddr) -> Option<Vec2> {
        self.positions.position(addr)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Registered nodes within `radius` of `center` (excluding none),
    /// in address order.
    pub fn nodes_in_range(&self, center: Vec2, radius: f64) -> Vec<NodeAddr> {
        let r2 = radius * radius;
        let mut candidates = Vec::new();
        self.positions
            .candidates_into(center, radius, &mut candidates);
        let mut out: Vec<NodeAddr> = candidates
            .into_iter()
            .filter(|(_, p)| p.distance_sq(center) <= r2)
            .map(|(a, _)| a)
            .collect();
        out.sort_unstable();
        out
    }

    /// Total bytes ever put on the air.
    pub fn bytes_on_air_total(&self) -> u64 {
        self.total_bytes_on_air
    }

    /// Total airtime ever occupied.
    pub fn airtime_total(&self) -> SimDuration {
        self.total_airtime
    }

    fn cell_of(&self, p: Vec2) -> (i64, i64) {
        (
            (p.x / self.cs_range).floor() as i64,
            (p.y / self.cs_range).floor() as i64,
        )
    }

    /// Earliest time the airspace around `pos` is free.
    fn airspace_free_at(&self, pos: Vec2) -> SimTime {
        let (cx, cy) = self.cell_of(pos);
        let mut free = SimTime::ZERO;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(&t) = self.busy.get(&(cx + dx, cy + dy)) {
                    free = free.max(t);
                }
            }
        }
        free
    }

    fn occupy_airspace(&mut self, pos: Vec2, until: SimTime) {
        let (cx, cy) = self.cell_of(pos);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let entry = self.busy.entry((cx + dx, cy + dy)).or_insert(SimTime::ZERO);
                *entry = (*entry).max(until);
            }
        }
    }

    /// One physical transmission: returns `(tx_end, frame_survives)` for a
    /// link of `distance` metres, and accounts airtime/bytes.
    fn transmit(
        &mut self,
        earliest: SimTime,
        src_pos: Vec2,
        payload_bytes: u64,
        attempt: u32,
        distance: f64,
        line_of_sight: bool,
    ) -> (SimTime, bool) {
        let cw = self.mac.contention_window(attempt);
        let slots = if cw == 0 {
            0
        } else {
            (self.rng.next_u64() % (cw as u64 + 1)) as u32
        };
        let access = self.mac.difs + self.mac.backoff(slots);
        let start = self.airspace_free_at(src_pos).max(earliest) + access;
        let airtime = self.mac.tx_time(payload_bytes);
        let end = start + airtime;
        self.occupy_airspace(src_pos, end);
        self.total_airtime += airtime;
        self.total_bytes_on_air += payload_bytes + self.mac.header_bytes;
        let shadow = self.rng.normal(0.0, self.channel.shadowing_sigma_db);
        let bits = (payload_bytes + self.mac.header_bytes) * 8;
        let per = self.channel.per_at(distance, line_of_sight, shadow, bits);
        let survives = !self.rng.chance(per);
        (end, survives)
    }

    /// Sends `payload_bytes` from `src` to `dst` with ARQ retries.
    ///
    /// Returns the outcome plus airtime/byte accounting. The returned
    /// delivery time includes queueing, contention, transmission and
    /// propagation.
    pub fn unicast(
        &mut self,
        now: SimTime,
        src: NodeAddr,
        dst: NodeAddr,
        payload_bytes: u64,
    ) -> (DeliveryOutcome, TxReport) {
        let (Some(src_pos), Some(dst_pos)) =
            (self.positions.position(src), self.positions.position(dst))
        else {
            return (DeliveryOutcome::Unreachable, TxReport::default());
        };
        // Bounded transmit queue (opt-in): saturated airspace drops the
        // frame at the MAC (before any RNG draw, so capless and
        // uncongested runs are bit-for-bit unchanged) instead of
        // deferring without limit.
        if let Some(cap) = self.mac.max_queue_delay {
            if self.airspace_free_at(src_pos).saturating_since(now) > cap {
                self.queue_drops += 1;
                return (DeliveryOutcome::Lost { attempts: 0 }, TxReport::default());
            }
        }
        let distance = src_pos.distance(dst_pos);
        let los = self.los.line_of_sight(src_pos, dst_pos);
        let airtime_before = self.total_airtime;
        let bytes_before = self.total_bytes_on_air;
        let mut cursor = now;
        let mut attempts = 0;
        let outcome = loop {
            let (end, ok) = self.transmit(cursor, src_pos, payload_bytes, attempts, distance, los);
            attempts += 1;
            if ok {
                let prop = SimDuration::from_secs_f64(distance / C);
                break DeliveryOutcome::Delivered {
                    at: end + prop,
                    attempts,
                };
            }
            if attempts >= self.mac.max_attempts {
                break DeliveryOutcome::Lost { attempts };
            }
            cursor = end;
        };
        let report = TxReport {
            bytes_on_air: self.total_bytes_on_air - bytes_before,
            airtime: self.total_airtime - airtime_before,
        };
        (outcome, report)
    }

    /// Broadcasts `payload_bytes` from `src`: one transmission, each
    /// registered neighbour independently survives or loses the frame.
    ///
    /// Receivers beyond `2 × nominal range` are skipped outright (their PER
    /// is indistinguishable from 1).
    pub fn broadcast(
        &mut self,
        now: SimTime,
        src: NodeAddr,
        payload_bytes: u64,
    ) -> (Vec<BroadcastDelivery>, TxReport) {
        let Some(src_pos) = self.positions.position(src) else {
            return (Vec::new(), TxReport::default());
        };
        // Bounded transmit queue (opt-in): a beacon that cannot reach
        // the air within `max_queue_delay` is superseded by the next
        // one, so the MAC drops it. Under sustained overload this caps
        // both the airspace backlog and every surviving frame's latency
        // — with unbounded deferral, both grow linearly for the rest of
        // the run and every delivered advert goes irreparably stale.
        // The check precedes all RNG draws: capless and uncongested
        // runs are bit-for-bit unchanged.
        if let Some(cap) = self.mac.max_queue_delay {
            if self.airspace_free_at(src_pos).saturating_since(now) > cap {
                self.queue_drops += 1;
                return (Vec::new(), TxReport::default());
            }
        }
        let airtime_before = self.total_airtime;
        let bytes_before = self.total_bytes_on_air;
        // Single transmission, no retries: pay access + airtime once.
        let cw = self.mac.contention_window(0);
        let slots = if cw == 0 {
            0
        } else {
            (self.rng.next_u64() % (cw as u64 + 1)) as u32
        };
        let access = self.mac.difs + self.mac.backoff(slots);
        let start = self.airspace_free_at(src_pos).max(now) + access;
        let airtime = self.mac.tx_time(payload_bytes);
        let end = start + airtime;
        self.occupy_airspace(src_pos, end);
        self.total_airtime += airtime;
        self.total_bytes_on_air += payload_bytes + self.mac.header_bytes;

        let horizon = 2.0 * self.channel.nominal_range(true);
        let bits = (payload_bytes + self.mac.header_bytes) * 8;
        // Grid cells overlapping the horizon circle, then the exact
        // historical predicate and address order — candidates, and
        // therefore every per-candidate RNG draw below, match the old
        // full-registry scan bit for bit.
        let mut candidates: Vec<(NodeAddr, Vec2)> = Vec::new();
        self.positions
            .candidates_into(src_pos, horizon, &mut candidates);
        candidates.retain(|&(a, p)| a != src && p.distance(src_pos) <= horizon);
        candidates.sort_unstable_by_key(|&(a, _)| a);
        let mut deliveries = Vec::new();
        for (addr, pos) in candidates {
            let distance = src_pos.distance(pos);
            let los = self.los.line_of_sight(src_pos, pos);
            let shadow = self.rng.normal(0.0, self.channel.shadowing_sigma_db);
            let per = self.channel.per_at(distance, los, shadow, bits);
            if !self.rng.chance(per) {
                let prop = SimDuration::from_secs_f64(distance / C);
                deliveries.push(BroadcastDelivery {
                    to: addr,
                    at: end + prop,
                });
            }
        }
        let report = TxReport {
            bytes_on_air: self.total_bytes_on_air - bytes_before,
            airtime: self.total_airtime - airtime_before,
        };
        (deliveries, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> RadioMedium {
        RadioMedium::v2v(World::new(), SimRng::seed_from(7))
    }

    /// Saturating the airspace must cap the backlog: once the local cell
    /// is booked out past `max_queue_delay`, further frames drop instead
    /// of queueing, so delivery latency stays bounded.
    #[test]
    fn saturated_airspace_drops_instead_of_deferring() {
        let mut m = medium();
        let cap = SimDuration::from_millis(100);
        m.set_max_queue_delay(Some(cap));
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        m.set_position(a, Vec2::ZERO);
        m.set_position(b, Vec2::new(20.0, 0.0));
        let airtime = m.mac().tx_time(10_000);
        let mut delivered_latest = SimTime::ZERO;
        let mut dropped = 0;
        // Offer far more airtime than one queue-delay's worth at t=0.
        for _ in 0..200 {
            let (deliveries, report) = m.broadcast(SimTime::ZERO, a, 10_000);
            if report.bytes_on_air == 0 {
                dropped += 1;
                assert!(deliveries.is_empty());
            }
            for d in deliveries {
                delivered_latest = delivered_latest.max(d.at);
            }
        }
        assert!(dropped > 0, "200 x {airtime} of load must exceed {cap}");
        assert_eq!(m.queue_drops(), dropped);
        // Every frame that did fly left within the queue bound (plus its
        // own access + airtime and a generous backoff allowance).
        let bound = SimTime::ZERO + cap + airtime + SimDuration::from_millis(15);
        assert!(
            delivered_latest <= bound,
            "latest delivery {delivered_latest} exceeds {bound}"
        );
        // Unicast obeys the same bound: with the airspace saturated at
        // t=0, a fresh unicast is dropped before any attempt.
        let (outcome, report) = m.unicast(SimTime::ZERO, a, b, 500);
        assert_eq!(outcome, DeliveryOutcome::Lost { attempts: 0 });
        assert_eq!(report.bytes_on_air, 0);
        // Once time passes the backlog, frames flow again.
        let later = SimTime::ZERO + cap + SimDuration::from_secs(1);
        let (outcome, _) = m.unicast(later, a, b, 500);
        assert!(outcome.delivered_at().is_some(), "{outcome:?}");
    }

    #[test]
    fn unicast_close_nodes_delivers_quickly() {
        let mut m = medium();
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        m.set_position(a, Vec2::ZERO);
        m.set_position(b, Vec2::new(20.0, 0.0));
        let (outcome, report) = m.unicast(SimTime::ZERO, a, b, 500);
        let at = outcome.delivered_at().expect("20 m link must deliver");
        assert!(at.as_millis_f64() < 5.0, "delivery took {at}");
        assert!(report.bytes_on_air >= 500);
        assert!(report.airtime > SimDuration::ZERO);
    }

    #[test]
    fn unicast_far_nodes_is_lost_after_retries() {
        let mut m = medium();
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        m.set_position(a, Vec2::ZERO);
        m.set_position(b, Vec2::new(50_000.0, 0.0));
        let (outcome, report) = m.unicast(SimTime::ZERO, a, b, 500);
        match outcome {
            DeliveryOutcome::Lost { attempts } => {
                assert_eq!(attempts, m.mac().max_attempts);
                // Retries each burn airtime.
                assert_eq!(
                    report.bytes_on_air,
                    attempts as u64 * (500 + m.mac().header_bytes)
                );
            }
            other => panic!("expected loss at 50 km, got {other:?}"),
        }
    }

    #[test]
    fn unknown_nodes_are_unreachable() {
        let mut m = medium();
        let a = NodeAddr::new(1);
        m.set_position(a, Vec2::ZERO);
        let (outcome, report) = m.unicast(SimTime::ZERO, a, NodeAddr::new(99), 100);
        assert_eq!(outcome, DeliveryOutcome::Unreachable);
        assert_eq!(report.bytes_on_air, 0);
        let (deliveries, _) = m.broadcast(SimTime::ZERO, NodeAddr::new(42), 100);
        assert!(deliveries.is_empty());
    }

    #[test]
    fn removed_node_becomes_unreachable() {
        let mut m = medium();
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        m.set_position(a, Vec2::ZERO);
        m.set_position(b, Vec2::new(10.0, 0.0));
        m.remove_node(b);
        let (outcome, _) = m.unicast(SimTime::ZERO, a, b, 100);
        assert_eq!(outcome, DeliveryOutcome::Unreachable);
    }

    #[test]
    fn broadcast_reaches_near_not_far() {
        let mut m = medium();
        let src = NodeAddr::new(1);
        m.set_position(src, Vec2::ZERO);
        m.set_position(NodeAddr::new(2), Vec2::new(30.0, 0.0));
        m.set_position(NodeAddr::new(3), Vec2::new(60.0, 0.0));
        m.set_position(NodeAddr::new(4), Vec2::new(100_000.0, 0.0));
        let (deliveries, report) = m.broadcast(SimTime::ZERO, src, 200);
        let receivers: Vec<u64> = deliveries.iter().map(|d| d.to.raw()).collect();
        assert!(
            receivers.contains(&2) && receivers.contains(&3),
            "got {receivers:?}"
        );
        assert!(!receivers.contains(&4));
        // Broadcast transmits once regardless of receiver count.
        assert_eq!(report.bytes_on_air, 200 + m.mac().header_bytes);
    }

    #[test]
    fn contention_serializes_colocated_transmitters() {
        let mut m = medium();
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        let c = NodeAddr::new(3);
        m.set_position(a, Vec2::ZERO);
        m.set_position(b, Vec2::new(10.0, 0.0));
        m.set_position(c, Vec2::new(20.0, 0.0));
        // Two back-to-back large transfers from the same spot at t=0.
        let (o1, _) = m.unicast(SimTime::ZERO, a, c, 10_000);
        let (o2, _) = m.unicast(SimTime::ZERO, b, c, 10_000);
        let t1 = o1.delivered_at().unwrap();
        let t2 = o2.delivered_at().unwrap();
        // The second must queue behind the first's airtime.
        let airtime = m.mac().tx_time(10_000);
        assert!(
            t2 >= t1 + airtime.saturating_sub(SimDuration::from_micros(1)),
            "t1={t1} t2={t2}"
        );
    }

    #[test]
    fn spatial_reuse_allows_distant_parallel_transmissions() {
        let mut m = medium();
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        let far_a = NodeAddr::new(3);
        let far_b = NodeAddr::new(4);
        m.set_position(a, Vec2::ZERO);
        m.set_position(b, Vec2::new(10.0, 0.0));
        m.set_position(far_a, Vec2::new(100_000.0, 0.0));
        m.set_position(far_b, Vec2::new(100_010.0, 0.0));
        let (o1, _) = m.unicast(SimTime::ZERO, a, b, 10_000);
        let (o2, _) = m.unicast(SimTime::ZERO, far_a, far_b, 10_000);
        let t1 = o1.delivered_at().unwrap();
        let t2 = o2.delivered_at().unwrap();
        // Far pair does not queue behind the near pair: both finish within
        // one airtime + max backoff of t=0.
        let bound = m.mac().tx_time(10_000)
            + m.mac().difs
            + m.mac().backoff(m.mac().contention_window(0))
            + SimDuration::from_micros(1);
        assert!(t1 <= SimTime::ZERO + bound);
        assert!(t2 <= SimTime::ZERO + bound, "far pair queued: {t2}");
    }

    #[test]
    fn occlusion_hurts_delivery() {
        // Wall between the two nodes: with 40 dB penetration loss the link
        // dies at a distance that works fine with LOS.
        let mut channel = crate::profiles::dsrc().0;
        channel.obstacle_loss_db = 60.0;
        let mac = crate::profiles::dsrc().1;
        let mut world = World::new();
        world.add_obstacle(airdnd_geo::Obstacle::Rect(
            airdnd_geo::Aabb::from_center_size(Vec2::new(100.0, 0.0), 5.0, 200.0),
        ));
        let mut m = RadioMedium::new(channel, mac, world, 600.0, SimRng::seed_from(3));
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        m.set_position(a, Vec2::ZERO);
        m.set_position(b, Vec2::new(200.0, 0.0));
        let mut lost = 0;
        for i in 0..20 {
            let (o, _) = m.unicast(SimTime::from_secs(i), a, b, 1000);
            if matches!(o, DeliveryOutcome::Lost { .. }) {
                lost += 1;
            }
        }
        assert!(lost > 10, "blocked link should mostly fail, lost {lost}/20");
    }

    #[test]
    fn accounting_accumulates() {
        let mut m = medium();
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        m.set_position(a, Vec2::ZERO);
        m.set_position(b, Vec2::new(10.0, 0.0));
        m.unicast(SimTime::ZERO, a, b, 1000);
        m.broadcast(SimTime::ZERO, a, 500);
        assert!(m.bytes_on_air_total() >= 1500);
        assert!(m.airtime_total() > SimDuration::ZERO);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed| {
            let mut m = RadioMedium::v2v(World::new(), SimRng::seed_from(seed));
            let a = NodeAddr::new(1);
            let b = NodeAddr::new(2);
            m.set_position(a, Vec2::ZERO);
            m.set_position(b, Vec2::new(150.0, 0.0));
            (0..50)
                .map(|i| m.unicast(SimTime::from_millis(i * 10), a, b, 800).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn nodes_in_range_filters_by_distance() {
        let mut m = medium();
        m.set_position(NodeAddr::new(1), Vec2::ZERO);
        m.set_position(NodeAddr::new(2), Vec2::new(100.0, 0.0));
        m.set_position(NodeAddr::new(3), Vec2::new(400.0, 0.0));
        let near = m.nodes_in_range(Vec2::ZERO, 150.0);
        assert_eq!(near.len(), 2);
    }
}
