//! # airdnd-radio — wireless substrate for the AirDnD mesh
//!
//! AirDnD's whole premise is that nodes *in radio range* can trade compute
//! without touching cellular infrastructure. This crate models both sides
//! of that comparison:
//!
//! * [`channel`] — log-distance path loss with shadowing and an
//!   SNR-derived packet-error rate; obstacles add penetration loss,
//! * [`mac`] — CSMA/CA-style timing (DIFS, slotted backoff, retries) and
//!   airtime accounting,
//! * [`medium`] — the shared broadcast medium: queueing/contention with
//!   spatial reuse, unicast with retries, broadcast beacons; every call
//!   reports bytes-on-air so experiments can account data transfer honestly,
//! * [`profiles`] — ready-made parameter sets: an 802.11p/DSRC-like V2V
//!   profile and an LTE/5G-like cellular uplink (with core-network RTT) used
//!   by the cloud-offload baseline.
//!
//! Real radios are replaced by these models per DESIGN.md §3: the
//! orchestration layer cares about latency, loss and goodput shapes, which
//! the models reproduce (range cliffs, contention collapse, the V2V vs
//! cellular RTT gap).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod mac;
pub mod medium;
pub mod profiles;

pub use channel::ChannelModel;
pub use mac::MacParams;
pub use medium::{DeliveryOutcome, NodeAddr, RadioMedium, TxReport, BROADCAST};
pub use profiles::{CellularLink, CellularParams};
