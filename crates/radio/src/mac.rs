//! MAC-layer timing: CSMA/CA-style access delay and airtime accounting.
//!
//! The medium applies DIFS + slotted binary-exponential backoff before each
//! transmission and serializes transmissions that share airspace. This
//! module holds the timing parameters and the pure timing arithmetic; the
//! contention state lives in [`crate::medium::RadioMedium`].

use airdnd_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// MAC timing and framing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacParams {
    /// PHY bitrate, bits per second.
    pub bitrate_bps: u64,
    /// Slot time.
    pub slot: SimDuration,
    /// DIFS — fixed wait before contention.
    pub difs: SimDuration,
    /// Minimum contention window (slots), power of two minus one.
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Maximum unicast (re)transmissions before giving up.
    pub max_attempts: u32,
    /// PHY + MAC header overhead added to every frame, bytes.
    pub header_bytes: u64,
    /// Maximum time a frame may wait for its local airspace to clear
    /// before the MAC drops it unsent; `None` defers indefinitely.
    /// Real CSMA stacks bound their transmit queue — a beacon held past
    /// its useful life is superseded by the next one — whereas unbounded
    /// deferral under sustained overload grows the backlog (and every
    /// queued frame's latency) without limit. Dense scenarios opt in;
    /// the default keeps the historical always-defer behaviour.
    pub max_queue_delay: Option<SimDuration>,
}

impl Default for MacParams {
    /// The 802.11p-like profile; see [`crate::profiles::dsrc`].
    fn default() -> Self {
        crate::profiles::dsrc().1
    }
}

impl MacParams {
    /// Time on air for a payload of `bytes` (headers included).
    pub fn tx_time(&self, bytes: u64) -> SimDuration {
        let bits = (bytes + self.header_bytes) * 8;
        let nanos = bits.saturating_mul(1_000_000_000) / self.bitrate_bps.max(1);
        SimDuration::from_nanos(nanos)
    }

    /// Contention window for the given retry attempt (0-based), slots.
    pub fn contention_window(&self, attempt: u32) -> u32 {
        let cw = (self.cw_min + 1).saturating_mul(1 << attempt.min(16));
        (cw - 1).min(self.cw_max)
    }

    /// Backoff duration for a drawn slot count.
    pub fn backoff(&self, slots: u32) -> SimDuration {
        self.slot * slots as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> MacParams {
        MacParams {
            bitrate_bps: 6_000_000,
            slot: SimDuration::from_micros(13),
            difs: SimDuration::from_micros(58),
            cw_min: 15,
            cw_max: 1023,
            max_attempts: 4,
            header_bytes: 36,
            max_queue_delay: None,
        }
    }

    #[test]
    fn tx_time_scales_with_size() {
        let m = mac();
        // (100 + 36) bytes * 8 = 1088 bits at 6 Mbps ≈ 181.33 µs
        // (truncated to whole nanoseconds).
        let t = m.tx_time(100);
        assert!((t.as_secs_f64() - 1088.0 / 6e6).abs() < 1e-9);
        assert!(m.tx_time(1000) > m.tx_time(100));
        // Zero payload still pays header airtime.
        assert!(m.tx_time(0) > SimDuration::ZERO);
    }

    #[test]
    fn contention_window_doubles_then_caps() {
        let m = mac();
        assert_eq!(m.contention_window(0), 15);
        assert_eq!(m.contention_window(1), 31);
        assert_eq!(m.contention_window(2), 63);
        assert_eq!(m.contention_window(10), 1023);
        // Huge attempt values must not overflow.
        assert_eq!(m.contention_window(40), 1023);
    }

    #[test]
    fn backoff_is_slots_times_slot_time() {
        let m = mac();
        assert_eq!(m.backoff(0), SimDuration::ZERO);
        assert_eq!(m.backoff(10), SimDuration::from_micros(130));
    }
}
