//! Property-based tests for the radio substrate.

use airdnd_geo::{Vec2, World};
use airdnd_radio::{profiles, NodeAddr, RadioMedium};
use airdnd_sim::{SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// PER is monotone non-decreasing in distance (mean channel, no
    /// shadowing draw).
    #[test]
    fn per_monotone_in_distance(d1 in 1.0f64..5000.0, d2 in 1.0f64..5000.0, bits in 8u64..100_000) {
        let (channel, _) = profiles::dsrc();
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let per_near = channel.per_at(near, true, 0.0, bits);
        let per_far = channel.per_at(far, true, 0.0, bits);
        prop_assert!(per_far >= per_near - 1e-12);
        prop_assert!((0.0..=1.0).contains(&per_near));
        prop_assert!((0.0..=1.0).contains(&per_far));
    }

    /// Losing line of sight never improves PER.
    #[test]
    fn occlusion_never_helps(d in 1.0f64..5000.0, bits in 8u64..100_000) {
        let (channel, _) = profiles::dsrc();
        let los = channel.per_at(d, true, 0.0, bits);
        let nlos = channel.per_at(d, false, 0.0, bits);
        prop_assert!(nlos >= los - 1e-12);
    }

    /// Bigger frames never fail less at the same SNR.
    #[test]
    fn per_monotone_in_frame_size(snr in -20.0f64..40.0, b1 in 8u64..50_000, b2 in 8u64..50_000) {
        let (channel, _) = profiles::dsrc();
        let (small, big) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(channel.per(snr, big) >= channel.per(snr, small) - 1e-12);
    }

    /// Airtime accounting: a unicast call adds at least the payload bytes
    /// to the medium's on-air counter and never moves time backwards.
    #[test]
    fn unicast_accounting_is_sane(
        seed in any::<u64>(),
        payload in 1u64..10_000,
        distance in 1.0f64..1_000.0,
    ) {
        let mut medium = RadioMedium::v2v(World::new(), SimRng::seed_from(seed));
        let a = NodeAddr::new(1);
        let b = NodeAddr::new(2);
        medium.set_position(a, Vec2::ZERO);
        medium.set_position(b, Vec2::new(distance, 0.0));
        let before = medium.bytes_on_air_total();
        let now = SimTime::from_millis(5);
        let (outcome, report) = medium.unicast(now, a, b, payload);
        prop_assert!(report.bytes_on_air >= payload);
        prop_assert_eq!(medium.bytes_on_air_total(), before + report.bytes_on_air);
        if let Some(at) = outcome.delivered_at() {
            prop_assert!(at > now, "delivery cannot precede transmission");
        }
    }

    /// Broadcast transmits exactly once regardless of the receiver count.
    #[test]
    fn broadcast_single_transmission(seed in any::<u64>(), receivers in 0usize..20) {
        let mut medium = RadioMedium::v2v(World::new(), SimRng::seed_from(seed));
        let src = NodeAddr::new(1);
        medium.set_position(src, Vec2::ZERO);
        for i in 0..receivers {
            medium.set_position(NodeAddr::new(i as u64 + 2), Vec2::new(20.0 + i as f64, 0.0));
        }
        let (deliveries, report) = medium.broadcast(SimTime::ZERO, src, 200);
        prop_assert_eq!(report.bytes_on_air, 200 + medium.mac().header_bytes);
        prop_assert!(deliveries.len() <= receivers);
    }
}
