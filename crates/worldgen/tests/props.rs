//! Property-based tests for worldgen invariants: for *any* parameters in
//! the supported ranges, generated road graphs must be connected and
//! route-able between every portal pair, lanes must never self-loop, IDM
//! vehicles on generated routes must stay physical, and generation must
//! be a pure function of the seed even under thread parallelism.

use airdnd_geo::{IdmParams, Mobility};
use airdnd_scenario::ScenarioConfig;
use airdnd_worldgen::{
    BridgeParams, ChurnProcess, FamilyKind, FleetProfile, GridParams, HighwayParams, RadialParams,
    RoundaboutParams,
};
use proptest::prelude::*;

/// Family recipes over the supported parameter ranges.
fn arb_family() -> impl Strategy<Value = FamilyKind> {
    prop_oneof![
        (2usize..6, 3usize..5, 0usize..3).prop_map(|(cols, rows, arterial_every)| {
            FamilyKind::Grid(GridParams {
                cols,
                rows,
                arterial_every,
                ..GridParams::default()
            })
        }),
        (3usize..7, 1usize..4).prop_map(|(arms, rings)| {
            FamilyKind::Radial(RadialParams {
                arms,
                rings,
                ..RadialParams::default()
            })
        }),
        (2usize..8, 1usize..3).prop_map(|(segments, ramp_every)| {
            FamilyKind::Highway(HighwayParams {
                segments: segments.max(ramp_every + 1),
                ramp_every,
                ..HighwayParams::default()
            })
        }),
        (4usize..7, 24.0f64..36.0).prop_map(|(arms, radius)| {
            FamilyKind::Roundabout(RoundaboutParams {
                arms,
                radius,
                ..RoundaboutParams::default()
            })
        }),
        (80.0f64..200.0, 60.0f64..200.0).prop_map(|(approach_len, span)| {
            FamilyKind::Bridge(BridgeParams {
                approach_len,
                span,
                ..BridgeParams::default()
            })
        }),
    ]
}

fn instance_of(kind: FamilyKind, seed: u64) -> airdnd_scenario::WorldInstance {
    let cfg = ScenarioConfig::default().seeded(seed);
    kind.instantiate(&cfg, &FleetProfile::default())
}

proptest! {
    /// Every generated graph is route-able between every pair of portals
    /// (spawn/goal nodes) — the invariant `Vehicle::fresh_route` leans on
    /// with its `expect`.
    #[test]
    fn portals_are_mutually_routable(kind in arb_family(), seed in 0u64..1_000) {
        let net = instance_of(kind, seed).stage.net;
        let arms = net.arm_count();
        prop_assert!(arms >= 2, "a map needs at least two portals");
        for a in 0..arms {
            for b in 0..arms {
                prop_assert!(
                    net.route(net.approach_node(a), net.exit_node(b)).is_some(),
                    "portal {a} cannot reach portal {b}"
                );
            }
        }
    }

    /// No generated lane is a self-loop, and every lane has positive
    /// length and a positive finite speed limit.
    #[test]
    fn lanes_are_physical(kind in arb_family(), seed in 0u64..1_000) {
        let net = instance_of(kind, seed).stage.net;
        for (from, to, length, speed) in net.lanes() {
            prop_assert_ne!(from, to, "self-loop lane at {:?}", from);
            prop_assert!(length > 0.0, "zero-length lane");
            prop_assert!(speed.is_finite() && speed > 0.0, "bad speed {speed}");
        }
    }

    /// An IDM vehicle driven over any generated route keeps a
    /// non-negative, bounded speed and never leaves the route's geometry.
    #[test]
    fn idm_stays_physical_on_generated_routes(
        kind in arb_family(),
        seed in 0u64..500,
        from in 0usize..64,
        to in 0usize..64,
    ) {
        let stage = instance_of(kind, seed).stage;
        let arms = stage.net.arm_count();
        let (from, to) = (from % arms, to % arms);
        let route = stage
            .net
            .route(stage.net.approach_node(from), stage.net.exit_node(to))
            .expect("portals are mutually routable");
        let mut bounds_min = route.points()[0];
        let mut bounds_max = route.points()[0];
        for &p in route.points() {
            bounds_min = bounds_min.min(p);
            bounds_max = bounds_max.max(p);
        }
        let top_speed = 30.0; // above every family's speed tiers
        let mut m = Mobility::route(route, 8.0, IdmParams::default());
        for _ in 0..600 {
            m.step(0.1);
            let state = m.state();
            prop_assert!(state.speed >= 0.0, "negative speed {}", state.speed);
            prop_assert!(state.speed <= top_speed, "runaway speed {}", state.speed);
            prop_assert!(state.pos.is_finite());
            prop_assert!(
                state.pos.x >= bounds_min.x - 1e-6
                    && state.pos.x <= bounds_max.x + 1e-6
                    && state.pos.y >= bounds_min.y - 1e-6
                    && state.pos.y <= bounds_max.y + 1e-6,
                "left the lane geometry: {:?}",
                state.pos
            );
        }
    }

    /// Same seed ⇒ byte-identical world, even when generation runs on
    /// many threads at once (the harness farms runs across a pool; world
    /// generation must not care).
    #[test]
    fn same_seed_generates_identically_across_threads(kind in arb_family(), seed in 0u64..1_000) {
        let reference =
            serde_json::to_string(&instance_of(kind, seed)).expect("instance serializes");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    serde_json::to_string(&instance_of(kind, seed)).expect("instance serializes")
                })
            })
            .collect();
        for handle in handles {
            let parallel = handle.join().expect("generation thread");
            prop_assert_eq!(&parallel, &reference, "thread-divergent generation");
        }
        // And a different seed must actually change the world.
        let other = serde_json::to_string(&instance_of(kind, seed ^ 0xFFFF_FFFF))
            .expect("instance serializes");
        prop_assert_ne!(other, reference, "seed must drive the jitter");
    }
    /// The churn schedule is a pure function of `(process, duration, arms,
    /// seed)`: byte-identical when compiled concurrently on many threads,
    /// distinct across seeds whenever it is non-empty.
    #[test]
    fn churn_schedule_is_thread_invariant_and_seed_sensitive(
        arrivals in 0.0f64..30.0,
        departures in 0.0f64..30.0,
        abrupt in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let churn = ChurnProcess {
            arrivals_per_min: arrivals,
            departures_per_min: departures,
            abrupt_fraction: abrupt,
        };
        let reference = serde_json::to_string(&churn.schedule(60.0, 4, seed))
            .expect("schedule serializes");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    serde_json::to_string(&churn.schedule(60.0, 4, seed))
                        .expect("schedule serializes")
                })
            })
            .collect();
        for handle in handles {
            prop_assert_eq!(handle.join().expect("schedule thread"), reference.clone());
        }
        if arrivals > 1.0 || departures > 1.0 {
            let other = serde_json::to_string(&churn.schedule(60.0, 4, seed ^ 0xABCD_EF01))
                .expect("schedule serializes");
            prop_assert_ne!(other, reference, "seed must drive the event times");
        }
    }
}

/// The hidden-region grid invariants hold on every generated world: cells
/// index consistently and hidden agents land in valid cells.
#[test]
fn generated_grids_index_consistently() {
    for family in airdnd_worldgen::families() {
        let instance = instance_of(family.kind, 77);
        let stage = &instance.stage;
        for row in 0..stage.rows {
            for col in 0..stage.cols {
                let c = stage.cell_center(col, row);
                assert_eq!(
                    stage.cell_of(c),
                    Some(row * stage.cols + col),
                    "{}: cell ({col},{row}) misindexes",
                    family.name
                );
            }
        }
        for agent in &instance.hidden_agents {
            assert!(stage.cell_of(*agent).is_some());
        }
    }
}
