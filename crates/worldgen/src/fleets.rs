//! Fleet density/churn profiles for generated worlds.
//!
//! The scenario's mobile fleet already models churn (vehicles traverse the
//! map and respawn at portals); a [`FleetProfile`] layers the density
//! knobs on top: how many mobile vehicles circulate, how many parked/RSU
//! helpers anchor the mesh near the occluded corridor, and how widely
//! spawn times scatter. [`parked_positions`] places the fixed helpers
//! deterministically along the hidden corridor — parked cars on the
//! occluded street are exactly the "excess resources" the paper wants to
//! rent out.

use airdnd_geo::Vec2;
use airdnd_scenario::ScenarioWorld;
use serde::{Deserialize, Serialize};

/// Density/churn profile of a generated fleet.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetProfile {
    /// Mobile vehicles, including the ego.
    pub vehicles: usize,
    /// Parked/RSU helpers anchored near the hidden corridor.
    pub parked: usize,
    /// Spawn-scatter window, seconds (the arrival process: vehicles enter
    /// their approach spread over this much warmup).
    pub arrival_window_s: f64,
}

impl Default for FleetProfile {
    fn default() -> Self {
        FleetProfile {
            vehicles: 12,
            parked: 0,
            arrival_window_s: 20.0,
        }
    }
}

impl FleetProfile {
    /// A sparse fleet.
    pub fn sparse() -> Self {
        FleetProfile {
            vehicles: 6,
            ..Self::default()
        }
    }

    /// A dense fleet with parked helpers.
    pub fn dense() -> Self {
        FleetProfile {
            vehicles: 24,
            parked: 4,
            ..Self::default()
        }
    }
}

/// Fraction-spaced positions along the hidden corridor's long axis at a
/// lateral offset from the centreline — the shared placement pass for
/// parked helpers and hidden ground-truth agents. `alternate` flips the
/// offset side slot by slot (kerb-side parking); slots inside obstacles
/// are skipped (the walk continues past them), so the result may be
/// shorter than `count` on exotic geometry.
pub fn corridor_slots(
    stage: &ScenarioWorld,
    count: usize,
    lateral: f64,
    alternate: bool,
) -> Vec<Vec2> {
    let region = stage.hidden_region;
    let along_x = region.width() >= region.height();
    let center = region.center();
    let mut out = Vec::with_capacity(count);
    let slots = count * 2; // headroom for skipped slots
    for i in 0..slots {
        if out.len() == count {
            break;
        }
        let frac = (i + 1) as f64 / (slots + 1) as f64;
        let side = if alternate && i % 2 == 1 { -1.0 } else { 1.0 };
        let pos = if along_x {
            Vec2::new(
                region.min().x + frac * region.width(),
                center.y + side * lateral,
            )
        } else {
            Vec2::new(
                center.x + side * lateral,
                region.min().y + frac * region.height(),
            )
        };
        if !stage.world.is_inside_obstacle(pos) {
            out.push(pos);
        }
    }
    out
}

/// Places `count` parked helpers deterministically along the hidden
/// corridor, offset from the centreline like kerb-side parking.
pub fn parked_positions(stage: &ScenarioWorld, count: usize) -> Vec<Vec2> {
    corridor_slots(stage, count, 3.0, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parked_positions_sit_in_the_corridor() {
        let stage = ScenarioWorld::build(250.0, 13.9, 12.0, 40.0);
        let parked = parked_positions(&stage, 4);
        assert_eq!(parked.len(), 4);
        for p in &parked {
            assert!(stage.hidden_region.contains(*p), "{p:?} outside corridor");
            assert!(!stage.world.is_inside_obstacle(*p));
        }
        // Deterministic.
        assert_eq!(parked, parked_positions(&stage, 4));
    }
}
