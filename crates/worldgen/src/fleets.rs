//! Fleet density/churn profiles for generated worlds.
//!
//! The scenario's mobile fleet already models churn (vehicles traverse the
//! map and respawn at portals); a [`FleetProfile`] layers the density
//! knobs on top: how many mobile vehicles circulate, how many parked/RSU
//! helpers anchor the mesh near the occluded corridor, and how widely
//! spawn times scatter. [`parked_positions`] places the fixed helpers
//! deterministically along the hidden corridor — parked cars on the
//! occluded street are exactly the "excess resources" the paper wants to
//! rent out.

use airdnd_geo::Vec2;
use airdnd_scenario::{DemandProfile, FleetAction, FleetEvent, FleetSchedule, ScenarioWorld};
use airdnd_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Density/churn profile of a generated fleet.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetProfile {
    /// Mobile vehicles, including the ego.
    pub vehicles: usize,
    /// Parked/RSU helpers anchored near the hidden corridor.
    pub parked: usize,
    /// Spawn-scatter window, seconds (the arrival process: vehicles enter
    /// their approach spread over this much warmup).
    pub arrival_window_s: f64,
}

impl Default for FleetProfile {
    fn default() -> Self {
        FleetProfile {
            vehicles: 12,
            parked: 0,
            arrival_window_s: 20.0,
        }
    }
}

impl FleetProfile {
    /// A sparse fleet.
    pub fn sparse() -> Self {
        FleetProfile {
            vehicles: 6,
            ..Self::default()
        }
    }

    /// A dense fleet with parked helpers.
    pub fn dense() -> Self {
        FleetProfile {
            vehicles: 24,
            parked: 4,
            ..Self::default()
        }
    }
}

/// RNG fork tag separating the churn schedule from every other stream the
/// scenario seed drives.
const CHURN_TAG: u64 = 0xC4A1_4B2E;

/// RNG fork tag for the demand-coupled arrival surge, distinct from
/// [`CHURN_TAG`] so coupling never perturbs the base schedule's streams.
const SURGE_TAG: u64 = 0x5_0C4E;

/// A deterministic, seed-driven arrival/departure process: two Poisson
/// streams (exponential inter-event times) that compile into the
/// [`FleetSchedule`] the scenario driver applies at tick boundaries, so
/// mesh membership genuinely changes mid-run. Zero rates yield an empty
/// schedule — the static fleet, byte for byte.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnProcess {
    /// Mean vehicle arrivals per minute.
    pub arrivals_per_min: f64,
    /// Mean vehicle departures per minute.
    pub departures_per_min: f64,
    /// Fraction of departures that are abrupt (no mesh `Leave`; in-flight
    /// frames and task results are dropped).
    pub abrupt_fraction: f64,
}

impl ChurnProcess {
    /// No churn: the empty schedule / static fleet.
    pub fn none() -> Self {
        ChurnProcess {
            arrivals_per_min: 0.0,
            departures_per_min: 0.0,
            abrupt_fraction: 0.0,
        }
    }

    /// Gentle turnover: a handful of membership changes per minute, all
    /// graceful.
    pub fn mild() -> Self {
        ChurnProcess {
            arrivals_per_min: 6.0,
            departures_per_min: 6.0,
            abrupt_fraction: 0.0,
        }
    }

    /// Heavy turnover with abrupt drops: the stress setting.
    pub fn heavy() -> Self {
        ChurnProcess {
            arrivals_per_min: 18.0,
            departures_per_min: 18.0,
            abrupt_fraction: 0.5,
        }
    }

    /// Axis/table label, symmetric in the two rates (a departure-only
    /// storm is as heavy as an arrival-only one).
    pub fn label(&self) -> &'static str {
        let rate = self.arrivals_per_min.max(self.departures_per_min);
        if rate == 0.0 {
            "none"
        } else if rate >= 12.0 || self.abrupt_fraction > 0.0 {
            "heavy"
        } else {
            "mild"
        }
    }

    /// Compiles the process into a time-sorted [`FleetSchedule`] covering
    /// `duration_s` seconds: arrival times are an exponential stream
    /// entering round-robin over `arms` portals; departure times an
    /// independent stream, each abrupt with [`ChurnProcess::abrupt_fraction`]
    /// probability. Pure in `(self, duration_s, arms, seed)` — the same
    /// seed compiles the same schedule on any thread, process or host.
    pub fn schedule(&self, duration_s: f64, arms: usize, seed: u64) -> FleetSchedule {
        let mut rng = SimRng::seed_from(seed).fork(CHURN_TAG);
        let mut events = Vec::new();
        if self.arrivals_per_min > 0.0 {
            let mean = 60.0 / self.arrivals_per_min;
            let mut t = rng.exp(mean);
            let mut k = 0usize;
            while t < duration_s {
                events.push(FleetEvent {
                    at_s: t,
                    action: FleetAction::Spawn {
                        arm: k % arms.max(1),
                    },
                });
                k += 1;
                t += rng.exp(mean);
            }
        }
        if self.departures_per_min > 0.0 {
            let mean = 60.0 / self.departures_per_min;
            let mut t = rng.exp(mean);
            while t < duration_s {
                let graceful = !rng.chance(self.abrupt_fraction);
                events.push(FleetEvent {
                    at_s: t,
                    action: FleetAction::Despawn { graceful },
                });
                t += rng.exp(mean);
            }
        }
        FleetSchedule::new(events)
    }

    /// [`ChurnProcess::schedule`] with the arrival stream coupled to the
    /// perception-demand profile: a [`DemandProfile::RushHour`] peak that
    /// multiplies query pressure by `peak_divisor` also pulls extra traffic
    /// into the map. The surge is an independent exponential stream at
    /// `(peak_divisor - 1)×` the base arrival rate, confined to the peak
    /// window and drawn from its own RNG fork — so the base schedule is
    /// untouched: `peak_divisor == 1` (or any non-rush-hour profile)
    /// returns exactly [`ChurnProcess::schedule`]'s events, byte for byte.
    /// Like `schedule`, this is pure in `(self, duration_s, arms, seed,
    /// demand)`.
    pub fn schedule_with_demand(
        &self,
        duration_s: f64,
        arms: usize,
        seed: u64,
        demand: &DemandProfile,
    ) -> FleetSchedule {
        let base = self.schedule(duration_s, arms, seed);
        let DemandProfile::RushHour {
            peak_start,
            peak_end,
            peak_divisor,
        } = *demand
        else {
            return base;
        };
        let boost = u64::from(peak_divisor.max(1)) - 1;
        if boost == 0 || self.arrivals_per_min <= 0.0 || duration_s <= 0.0 {
            return base;
        }
        let window_start = peak_start.clamp(0.0, 1.0) * duration_s;
        let window_end = peak_end.clamp(0.0, 1.0) * duration_s;
        if window_end <= window_start {
            return base;
        }
        // Surge arrivals fork their own stream so the base schedule stays
        // identical whether or not demand coupling is on.
        let mut rng = SimRng::seed_from(seed).fork(SURGE_TAG);
        let mean = 60.0 / (self.arrivals_per_min * boost as f64);
        let mut events = base.events;
        let mut t = window_start + rng.exp(mean);
        let mut k = 0usize;
        while t < window_end && t < duration_s {
            events.push(FleetEvent {
                at_s: t,
                action: FleetAction::Spawn {
                    arm: k % arms.max(1),
                },
            });
            k += 1;
            t += rng.exp(mean);
        }
        FleetSchedule::new(events)
    }
}

/// Fraction-spaced positions along the hidden corridor's long axis at a
/// lateral offset from the centreline — the shared placement pass for
/// parked helpers and hidden ground-truth agents. `alternate` flips the
/// offset side slot by slot (kerb-side parking); slots inside obstacles
/// are skipped (the walk continues past them), so the result may be
/// shorter than `count` on exotic geometry.
pub fn corridor_slots(
    stage: &ScenarioWorld,
    count: usize,
    lateral: f64,
    alternate: bool,
) -> Vec<Vec2> {
    let region = stage.hidden_region;
    let along_x = region.width() >= region.height();
    let center = region.center();
    let mut out = Vec::with_capacity(count);
    let slots = count * 2; // headroom for skipped slots
    for i in 0..slots {
        if out.len() == count {
            break;
        }
        let frac = (i + 1) as f64 / (slots + 1) as f64;
        let side = if alternate && i % 2 == 1 { -1.0 } else { 1.0 };
        let pos = if along_x {
            Vec2::new(
                region.min().x + frac * region.width(),
                center.y + side * lateral,
            )
        } else {
            Vec2::new(
                center.x + side * lateral,
                region.min().y + frac * region.height(),
            )
        };
        if !stage.world.is_inside_obstacle(pos) {
            out.push(pos);
        }
    }
    out
}

/// Places `count` parked helpers deterministically along the hidden
/// corridor, offset from the centreline like kerb-side parking.
pub fn parked_positions(stage: &ScenarioWorld, count: usize) -> Vec<Vec2> {
    corridor_slots(stage, count, 3.0, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_schedule_is_seeded_and_zero_rate_is_empty() {
        let churn = ChurnProcess::heavy();
        let a = churn.schedule(60.0, 4, 7);
        let b = churn.schedule(60.0, 4, 7);
        assert_eq!(a, b, "same seed must compile the same schedule");
        let c = churn.schedule(60.0, 4, 8);
        assert_ne!(a, c, "distinct seeds must diverge");
        assert!(a.spawn_count() > 0 && a.despawn_count() > 0);
        // Events are time-sorted and inside the run.
        for w in a.events.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
        assert!(a.events.iter().all(|e| e.at_s >= 0.0 && e.at_s < 60.0));
        assert!(ChurnProcess::none().schedule(60.0, 4, 7).is_empty());
    }

    #[test]
    fn demand_coupling_surges_inside_the_peak_only() {
        let churn = ChurnProcess::mild();
        let rush = DemandProfile::RushHour {
            peak_start: 0.25,
            peak_end: 0.75,
            peak_divisor: 4,
        };
        let base = churn.schedule(120.0, 4, 7);
        let coupled = churn.schedule_with_demand(120.0, 4, 7, &rush);
        // Extra arrivals only; departures are untouched.
        assert!(coupled.spawn_count() > base.spawn_count());
        assert_eq!(coupled.despawn_count(), base.despawn_count());
        // Every event not in the base schedule is a spawn inside the window.
        let mut extra = coupled.events.clone();
        for e in &base.events {
            let i = extra.iter().position(|x| x == e).expect("base preserved");
            extra.remove(i);
        }
        assert!(!extra.is_empty());
        for e in &extra {
            assert!(matches!(e.action, FleetAction::Spawn { .. }));
            assert!(e.at_s >= 0.25 * 120.0 && e.at_s < 0.75 * 120.0, "{e:?}");
        }
        // A unit divisor (or any non-rush-hour profile) is the base
        // schedule, byte for byte.
        let flat = DemandProfile::RushHour {
            peak_start: 0.25,
            peak_end: 0.75,
            peak_divisor: 1,
        };
        assert_eq!(churn.schedule_with_demand(120.0, 4, 7, &flat), base);
        assert_eq!(
            churn.schedule_with_demand(120.0, 4, 7, &DemandProfile::Steady),
            base
        );
    }

    proptest::proptest! {
        /// Seed determinism under demand coupling: the same `(seed, churn,
        /// window, divisor)` always compiles the same schedule, distinct
        /// seeds diverge (whenever the surge has any events), and the
        /// schedule stays time-sorted inside the run.
        #[test]
        fn demand_coupled_schedule_is_pure_in_the_seed(
            seed in 0u64..1_000,
            arrivals in 1.0f64..30.0,
            start in 0.0f64..0.8,
            width in 0.1f64..0.2,
            divisor in 1u32..6,
        ) {
            let churn = ChurnProcess {
                arrivals_per_min: arrivals,
                departures_per_min: arrivals / 2.0,
                abrupt_fraction: 0.25,
            };
            let rush = DemandProfile::RushHour {
                peak_start: start,
                peak_end: start + width,
                peak_divisor: divisor,
            };
            let a = churn.schedule_with_demand(90.0, 4, seed, &rush);
            let b = churn.schedule_with_demand(90.0, 4, seed, &rush);
            proptest::prop_assert_eq!(&a, &b);
            for w in a.events.windows(2) {
                proptest::prop_assert!(w[0].at_s <= w[1].at_s);
            }
            for e in &a.events {
                proptest::prop_assert!(e.at_s >= 0.0 && e.at_s < 90.0);
            }
            let c = churn.schedule_with_demand(90.0, 4, seed + 1, &rush);
            if !a.is_empty() || !c.is_empty() {
                proptest::prop_assert_ne!(&a, &c);
            }
        }
    }

    #[test]
    fn churn_labels_are_stable_and_rate_symmetric() {
        assert_eq!(ChurnProcess::none().label(), "none");
        assert_eq!(ChurnProcess::mild().label(), "mild");
        assert_eq!(ChurnProcess::heavy().label(), "heavy");
        // A departure-only storm is as heavy as an arrival-only one.
        let drain = ChurnProcess {
            arrivals_per_min: 0.0,
            departures_per_min: 18.0,
            abrupt_fraction: 0.0,
        };
        assert_eq!(drain.label(), "heavy");
    }

    #[test]
    fn parked_positions_sit_in_the_corridor() {
        let stage = ScenarioWorld::build(250.0, 13.9, 12.0, 40.0);
        let parked = parked_positions(&stage, 4);
        assert_eq!(parked.len(), 4);
        for p in &parked {
            assert!(stage.hidden_region.contains(*p), "{p:?} outside corridor");
            assert!(!stage.world.is_inside_obstacle(*p));
        }
        // Deterministic.
        assert_eq!(parked, parked_positions(&stage, 4));
    }
}
