//! # airdnd-worldgen — procedural scenario generation
//!
//! The paper evaluates AirDnD on one hand-built "looking around the
//! corner" intersection; its claims are about dynamic in-range
//! orchestration under *arbitrary* urban geometry, density and churn.
//! This crate generates that diversity, deterministically:
//!
//! * [`maps`] — parameterized urban fabrics (Manhattan grids with speed
//!   tiers, radial/ring arterials, highway corridors with on-ramps) built
//!   on [`airdnd_geo::RoadNetwork`], plus procedural building placement
//!   that induces hidden regions automatically;
//! * [`fleets`] — density/churn profiles layered on the scenario fleet:
//!   mobile counts, arrival scatter, parked/RSU helpers along the
//!   occluded corridor;
//! * [`demand`] — spatially and temporally varying perception-query
//!   patterns (rush-hour ramps, bursty trains, corridor hotspots);
//! * [`family`] — the [`ScenarioFamily`] registry binding it together:
//!   `FamilyKind::instantiate` turns a `ScenarioConfig` into the
//!   [`WorldInstance`](airdnd_scenario::WorldInstance) that
//!   [`run_scenario_in`](airdnd_scenario::run_scenario_in) consumes, with
//!   the occlusion grid *derived* from the generated geometry
//!   ([`airdnd_scenario::ScenarioWorld::derive`]).
//!
//! ## Determinism contract
//!
//! Generation is a pure function of `(FamilyKind, FleetProfile,
//! ScenarioConfig)`: the stage RNG forks off the scenario seed, so the
//! same seed yields a byte-identical world on any thread, process or
//! host — which is what lets generated workloads shard and merge through
//! the sweep harness unchanged.
//!
//! ## Example
//!
//! ```
//! use airdnd_scenario::{run_scenario_in, ScenarioConfig};
//! use airdnd_sim::SimDuration;
//! use airdnd_worldgen::{families, FleetProfile};
//!
//! let cfg = ScenarioConfig {
//!     vehicles: 6,
//!     duration: SimDuration::from_secs(5),
//!     ..Default::default()
//! };
//! let grid = airdnd_worldgen::find("grid").unwrap();
//! let world = grid.kind.instantiate(&cfg, &FleetProfile::default());
//! let report = run_scenario_in(world, cfg);
//! assert_eq!(report.strategy, "airdnd");
//! assert_eq!(families().len(), 7);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod demand;
pub mod family;
pub mod fleets;
pub mod maps;

pub use demand::DemandKind;
pub use family::{assign_extra_egos, families, find, FamilyKind, ScenarioFamily};
pub use fleets::{parked_positions, ChurnProcess, FleetProfile};
pub use maps::{
    BridgeParams, CityParams, GeneratedMap, GridParams, HighwayParams, RadialParams,
    RoundaboutParams,
};
