//! Procedural map generators: parameterized urban fabrics built on
//! [`RoadNetwork`], with building/occluder placement that induces hidden
//! regions automatically.
//!
//! Three families cover the geometry space the related deployment studies
//! sweep:
//!
//! * [`GridParams`] — Manhattan grids with variable block size and speed
//!   tiers (every *k*-th street is an arterial), one building per block,
//! * [`RadialParams`] — radial arterials crossed by ring roads, buildings
//!   hugging the central intersection,
//! * [`HighwayParams`] — a fast corridor with slow on-ramps, sound
//!   walls/warehouses occluding the merge areas,
//! * [`RoundaboutParams`] — approach arms feeding a ring of chords around
//!   a landscaped central island that hides the far side of the circle,
//! * [`BridgeParams`] — a mainline crossing a tunnel/bridge span whose
//!   shell is a *radio* obstacle: vehicles traversing it black out and the
//!   mesh hard-partitions until they emerge; a corner building past the
//!   east mouth occludes the crossing street.
//!
//! Every generator is a pure function of its parameters and the provided
//! [`SimRng`] (which jitters building footprints), so the same seed always
//! yields a byte-identical map. Portals — the spawn/goal endpoints the
//! fleet uses — are designated via [`RoadNetwork::set_arms`]; each
//! generated map also nominates the ego's entry portal and a goal portal
//! whose connecting path passes the occluded junction the scenario's
//! hidden region derives from.

use airdnd_geo::{Aabb, NodeId, Obstacle, RoadNetwork, Vec2, World};
use airdnd_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A generated map: the road graph, its occluders, and the ego/goal
/// portals the occlusion derivation walks between.
#[derive(Clone, Debug)]
pub struct GeneratedMap {
    /// The road graph with portal arms designated.
    pub net: RoadNetwork,
    /// Buildings / sound walls.
    pub world: World,
    /// Portal index the ego enters from.
    pub ego_arm: usize,
    /// Portal index whose path from the ego passes the occluded junction.
    pub goal_arm: usize,
}

/// Manhattan grid with speed tiers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridParams {
    /// Junction columns (≥ 2).
    pub cols: usize,
    /// Junction rows (≥ 2).
    pub rows: usize,
    /// Block size: metres between junctions.
    pub block: f64,
    /// Side-street speed limit, m/s.
    pub street_speed: f64,
    /// Arterial speed limit, m/s.
    pub arterial_speed: f64,
    /// Every `k`-th grid line is an arterial (0 disables arterials).
    pub arterial_every: usize,
    /// Building setback from road centrelines, metres.
    pub setback: f64,
    /// Building side as a fraction of the open block interior, `(0, 1]`;
    /// the per-block jitter shrinks footprints down to this fraction.
    pub min_fill: f64,
}

impl Default for GridParams {
    fn default() -> Self {
        GridParams {
            cols: 4,
            rows: 4,
            block: 90.0,
            street_speed: 8.3,    // 30 km/h side streets
            arterial_speed: 13.9, // 50 km/h arterials
            arterial_every: 2,
            setback: 10.0,
            min_fill: 0.8,
        }
    }
}

/// Radial arterials crossed by ring roads.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadialParams {
    /// Number of radial arterials (≥ 3).
    pub arms: usize,
    /// Number of ring roads (≥ 1).
    pub rings: usize,
    /// Metres between rings (and from the centre to the first ring).
    pub ring_spacing: f64,
    /// Arterial (radial) speed limit, m/s.
    pub arterial_speed: f64,
    /// Ring-road speed limit, m/s.
    pub ring_speed: f64,
    /// Building setback from the central junction's road centrelines.
    pub setback: f64,
    /// Nominal building side, metres (jittered per sector).
    pub building: f64,
}

impl Default for RadialParams {
    fn default() -> Self {
        RadialParams {
            arms: 4,
            rings: 2,
            ring_spacing: 90.0,
            arterial_speed: 13.9,
            ring_speed: 11.1,
            setback: 12.0,
            building: 40.0,
        }
    }
}

/// A highway corridor with on-ramps.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HighwayParams {
    /// Mainline segments (≥ 2; `segments + 1` mainline nodes).
    pub segments: usize,
    /// Segment length, metres.
    pub seg_len: f64,
    /// Mainline speed limit, m/s.
    pub mainline_speed: f64,
    /// Ramp speed limit, m/s.
    pub ramp_speed: f64,
    /// An on-ramp joins every `k`-th interior mainline node (≥ 1).
    pub ramp_every: usize,
    /// Ramp length, metres.
    pub ramp_len: f64,
    /// Sound-wall / warehouse depth, metres.
    pub wall_depth: f64,
    /// Wall setback from road centrelines, metres.
    pub setback: f64,
}

impl Default for HighwayParams {
    fn default() -> Self {
        HighwayParams {
            segments: 6,
            seg_len: 150.0,
            mainline_speed: 27.8, // 100 km/h
            ramp_speed: 11.1,
            ramp_every: 2,
            ramp_len: 80.0,
            wall_depth: 14.0,
            setback: 12.0,
        }
    }
}

/// A roundabout: approach arms feeding a ring around a central island.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundaboutParams {
    /// Approach arms (≥ 3).
    pub arms: usize,
    /// Ring radius, metres.
    pub radius: f64,
    /// Approach length from each portal to its ring node, metres.
    pub approach_len: f64,
    /// Ring (chord) speed limit, m/s.
    pub ring_speed: f64,
    /// Approach speed limit, m/s.
    pub approach_speed: f64,
    /// Central-island side as a fraction of the ring radius, `(0, 1)` —
    /// the island is the occluder hiding the far side of the circle.
    pub island_frac: f64,
    /// Sector-building setback from the ring, metres.
    pub setback: f64,
    /// Nominal sector-building side, metres (jittered per sector).
    pub building: f64,
}

impl Default for RoundaboutParams {
    fn default() -> Self {
        RoundaboutParams {
            arms: 4,
            radius: 30.0,
            approach_len: 150.0,
            ring_speed: 8.3,      // 30 km/h on the circle
            approach_speed: 13.9, // 50 km/h approaches
            island_frac: 0.7,
            setback: 10.0,
            building: 35.0,
        }
    }
}

/// A composite city: a macro-grid of districts — each one a grid, radial
/// or highway tile — joined by inter-district arterials.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CityParams {
    /// Districts along x (macro-grid columns, ≥ 1).
    pub districts_x: usize,
    /// Districts along y (macro-grid rows, ≥ 1; `x × y` must be ≥ 2).
    pub districts_y: usize,
    /// Macro-grid spacing between district centres, metres. Must exceed
    /// the widest tile so districts never overlap.
    pub pitch: f64,
    /// Inter-district arterial speed limit, m/s.
    pub arterial_speed: f64,
    /// The grid-district recipe (district 0 — the ego's home — is always
    /// a grid, so the derived corridor is the canonical occluded corner).
    pub grid: GridParams,
    /// The radial-district recipe.
    pub radial: RadialParams,
    /// The highway-district recipe.
    pub highway: HighwayParams,
}

impl Default for CityParams {
    fn default() -> Self {
        CityParams {
            districts_x: 3,
            districts_y: 3,
            pitch: 800.0,
            arterial_speed: 22.2, // 80 km/h between districts
            grid: GridParams::default(),
            // Sub-tile recipes shrunk so every tile fits well inside the
            // default pitch: one ring (±180 m) and a 3-segment corridor
            // (450 m wide) against the grid's 270 m square.
            radial: RadialParams {
                rings: 1,
                ..RadialParams::default()
            },
            highway: HighwayParams {
                segments: 3,
                ramp_every: 1,
                ..HighwayParams::default()
            },
        }
    }
}

impl CityParams {
    /// A default-recipe city with `dx × dy` districts — the size knob the
    /// scaling workloads turn with fleet size so density stays constant.
    pub fn with_districts(dx: usize, dy: usize) -> Self {
        CityParams {
            districts_x: dx,
            districts_y: dy,
            ..CityParams::default()
        }
    }
}

/// A mainline crossing a tunnel/bridge span.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BridgeParams {
    /// Portal-to-mouth approach length on each side, metres.
    pub approach_len: f64,
    /// Tunnel/bridge span length, metres.
    pub span: f64,
    /// Distance from the east mouth to the crossing junction, metres.
    pub clearance: f64,
    /// Crossing-street arm length at the east junction, metres.
    pub arm: f64,
    /// Mainline speed limit, m/s.
    pub mainline_speed: f64,
    /// Span speed limit, m/s (tunnels post lower limits).
    pub span_speed: f64,
    /// Corner-building setback at the east junction, metres.
    pub setback: f64,
    /// Corner-building size, metres (jittered).
    pub building: f64,
    /// Tunnel-shell half-height across the road, metres.
    pub shell_half: f64,
    /// Through-shell radio penetration loss, dB (threaded into the radio
    /// medium; tunnels black out, unlike urban brick).
    pub shell_loss_db: f64,
}

impl Default for BridgeParams {
    fn default() -> Self {
        BridgeParams {
            approach_len: 150.0,
            span: 140.0,
            clearance: 60.0,
            arm: 120.0,
            mainline_speed: 16.7, // 60 km/h
            span_speed: 13.9,
            setback: 12.0,
            building: 40.0,
            shell_half: 6.0,
            shell_loss_db: 60.0,
        }
    }
}

/// Generates a Manhattan grid (see [`GridParams`]).
///
/// The ego enters mid-south-edge heading north; the first junction's
/// east/west crossings are occluded by the adjacent block buildings.
///
/// # Panics
///
/// Panics on degenerate parameters (fewer than 2 rows/columns, a 2×2
/// grid — which has no junction and therefore nothing to occlude — or a
/// block not larger than twice the setback).
pub fn grid(p: &GridParams, rng: &mut SimRng) -> GeneratedMap {
    assert!(
        p.cols >= 2 && p.rows >= 2,
        "grid needs at least 2x2 junctions"
    );
    assert!(
        p.cols >= 3 || p.rows >= 3,
        "a 2x2 grid has no 3-way junction to hide a corridor behind"
    );
    assert!(
        p.block > 2.0 * p.setback,
        "blocks must be wider than the setbacks"
    );
    let mut net = RoadNetwork::new();
    let mut ids = Vec::with_capacity(p.cols * p.rows);
    for r in 0..p.rows {
        for c in 0..p.cols {
            ids.push(net.add_node(Vec2::new(c as f64 * p.block, r as f64 * p.block)));
        }
    }
    let tier = |line: usize| {
        if p.arterial_every > 0 && line.is_multiple_of(p.arterial_every) {
            p.arterial_speed
        } else {
            p.street_speed
        }
    };
    for r in 0..p.rows {
        for c in 0..p.cols {
            let here = ids[r * p.cols + c];
            if c + 1 < p.cols {
                net.add_road(here, ids[r * p.cols + c + 1], tier(r))
                    .expect("valid grid nodes");
            }
            if r + 1 < p.rows {
                net.add_road(here, ids[(r + 1) * p.cols + c], tier(c))
                    .expect("valid grid nodes");
            }
        }
    }
    // One jittered building per block, centred in the block interior.
    let mut world = World::new();
    for r in 0..p.rows - 1 {
        for c in 0..p.cols - 1 {
            let interior = p.block - 2.0 * p.setback;
            let fill = p.min_fill + (1.0 - p.min_fill) * rng.next_f64();
            let side = interior * fill;
            let center = Vec2::new((c as f64 + 0.5) * p.block, (r as f64 + 0.5) * p.block);
            world.add_obstacle(Obstacle::Rect(Aabb::from_center_size(center, side, side)));
        }
    }
    world.set_bounds(Aabb::new(
        Vec2::ZERO,
        Vec2::new((p.cols - 1) as f64 * p.block, (p.rows - 1) as f64 * p.block),
    ));
    // Portals: the boundary nodes, south edge first (the ego's entry is
    // mid-south), then north edge, then the west/east interiors.
    let mut arms: Vec<NodeId> = ids[..p.cols].to_vec();
    arms.extend_from_slice(&ids[(p.rows - 1) * p.cols..]);
    for r in 1..p.rows - 1 {
        arms.push(ids[r * p.cols]);
        arms.push(ids[r * p.cols + p.cols - 1]);
    }
    let ego_arm = p.cols / 2;
    let goal_arm = p.cols + p.cols / 2; // same column, north edge
    net.set_arms(arms);
    GeneratedMap {
        net,
        world,
        ego_arm,
        goal_arm,
    }
}

/// Generates radial arterials with ring roads (see [`RadialParams`]).
///
/// Arm 0 points south (the ego's canonical approach); buildings hug the
/// central junction in every sector, so the crossing arms are occluded
/// exactly like the canonical corner.
///
/// # Panics
///
/// Panics on degenerate parameters (fewer than 3 arms, no rings).
pub fn radial(p: &RadialParams, rng: &mut SimRng) -> GeneratedMap {
    assert!(p.arms >= 3, "a radial city needs at least 3 arms");
    assert!(p.rings >= 1, "a radial city needs at least one ring");
    let mut net = RoadNetwork::new();
    let center = net.add_node(Vec2::ZERO);
    // Arm 0 south, then counter-clockwise.
    let dir = |k: usize| {
        let angle = -std::f64::consts::FRAC_PI_2 + k as f64 * std::f64::consts::TAU / p.arms as f64;
        Vec2::from_angle(angle)
    };
    let outer_radius = p.ring_spacing * (p.rings + 1) as f64;
    let mut ring_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(p.arms);
    let mut ends = Vec::with_capacity(p.arms);
    for k in 0..p.arms {
        let d = dir(k);
        let mut along_arm = Vec::with_capacity(p.rings);
        let mut prev = center;
        for i in 1..=p.rings {
            let node = net.add_node(d * (p.ring_spacing * i as f64));
            net.add_road(prev, node, p.arterial_speed)
                .expect("valid radial nodes");
            along_arm.push(node);
            prev = node;
        }
        let end = net.add_node(d * outer_radius);
        net.add_road(prev, end, p.arterial_speed)
            .expect("valid radial nodes");
        ring_nodes.push(along_arm);
        ends.push(end);
    }
    // Chord roads: each ring connects consecutive arms, wrapping around.
    for ring in 0..p.rings {
        let on_ring: Vec<NodeId> = ring_nodes.iter().map(|arm| arm[ring]).collect();
        for (k, &node) in on_ring.iter().enumerate() {
            net.add_road(node, on_ring[(k + 1) % p.arms], p.ring_speed)
                .expect("valid ring nodes");
        }
    }
    // One jittered building per sector, hugging the central junction on
    // the sector bisector.
    let mut world = World::new();
    for k in 0..p.arms {
        let angle =
            -std::f64::consts::FRAC_PI_2 + (k as f64 + 0.5) * std::f64::consts::TAU / p.arms as f64;
        let side = p.building * (0.85 + 0.15 * rng.next_f64());
        let dist = p.setback + side / 2.0;
        // The bisector at 45° for 4 arms puts the box corner `setback`
        // from both road centrelines, exactly like the canonical corner.
        let center_pos = Vec2::from_angle(angle) * (dist * std::f64::consts::SQRT_2);
        world.add_obstacle(Obstacle::Rect(Aabb::from_center_size(
            center_pos, side, side,
        )));
    }
    world.set_bounds(Aabb::from_center_size(
        Vec2::ZERO,
        2.0 * outer_radius,
        2.0 * outer_radius,
    ));
    net.set_arms(ends);
    GeneratedMap {
        net,
        world,
        ego_arm: 0,
        goal_arm: p.arms / 2,
    }
}

/// Generates a highway corridor with on-ramps (see [`HighwayParams`]).
///
/// The ego enters from an on-ramp; sound walls along the south side
/// occlude the mainline from the ramp approach, hiding the merge area.
///
/// # Panics
///
/// Panics on degenerate parameters (fewer than 2 segments, or a ramp
/// cadence that leaves no interior ramp).
pub fn highway(p: &HighwayParams, rng: &mut SimRng) -> GeneratedMap {
    assert!(p.segments >= 2, "a corridor needs at least 2 segments");
    assert!(p.ramp_every >= 1, "ramp cadence must be at least 1");
    let mut net = RoadNetwork::new();
    let mainline: Vec<_> = (0..=p.segments)
        .map(|i| net.add_node(Vec2::new(i as f64 * p.seg_len, 0.0)))
        .collect();
    for w in mainline.windows(2) {
        net.add_road(w[0], w[1], p.mainline_speed)
            .expect("valid mainline nodes");
    }
    let mut ramps = Vec::new();
    let mut ramp_xs = vec![0.0];
    for i in (p.ramp_every..p.segments).step_by(p.ramp_every) {
        let x = i as f64 * p.seg_len;
        let ramp = net.add_node(Vec2::new(x, -p.ramp_len));
        net.add_road(ramp, mainline[i], p.ramp_speed)
            .expect("valid ramp nodes");
        ramps.push(ramp);
        ramp_xs.push(x);
    }
    assert!(!ramps.is_empty(), "ramp cadence leaves no interior ramp");
    ramp_xs.push(p.segments as f64 * p.seg_len);
    // Sound walls / warehouses between consecutive ramp roads, south side.
    let mut world = World::new();
    for w in ramp_xs.windows(2) {
        let (lo, hi) = (w[0] + p.setback, w[1] - p.setback);
        if hi <= lo {
            continue;
        }
        let depth = p.wall_depth * (0.8 + 0.2 * rng.next_f64());
        world.add_obstacle(Obstacle::Rect(Aabb::new(
            Vec2::new(lo, -p.setback - depth),
            Vec2::new(hi, -p.setback),
        )));
    }
    world.set_bounds(Aabb::new(
        Vec2::new(0.0, -p.ramp_len),
        Vec2::new(p.segments as f64 * p.seg_len, p.setback),
    ));
    // Portals: both mainline ends, then the ramps; the ego climbs the
    // first ramp, the goal is the far (east) end of the mainline.
    let mut arms = vec![mainline[0], mainline[p.segments]];
    arms.extend(&ramps);
    net.set_arms(arms);
    GeneratedMap {
        net,
        world,
        ego_arm: 2,
        goal_arm: 1,
    }
}

/// Generates a roundabout (see [`RoundaboutParams`]).
///
/// Arm 0 points south (the ego's canonical approach). The ring is a
/// polygon of chords; the central island is the occluder: entering
/// traffic cannot see the far side of the circle, so the corridor derives
/// along a far chord. Sector buildings between the approaches add urban
/// clutter near the junctions.
///
/// # Panics
///
/// Panics on degenerate parameters (fewer than 3 arms, a non-positive
/// radius/approach, or an island fraction outside `(0, 1)`).
pub fn roundabout(p: &RoundaboutParams, rng: &mut SimRng) -> GeneratedMap {
    assert!(p.arms >= 3, "a roundabout needs at least 3 arms");
    assert!(
        p.radius > 0.0 && p.approach_len > 0.0,
        "radius and approach must be positive"
    );
    assert!(
        p.island_frac > 0.0 && p.island_frac < 1.0,
        "island must fit inside the ring"
    );
    let mut net = RoadNetwork::new();
    // Arm 0 south, then counter-clockwise.
    let dir = |k: usize| {
        let angle = -std::f64::consts::FRAC_PI_2 + k as f64 * std::f64::consts::TAU / p.arms as f64;
        Vec2::from_angle(angle)
    };
    let ring: Vec<NodeId> = (0..p.arms)
        .map(|k| net.add_node(dir(k) * p.radius))
        .collect();
    let portals: Vec<NodeId> = (0..p.arms)
        .map(|k| net.add_node(dir(k) * (p.radius + p.approach_len)))
        .collect();
    for k in 0..p.arms {
        net.add_road(portals[k], ring[k], p.approach_speed)
            .expect("valid approach nodes");
        net.add_road(ring[k], ring[(k + 1) % p.arms], p.ring_speed)
            .expect("valid ring nodes");
    }
    let mut world = World::new();
    // The landscaped central island, jittered per seed.
    let island = p.radius * p.island_frac * (0.95 + 0.05 * rng.next_f64());
    world.add_obstacle(Obstacle::Rect(Aabb::from_center_size(
        Vec2::ZERO,
        island,
        island,
    )));
    // One jittered building per sector, outside the ring on the bisector.
    for k in 0..p.arms {
        let angle =
            -std::f64::consts::FRAC_PI_2 + (k as f64 + 0.5) * std::f64::consts::TAU / p.arms as f64;
        let side = p.building * (0.85 + 0.15 * rng.next_f64());
        let dist = p.radius + p.setback + side / 2.0;
        world.add_obstacle(Obstacle::Rect(Aabb::from_center_size(
            Vec2::from_angle(angle) * dist,
            side,
            side,
        )));
    }
    let extent = p.radius + p.approach_len;
    world.set_bounds(Aabb::from_center_size(
        Vec2::ZERO,
        2.0 * extent,
        2.0 * extent,
    ));
    net.set_arms(portals);
    GeneratedMap {
        net,
        world,
        ego_arm: 0,
        goal_arm: p.arms / 2,
    }
}

/// Generates a mainline over a tunnel/bridge span (see [`BridgeParams`]).
///
/// West to east: portal → approach → the span (its shell straddles the
/// road, so radio in and out of the span is blocked and the mesh
/// hard-partitions while vehicles traverse it) → a four-way junction
/// whose crossing street is occluded by a corner building — the corridor
/// the emerging ego must look around.
///
/// # Panics
///
/// Panics on degenerate parameters (non-positive lengths, or a clearance
/// too small to fit the corner building between mouth and junction).
pub fn bridge(p: &BridgeParams, rng: &mut SimRng) -> GeneratedMap {
    assert!(
        p.approach_len > 0.0 && p.span > 0.0 && p.arm > 0.0,
        "lengths must be positive"
    );
    assert!(
        p.clearance > p.setback,
        "the junction must clear the corner building's setback"
    );
    let mut net = RoadNetwork::new();
    let y0 = 0.0;
    let west = net.add_node(Vec2::new(0.0, y0));
    let mouth_w = net.add_node(Vec2::new(p.approach_len, y0));
    let mouth_e = net.add_node(Vec2::new(p.approach_len + p.span, y0));
    let jx = p.approach_len + p.span + p.clearance;
    let junction = net.add_node(Vec2::new(jx, y0));
    let north = net.add_node(Vec2::new(jx, p.arm));
    let south = net.add_node(Vec2::new(jx, -p.arm));
    let east = net.add_node(Vec2::new(jx + p.approach_len, y0));
    net.add_road(west, mouth_w, p.mainline_speed)
        .expect("valid mainline nodes");
    net.add_road(mouth_w, mouth_e, p.span_speed)
        .expect("valid span nodes");
    net.add_road(mouth_e, junction, p.mainline_speed)
        .expect("valid mainline nodes");
    net.add_road(junction, north, p.mainline_speed * 0.6)
        .expect("valid crossing nodes");
    net.add_road(junction, south, p.mainline_speed * 0.6)
        .expect("valid crossing nodes");
    net.add_road(junction, east, p.mainline_speed)
        .expect("valid mainline nodes");
    let mut world = World::new();
    // Corner building NW of the junction: the visual occluder the ego
    // must look around after emerging from the span. Added first so the
    // derivation finds it before the shell.
    let size = p.building * (0.85 + 0.15 * rng.next_f64());
    world.add_obstacle(Obstacle::Rect(Aabb::new(
        Vec2::new(jx - p.setback - size, p.setback),
        Vec2::new(jx - p.setback, p.setback + size),
    )));
    // The tunnel/bridge shell: one rect straddling the span. Any sight
    // line into, out of, or through the span crosses it — the radio
    // partition. Inset from the mouths so surface vehicles at the mouth
    // nodes stay outside.
    let depth = p.shell_half * (0.9 + 0.1 * rng.next_f64());
    world.add_obstacle(Obstacle::Rect(Aabb::new(
        Vec2::new(p.approach_len + 2.0, -depth),
        Vec2::new(p.approach_len + p.span - 2.0, depth),
    )));
    world.set_bounds(Aabb::new(
        Vec2::new(0.0, -p.arm),
        Vec2::new(jx + p.approach_len, p.arm),
    ));
    net.set_arms(vec![west, east, north, south]);
    GeneratedMap {
        net,
        world,
        ego_arm: 0,
        goal_arm: 1,
    }
}

/// The arm node with the largest `key` (first wins on ties, so the pick
/// is deterministic under byte-identical generation).
fn extreme_arm(net: &RoadNetwork, nodes: &[NodeId], key: impl Fn(Vec2) -> f64) -> NodeId {
    let mut best = nodes[0];
    let mut best_key = key(net.position(best));
    for &n in &nodes[1..] {
        let k = key(net.position(n));
        if k > best_key {
            best = n;
            best_key = k;
        }
    }
    best
}

/// Generates a composite city (see [`CityParams`]): districts stamped on
/// a macro grid, cycling through the grid/radial/highway recipes, joined
/// by inter-district arterials.
///
/// Each district is generated by its tile recipe (consuming the shared
/// RNG in district order, so the same seed yields the same city), centred
/// on its macro-grid cell, and stamped node-for-node and lane-for-lane
/// into the composite network. Arterials connect each district to its
/// east and north neighbours between their facing-most portal nodes, so
/// every portal pair in the city is routable.
///
/// The composite portal list is every district's portals in district
/// (row-major) order — tens of arms, enough to field hundreds of
/// concurrent egos and five-digit fleets. District 0 (south-west) is
/// always a grid tile and contributes the ego's entry portal; the goal is
/// the last (north-east) district's goal portal, so the ego's approach
/// crosses its home grid — deriving the canonical occluded junction —
/// before heading across the city.
///
/// # Panics
///
/// Panics on degenerate parameters (fewer than 2 districts, or a pitch
/// that cannot separate the tiles).
pub fn city(p: &CityParams, rng: &mut SimRng) -> GeneratedMap {
    assert!(
        p.districts_x >= 1 && p.districts_y >= 1 && p.districts_x * p.districts_y >= 2,
        "a city needs at least 2 districts"
    );
    assert!(p.pitch > 0.0, "district pitch must be positive");
    let mut net = RoadNetwork::new();
    let mut world = World::new();
    let mut arms: Vec<NodeId> = Vec::new();
    let mut district_arms: Vec<Vec<NodeId>> = Vec::new();
    let mut bounds: Option<Aabb> = None;
    let mut ego_arm = 0;
    let mut goal_arm = 0;
    for j in 0..p.districts_y {
        for i in 0..p.districts_x {
            let idx = j * p.districts_x + i;
            let tile = match idx % 3 {
                0 => grid(&p.grid, rng),
                1 => radial(&p.radial, rng),
                _ => highway(&p.highway, rng),
            };
            let tile_bounds = tile.world.bounds().expect("generators set bounds");
            let center = Vec2::new(i as f64 * p.pitch, j as f64 * p.pitch);
            let offset = center - tile_bounds.center();
            // Stamp the tile: node insertion order is preserved, so tile
            // NodeId indices map 1:1 onto the composite ids.
            let map_node: Vec<NodeId> = tile
                .net
                .node_ids()
                .map(|id| net.add_node(tile.net.position(id) + offset))
                .collect();
            for (from, to, _len, speed) in tile.net.lanes() {
                net.add_lane(map_node[from.index()], map_node[to.index()], speed)
                    .expect("stamped lanes mirror a valid tile");
            }
            for ob in tile.world.obstacles() {
                let Obstacle::Rect(r) = ob;
                world.add_obstacle(Obstacle::Rect(Aabb::new(
                    r.min() + offset,
                    r.max() + offset,
                )));
            }
            let shifted = Aabb::new(tile_bounds.min() + offset, tile_bounds.max() + offset);
            bounds = Some(match bounds {
                Some(b) => Aabb::new(b.min().min(shifted.min()), b.max().max(shifted.max())),
                None => shifted,
            });
            if idx == 0 {
                ego_arm = arms.len() + tile.ego_arm;
            }
            goal_arm = arms.len() + tile.goal_arm; // last district wins
            let tile_arms: Vec<NodeId> = (0..tile.net.arm_count())
                .map(|a| map_node[tile.net.approach_node(a).index()])
                .collect();
            arms.extend(&tile_arms);
            district_arms.push(tile_arms);
        }
    }
    // Inter-district arterials: each district links to its east and north
    // neighbours between their mutually facing-most portals.
    for j in 0..p.districts_y {
        for i in 0..p.districts_x {
            let idx = j * p.districts_x + i;
            if i + 1 < p.districts_x {
                let a = extreme_arm(&net, &district_arms[idx], |v| v.x);
                let b = extreme_arm(&net, &district_arms[idx + 1], |v| -v.x);
                net.add_road(a, b, p.arterial_speed)
                    .expect("district portals are distinct");
            }
            if j + 1 < p.districts_y {
                let a = extreme_arm(&net, &district_arms[idx], |v| v.y);
                let b = extreme_arm(&net, &district_arms[idx + p.districts_x], |v| -v.y);
                net.add_road(a, b, p.arterial_speed)
                    .expect("district portals are distinct");
            }
        }
    }
    world.set_bounds(bounds.expect("at least one district"));
    net.set_arms(arms);
    GeneratedMap {
        net,
        world,
        ego_arm,
        goal_arm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_speed_tiers_and_buildings() {
        let p = GridParams::default();
        let map = grid(&p, &mut SimRng::seed_from(1));
        assert_eq!(map.net.node_count(), 16);
        assert_eq!(map.world.obstacle_count(), 9);
        let speeds: std::collections::BTreeSet<u64> = map
            .net
            .lanes()
            .map(|(_, _, _, speed)| speed.to_bits())
            .collect();
        assert_eq!(speeds.len(), 2, "two speed tiers");
        // Portals are boundary nodes only.
        assert_eq!(map.net.arm_count(), 2 * 4 + 2 * 2);
    }

    #[test]
    fn radial_connects_rings_and_arms() {
        let p = RadialParams::default();
        let map = radial(&p, &mut SimRng::seed_from(2));
        // centre + arms * (rings + 1 end)
        assert_eq!(map.net.node_count(), 1 + 4 * 3);
        assert_eq!(map.world.obstacle_count(), 4);
        assert_eq!(map.net.arm_count(), 4);
        // Every portal pair is routable.
        for a in 0..4 {
            for b in 0..4 {
                assert!(map
                    .net
                    .route(map.net.approach_node(a), map.net.exit_node(b))
                    .is_some());
            }
        }
    }

    #[test]
    fn highway_ramps_join_the_mainline() {
        let p = HighwayParams::default();
        let map = highway(&p, &mut SimRng::seed_from(3));
        assert_eq!(map.net.node_count(), 7 + 2); // mainline + 2 ramps
        assert!(map.world.obstacle_count() >= 2);
        let ego = map.net.approach_node(map.ego_arm);
        let goal = map.net.exit_node(map.goal_arm);
        assert!(map.net.route(ego, goal).is_some());
    }

    #[test]
    fn roundabout_ring_routes_and_island_occludes() {
        let p = RoundaboutParams::default();
        let map = roundabout(&p, &mut SimRng::seed_from(4));
        assert_eq!(map.net.node_count(), 2 * 4); // ring + portals
        assert_eq!(map.net.arm_count(), 4);
        assert_eq!(map.world.obstacle_count(), 1 + 4); // island + sectors
        for a in 0..4 {
            for b in 0..4 {
                assert!(map
                    .net
                    .route(map.net.approach_node(a), map.net.exit_node(b))
                    .is_some());
            }
        }
        // The island hides the far side of the circle from an entering
        // vehicle: south ring node cannot see the north ring node.
        let south = Vec2::new(0.0, -p.radius);
        let north = Vec2::new(0.0, p.radius);
        assert!(
            !map.world.line_of_sight(south, north),
            "the island must hide the far side"
        );
    }

    #[test]
    fn bridge_span_blocks_radio_across_the_shell() {
        let p = BridgeParams::default();
        let map = bridge(&p, &mut SimRng::seed_from(5));
        assert_eq!(map.net.arm_count(), 4);
        let ego = map.net.approach_node(map.ego_arm);
        let goal = map.net.exit_node(map.goal_arm);
        assert!(map.net.route(ego, goal).is_some());
        // A vehicle inside the span is radio-dark to the outside world —
        // and even to another vehicle inside (total blackout).
        let inside = Vec2::new(p.approach_len + p.span / 2.0, 0.0);
        let outside_w = Vec2::new(p.approach_len - 20.0, 0.0);
        let outside_e = Vec2::new(p.approach_len + p.span + 20.0, 0.0);
        assert!(!map.world.line_of_sight(inside, outside_w));
        assert!(!map.world.line_of_sight(inside, outside_e));
        assert!(
            !map.world.line_of_sight(outside_w, outside_e),
            "the shell must partition west from east along the axis"
        );
        // Off the span, the surface streets see each other fine.
        let jx = p.approach_len + p.span + p.clearance;
        assert!(map
            .world
            .line_of_sight(Vec2::new(jx, -30.0), Vec2::new(jx, 30.0)));
    }

    #[test]
    fn city_composes_districts_joined_by_arterials() {
        let p = CityParams::default();
        let map = city(&p, &mut SimRng::seed_from(6));
        // 9 districts cycling grid/radial/highway (3 of each): the
        // composite is exactly the sum of its tiles plus the arterials.
        assert_eq!(map.net.node_count(), 3 * 16 + 3 * 9 + 3 * 6);
        assert_eq!(map.net.arm_count(), 3 * 12 + 3 * 4 + 3 * 4);
        assert_eq!(map.world.obstacle_count(), 3 * 9 + 3 * 4 + 3 * 3);
        // The ego enters its home grid mid-south-edge; the goal sits in
        // the far north-east district.
        assert_eq!(map.ego_arm, 2);
        assert_eq!(map.goal_arm, map.net.arm_count() - 3);
        let ego = map.net.approach_node(map.ego_arm);
        let goal = map.net.exit_node(map.goal_arm);
        assert!(
            map.net.position(goal).distance(map.net.position(ego)) > 1_500.0,
            "the goal must sit districts away from the ego's entry"
        );
        // The arterials make every portal routable from the ego's entry,
        // and every portal can reach the goal — the whole city is one
        // strongly connected fabric.
        for a in 0..map.net.arm_count() {
            assert!(map.net.route(ego, map.net.exit_node(a)).is_some(), "{a}");
            assert!(
                map.net.route(map.net.approach_node(a), goal).is_some(),
                "{a}"
            );
        }
        // Same seed, same city.
        let again = city(&p, &mut SimRng::seed_from(6));
        assert_eq!(
            serde_json::to_string(&map.world).expect("serializes"),
            serde_json::to_string(&again.world).expect("serializes"),
        );
    }

    #[test]
    fn city_scales_with_district_count() {
        let small = city(&CityParams::with_districts(2, 1), &mut SimRng::seed_from(6));
        let large = city(&CityParams::with_districts(4, 4), &mut SimRng::seed_from(6));
        assert!(large.net.node_count() > 3 * small.net.node_count());
        assert!(large.net.arm_count() > 3 * small.net.arm_count());
        let ego = large.net.approach_node(large.ego_arm);
        let goal = large.net.exit_node(large.goal_arm);
        assert!(large.net.route(ego, goal).is_some());
    }

    #[test]
    fn same_seed_same_map() {
        let a = grid(&GridParams::default(), &mut SimRng::seed_from(7));
        let b = grid(&GridParams::default(), &mut SimRng::seed_from(7));
        let c = grid(&GridParams::default(), &mut SimRng::seed_from(8));
        let world_json = |m: &GeneratedMap| serde_json::to_string(&m.world).expect("serializes");
        assert_eq!(world_json(&a), world_json(&b));
        assert_ne!(world_json(&a), world_json(&c), "seed drives the jitter");
    }
}
