//! The scenario-family registry: named, typed recipes that turn a
//! [`ScenarioConfig`] into a fully instantiated [`WorldInstance`].
//!
//! A [`FamilyKind`] is pure data (it serializes into sweep configs and
//! shard artifacts); [`FamilyKind::instantiate`] is the deterministic
//! generation pass: fork a stage RNG from the scenario seed, generate the
//! map, derive the occlusion grid from the generated geometry
//! ([`ScenarioWorld::derive`]), hide the ground-truth agents inside the
//! derived corridor, and place the profile's parked helpers along it.
//! `airdnd-scenario::run_scenario_in` consumes the result unchanged — the
//! canonical corner stage is just the [`FamilyKind::Corner`] entry of the
//! same registry.

use crate::fleets::{parked_positions, FleetProfile};
use crate::maps::{
    bridge, city, grid, highway, radial, roundabout, BridgeParams, CityParams, GeneratedMap,
    GridParams, HighwayParams, RadialParams, RoundaboutParams,
};
use airdnd_geo::Vec2;
use airdnd_scenario::{
    FleetSchedule, OcclusionParams, ScenarioConfig, ScenarioWorld, WorldInstance,
};
use airdnd_sim::SimRng;
use serde::{Deserialize, Serialize};

/// RNG fork tag separating stage generation from everything else the
/// scenario seed drives.
const STAGE_TAG: u64 = 0x57A6_E5EE;

/// One scenario family: a map recipe with its parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FamilyKind {
    /// The canonical hand-built corner stage (the paper's evaluation).
    Corner,
    /// Manhattan grid with speed tiers.
    Grid(GridParams),
    /// Radial arterials with ring roads.
    Radial(RadialParams),
    /// Highway corridor with on-ramps.
    Highway(HighwayParams),
    /// Roundabout whose central island hides the far side of the circle.
    Roundabout(RoundaboutParams),
    /// Mainline over a tunnel/bridge span that radio-partitions the mesh.
    Bridge(BridgeParams),
    /// Macro-grid of grid/radial/highway districts joined by arterials.
    City(CityParams),
}

impl FamilyKind {
    /// Axis/table label.
    pub fn label(&self) -> &'static str {
        match self {
            FamilyKind::Corner => "corner",
            FamilyKind::Grid(_) => "grid",
            FamilyKind::Radial(_) => "radial",
            FamilyKind::Highway(_) => "highway",
            FamilyKind::Roundabout(_) => "roundabout",
            FamilyKind::Bridge(_) => "bridge",
            FamilyKind::City(_) => "city",
        }
    }

    /// Instantiates the family for one scenario run: generates the map
    /// from `cfg.seed`, derives the occlusion grid, and places hidden
    /// agents and the profile's parked helpers.
    ///
    /// # Panics
    ///
    /// Panics if the generated geometry fails to induce an occluded
    /// corridor — a family-parameter bug, not a runtime condition (the
    /// registry families are regression-tested to derive on every seed).
    pub fn instantiate(&self, cfg: &ScenarioConfig, profile: &FleetProfile) -> WorldInstance {
        let map = match self {
            FamilyKind::Corner => {
                let mut instance = WorldInstance::canonical(cfg);
                instance.parked = parked_positions(&instance.stage, profile.parked);
                instance.arrival_window_s = profile.arrival_window_s;
                return instance;
            }
            FamilyKind::Grid(p) => grid(p, &mut stage_rng(cfg.seed)),
            FamilyKind::Radial(p) => radial(p, &mut stage_rng(cfg.seed)),
            FamilyKind::Highway(p) => highway(p, &mut stage_rng(cfg.seed)),
            FamilyKind::Roundabout(p) => roundabout(p, &mut stage_rng(cfg.seed)),
            FamilyKind::Bridge(p) => bridge(p, &mut stage_rng(cfg.seed)),
            FamilyKind::City(p) => city(p, &mut stage_rng(cfg.seed)),
        };
        // A tunnel shell is radio-opaque, not just visually occluding.
        let obstacle_loss_db = match self {
            FamilyKind::Bridge(p) => Some(p.shell_loss_db),
            _ => None,
        };
        let GeneratedMap {
            net,
            world,
            ego_arm,
            goal_arm,
        } = map;
        let ego_entry = net.approach_node(ego_arm);
        let goal = net.exit_node(goal_arm);
        let stage = ScenarioWorld::derive(net, world, ego_entry, goal, &OcclusionParams::default())
            .unwrap_or_else(|| {
                panic!("family `{}` must induce an occluded corridor", self.label())
            });
        let hidden_agents = corridor_agents(&stage, cfg.hidden_agents);
        let parked = parked_positions(&stage, profile.parked);
        WorldInstance {
            stage,
            ego_arm,
            hidden_agents,
            parked,
            arrival_window_s: profile.arrival_window_s,
            schedule: FleetSchedule::default(),
            extra_egos: Vec::new(),
            extra_ego_stages: Vec::new(),
            obstacle_loss_db,
        }
    }
}

fn stage_rng(seed: u64) -> SimRng {
    SimRng::seed_from(seed).fork(STAGE_TAG)
}

/// Hides `count` ground-truth agents along the derived corridor's long
/// axis, slightly off the centreline — the generated analogue of the
/// canonical stage's parked agents. Shares the obstacle-skipping
/// placement walk with [`parked_positions`].
fn corridor_agents(stage: &ScenarioWorld, count: usize) -> Vec<Vec2> {
    crate::fleets::corridor_slots(stage, count, 2.0, false)
}

/// A registry entry: a family name bound to its default parameters.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioFamily {
    /// Registry name (also the sweep-axis label).
    pub name: &'static str,
    /// The family recipe with its default parameters.
    pub kind: FamilyKind,
}

/// The registered families, canonical stage first.
pub fn families() -> Vec<ScenarioFamily> {
    vec![
        ScenarioFamily {
            name: "corner",
            kind: FamilyKind::Corner,
        },
        ScenarioFamily {
            name: "grid",
            kind: FamilyKind::Grid(GridParams::default()),
        },
        ScenarioFamily {
            name: "radial",
            kind: FamilyKind::Radial(RadialParams::default()),
        },
        ScenarioFamily {
            name: "highway",
            kind: FamilyKind::Highway(HighwayParams::default()),
        },
        ScenarioFamily {
            name: "roundabout",
            kind: FamilyKind::Roundabout(RoundaboutParams::default()),
        },
        ScenarioFamily {
            name: "bridge",
            kind: FamilyKind::Bridge(BridgeParams::default()),
        },
        ScenarioFamily {
            name: "city",
            kind: FamilyKind::City(CityParams::default()),
        },
    ]
}

/// Assigns `count` extra query origins to `instance`: each rides a
/// portal arm (never the primary ego's), aiming at the farthest portal
/// so its approach path crosses the map. Arms are dealt round-robin
/// starting past the primary's — the first cycle covers every other arm
/// exactly once (so small demands, like G4's, get distinct arms), then
/// the deal wraps, stacking multiple egos per arm for city-scale demands
/// of hundreds of origins. The per-route occlusion grid is derived
/// *once* here — via the instance's own
/// [`WorldInstance::derive_ego_stage`] — and carried on the instance, so
/// the runner consumes exactly the stage this generator saw. Ground-truth
/// agents are hidden in every extra corridor that derives, so per-ego
/// detection is measurable. Arms that derive no corridor of their own
/// still field an ego (their carried stage is the shared grid).
pub fn assign_extra_egos(instance: &mut WorldInstance, count: usize, hidden_per_ego: usize) {
    let arms = instance.stage.net.arm_count();
    if arms <= 1 {
        return; // only the primary's arm exists: nowhere to put extras
    }
    let mut k = 0;
    while instance.extra_egos.len() < count {
        let arm = (instance.ego_arm + 1 + k) % arms;
        k += 1;
        if arm == instance.ego_arm {
            continue;
        }
        let goal_arm = (arm + arms / 2) % arms;
        let goal_arm = if goal_arm == arm {
            (arm + 1) % arms
        } else {
            goal_arm
        };
        let route = airdnd_scenario::EgoRoute { arm, goal_arm };
        let derived = instance.derive_ego_stage(route);
        // Hide agents in this ego's own corridor when one derives.
        if let Some(stage) = &derived {
            let agents = crate::fleets::corridor_slots(stage, hidden_per_ego, 2.0, false);
            instance.hidden_agents.extend(agents);
        }
        instance.extra_egos.push(route);
        instance
            .extra_ego_stages
            .push(derived.unwrap_or_else(|| instance.stage.clone()));
    }
}

/// Looks up one family by name.
pub fn find(name: &str) -> Option<ScenarioFamily> {
    families().into_iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> ScenarioConfig {
        ScenarioConfig::default().seeded(seed)
    }

    /// Every registered family derives an occluded corridor with a real
    /// grid, hides its agents inside it, and keeps them out of buildings.
    #[test]
    fn every_family_instantiates_with_a_derived_corridor() {
        for family in families() {
            for seed in [1u64, 42, 1234] {
                let instance = family
                    .kind
                    .instantiate(&quick_cfg(seed), &FleetProfile::default());
                assert!(
                    instance.stage.cell_count() >= 4,
                    "{}: corridor grid too small",
                    family.name
                );
                for agent in &instance.hidden_agents {
                    assert!(
                        instance.stage.cell_of(*agent).is_some(),
                        "{}: agent {agent:?} outside the grid",
                        family.name
                    );
                    assert!(!instance.stage.world.is_inside_obstacle(*agent));
                }
            }
        }
    }

    /// The corner family is byte-identical to the canonical instance the
    /// plain `run_scenario` builds.
    #[test]
    fn corner_family_is_the_canonical_instance() {
        let cfg = quick_cfg(7);
        let family = FamilyKind::Corner.instantiate(&cfg, &FleetProfile::default());
        let canonical = WorldInstance::canonical(&cfg);
        assert_eq!(
            serde_json::to_string(&family).expect("serializes"),
            serde_json::to_string(&canonical).expect("serializes"),
        );
    }

    /// Same seed ⇒ byte-identical generated world; different seed ⇒ the
    /// building jitter actually varies.
    #[test]
    fn generation_is_seed_deterministic() {
        for family in families() {
            let one = family
                .kind
                .instantiate(&quick_cfg(9), &FleetProfile::dense());
            let two = family
                .kind
                .instantiate(&quick_cfg(9), &FleetProfile::dense());
            assert_eq!(
                serde_json::to_string(&one).expect("serializes"),
                serde_json::to_string(&two).expect("serializes"),
                "{}: same seed must regenerate identically",
                family.name
            );
        }
        let a = FamilyKind::Grid(GridParams::default())
            .instantiate(&quick_cfg(1), &FleetProfile::default());
        let b = FamilyKind::Grid(GridParams::default())
            .instantiate(&quick_cfg(2), &FleetProfile::default());
        assert_ne!(
            serde_json::to_string(&a.stage.world).expect("serializes"),
            serde_json::to_string(&b.stage.world).expect("serializes"),
            "different seeds must jitter the buildings"
        );
    }

    #[test]
    fn registry_lookup() {
        assert_eq!(families().len(), 7);
        assert!(find("grid").is_some());
        assert!(find("nope").is_none());
        let labels: Vec<&str> = families().iter().map(|f| f.kind.label()).collect();
        assert_eq!(
            labels,
            [
                "corner",
                "grid",
                "radial",
                "highway",
                "roundabout",
                "bridge",
                "city"
            ]
        );
    }

    /// The bridge family threads its shell loss into the instance so the
    /// runner hardens the radio medium; other families leave it alone.
    #[test]
    fn bridge_world_is_radio_opaque() {
        let cfg = quick_cfg(3);
        let bridge = find("bridge").unwrap().kind;
        let instance = bridge.instantiate(&cfg, &FleetProfile::default());
        assert_eq!(instance.obstacle_loss_db, Some(60.0));
        let grid = find("grid").unwrap().kind;
        assert_eq!(
            grid.instantiate(&cfg, &FleetProfile::default())
                .obstacle_loss_db,
            None
        );
    }

    /// The stage carried on the instance IS the grid the runner uses for
    /// each extra ego — one derivation, performed here and consumed
    /// there. Pin both halves of that contract: the carried stage is
    /// byte-identical to a fresh `derive_ego_stage`, and every agent this
    /// function hides lands inside its ego's carried grid.
    #[test]
    fn extra_ego_agents_land_in_the_carried_grid() {
        let cfg = quick_cfg(9);
        let kind = find("grid").unwrap().kind;
        let mut instance = kind.instantiate(&cfg, &FleetProfile::default());
        let base_agents = instance.hidden_agents.len();
        assign_extra_egos(&mut instance, 2, 2);
        assert_eq!(instance.extra_ego_stages.len(), instance.extra_egos.len());
        let extra_agents = &instance.hidden_agents[base_agents..];
        assert!(!extra_agents.is_empty(), "grid arms must derive corridors");
        let mut placed = 0;
        for (k, route) in instance.extra_egos.iter().enumerate() {
            let derived = instance
                .derive_ego_stage(*route)
                .expect("grid arms must derive corridors");
            let carried = &instance.extra_ego_stages[k];
            assert_eq!(
                serde_json::to_string(carried).unwrap(),
                serde_json::to_string(&derived).unwrap(),
                "carried stage must be the authoritative derivation"
            );
            placed += extra_agents
                .iter()
                .filter(|&&a| carried.cell_of(a).is_some())
                .count();
        }
        assert_eq!(
            placed,
            extra_agents.len(),
            "every placed agent must be visible to the ego that owns it"
        );
    }

    /// Past one full cycle of arms the deal wraps: a city fields
    /// hundreds of query origins by stacking egos per portal, still
    /// never on the primary's arm, each carrying a stage.
    #[test]
    fn extra_egos_wrap_past_the_arm_count() {
        let cfg = quick_cfg(11);
        let kind = find("city").unwrap().kind;
        let mut instance = kind.instantiate(&cfg, &FleetProfile::default());
        let arms = instance.stage.net.arm_count();
        let count = 2 * arms + 5; // forces two full wraps
        assign_extra_egos(&mut instance, count, 1);
        assert_eq!(instance.extra_egos.len(), count);
        assert_eq!(instance.extra_ego_stages.len(), count);
        assert!(instance
            .extra_egos
            .iter()
            .all(|r| r.arm != instance.ego_arm));
        // The first cycle still deals every non-primary arm exactly once
        // (the pre-wrap contract G4 pins).
        let first_cycle: Vec<usize> = instance.extra_egos[..arms - 1]
            .iter()
            .map(|r| r.arm)
            .collect();
        let mut deduped = first_cycle.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), arms - 1);
        // And the wrap repeats the same deal.
        assert_eq!(instance.extra_egos[arms - 1].arm, first_cycle[0]);
    }

    /// Extra query origins land on distinct non-primary arms and bring
    /// their own hidden agents when their path derives a corridor.
    #[test]
    fn extra_egos_ride_distinct_arms() {
        let cfg = quick_cfg(5);
        for name in ["corner", "grid", "roundabout"] {
            let kind = find(name).unwrap().kind;
            let mut instance = kind.instantiate(&cfg, &FleetProfile::default());
            let base_agents = instance.hidden_agents.len();
            assign_extra_egos(&mut instance, 2, 1);
            assert_eq!(instance.extra_egos.len(), 2, "{name}");
            let mut arms: Vec<usize> = instance.extra_egos.iter().map(|r| r.arm).collect();
            assert!(
                !arms.contains(&instance.ego_arm),
                "{name}: extras must avoid the primary arm"
            );
            arms.dedup();
            assert_eq!(arms.len(), 2, "{name}: extras must ride distinct arms");
            assert!(
                instance.hidden_agents.len() >= base_agents,
                "{name}: agents never disappear"
            );
        }
    }
}
