//! Demand synthesis for generated scenarios.
//!
//! [`DemandProfile`] itself lives in `airdnd-scenario` (the driver
//! consumes it at tick time); this module provides the family-aware
//! presets: the hotspot profile is centred on the *derived* hidden
//! corridor of whatever world was generated, and the rush-hour/bursty
//! presets use windows sized for the standard run lengths.

use airdnd_scenario::{DemandProfile, ScenarioWorld};
use serde::{Deserialize, Serialize};

/// A demand pattern *recipe*: serializable into sweep configs before the
/// world exists, resolved against the derived stage at run time (the
/// hotspot needs the generated corridor's position).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DemandKind {
    /// Fixed-period queries.
    Steady,
    /// [`rush_hour`].
    RushHour,
    /// [`bursty`].
    Bursty,
    /// [`corridor_hotspot`] on the derived hidden region.
    CorridorHotspot,
}

impl DemandKind {
    /// Axis/table label.
    pub fn label(&self) -> &'static str {
        match self {
            DemandKind::Steady => "steady",
            DemandKind::RushHour => "rush-hour",
            DemandKind::Bursty => "bursty",
            DemandKind::CorridorHotspot => "hotspot",
        }
    }

    /// Resolves the recipe against an instantiated stage.
    pub fn resolve(&self, stage: &ScenarioWorld) -> DemandProfile {
        match self {
            DemandKind::Steady => DemandProfile::Steady,
            DemandKind::RushHour => rush_hour(),
            DemandKind::Bursty => bursty(),
            DemandKind::CorridorHotspot => corridor_hotspot(stage),
        }
    }
}

/// Rush hour: the middle third of the run quadruples the query rate.
pub fn rush_hour() -> DemandProfile {
    DemandProfile::RushHour {
        peak_start: 1.0 / 3.0,
        peak_end: 2.0 / 3.0,
        peak_divisor: 4,
    }
}

/// Query trains: 8 back-to-back ticks, then 32 quiet ones.
pub fn bursty() -> DemandProfile {
    DemandProfile::Bursty {
        burst_ticks: 8,
        idle_ticks: 32,
    }
}

/// A spatial hotspot on the derived hidden corridor: the ego queries at
/// the base rate only while near the occlusion, four times slower
/// elsewhere.
pub fn corridor_hotspot(stage: &ScenarioWorld) -> DemandProfile {
    let center = stage.hidden_region.center();
    let radius = stage
        .hidden_region
        .width()
        .max(stage.hidden_region.height())
        + 60.0;
    DemandProfile::Hotspot {
        x: center.x,
        y: center.y,
        radius,
        cold_multiplier: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airdnd_geo::Vec2;

    #[test]
    fn hotspot_centres_on_the_corridor() {
        let stage = ScenarioWorld::build(250.0, 13.9, 12.0, 40.0);
        let DemandProfile::Hotspot { x, y, radius, .. } = corridor_hotspot(&stage) else {
            panic!("hotspot expected");
        };
        assert!(stage.hidden_region.contains(Vec2::new(x, y)));
        assert!(radius > stage.hidden_region.width());
    }

    #[test]
    fn recipes_resolve_with_matching_labels() {
        let stage = ScenarioWorld::build(250.0, 13.9, 12.0, 40.0);
        let kinds = [
            DemandKind::Steady,
            DemandKind::RushHour,
            DemandKind::Bursty,
            DemandKind::CorridorHotspot,
        ];
        let labels: Vec<&str> = kinds.iter().map(|k| k.resolve(&stage).label()).collect();
        assert_eq!(labels, ["steady", "rush-hour", "bursty", "hotspot"]);
        for kind in kinds {
            assert_eq!(kind.label(), kind.resolve(&stage).label());
        }
    }
}
