//! Property tests for the causal span layer: any protocol-shaped
//! interleaving played through the `QueryTracer` yields a well-formed
//! span tree, causally ordered edges, and stage budgets that partition
//! the end-to-end latency exactly — with the span-tree extractor
//! agreeing with the always-on book.

use airdnd_sim::SimTime;
use airdnd_telemetry::span::SpanStatus;
use airdnd_telemetry::{extract, validate_spans, QueryTracer, SpanLog, StageBudget};
use proptest::prelude::*;

/// One generated query: a submit, a chain of offer attempts (some
/// dropped), execution at the delivered ones, and an outcome.
#[derive(Clone, Debug)]
struct GenQuery {
    task: u64,
    actor: u32,
    submit_ms: u64,
    /// (executor, offer gap ms, delivered?, exec ms, result delivered?)
    attempts: Vec<(u32, u64, bool, u64, bool)>,
    completes: bool,
}

fn any_query(task: u64) -> impl Strategy<Value = GenQuery> {
    (
        (0u32..4, 0u64..50),
        proptest::collection::vec(
            (
                (10u32..20, 1u64..30),
                any::<bool>(),
                1u64..100,
                any::<bool>(),
            ),
            1..4,
        ),
        any::<bool>(),
    )
        .prop_map(move |((actor, submit_ms), attempts, completes)| GenQuery {
            task,
            actor,
            submit_ms,
            attempts: attempts
                .into_iter()
                .map(|((executor, gap), delivered, exec, result)| {
                    (executor, gap, delivered, exec, result)
                })
                .collect(),
            completes,
        })
}

/// Plays a batch of queries through the tracer in virtual-time order,
/// returning the recorded spans and the book's samples.
fn play(queries: &[GenQuery], spans_on: bool) -> (SpanLog, Vec<StageBudget>) {
    let t = SimTime::from_millis;
    let mut log = if spans_on {
        SpanLog::enabled()
    } else {
        SpanLog::disabled()
    };
    let mut tracer = QueryTracer::new();
    let mut horizon = 0u64;
    for q in queries {
        let mut now = q.submit_ms;
        tracer.submit(&mut log, q.task, q.actor, t(now));
        let mut any_result = false;
        for &(executor, gap, delivered, exec_ms, result_ok) in &q.attempts {
            now += gap;
            let arrival = now + 1;
            tracer.offer_sent(
                &mut log,
                q.task,
                executor,
                t(now),
                delivered.then(|| t(arrival)),
            );
            if delivered {
                let ready = arrival + exec_ms;
                tracer.result_ready(&mut log, q.task, executor, t(arrival), t(ready));
                tracer.result_sent(
                    &mut log,
                    q.task,
                    executor,
                    t(ready),
                    result_ok.then(|| t(ready + 1)),
                );
                if result_ok {
                    any_result = true;
                    now = ready + 1;
                } else {
                    now = ready;
                }
            }
        }
        if q.completes && any_result {
            let budget = tracer
                .complete(&mut log, q.task, t(now))
                .unwrap_or_else(|| StageBudget::all_exec(q.task, 0));
            tracer.push_sample(budget);
        } else {
            tracer.fail(&mut log, q.task, t(now + 5));
        }
        horizon = horizon.max(now + 10);
    }
    tracer.finish(&mut log, t(horizon));
    let samples = tracer.samples().to_vec();
    (log, samples)
}

proptest! {
    /// Open/close balance and causal well-formedness: every recorded
    /// span ends Closed or Expired, every parent/follows_from reference
    /// exists, causal edges respect virtual-time order, no cycles.
    #[test]
    fn span_trees_are_well_formed(
        queries in proptest::collection::vec(any_query(0), 1..6)
            .prop_map(|mut qs| {
                for (i, q) in qs.iter_mut().enumerate() {
                    q.task = i as u64 + 1;
                }
                qs
            }),
    ) {
        let (log, _) = play(&queries, true);
        prop_assert!(validate_spans(log.spans()).is_ok(),
            "{:?}", validate_spans(log.spans()));
        prop_assert!(log.spans().iter().all(|s| s.status != SpanStatus::Open));
        prop_assert!(log.spans().iter().all(|s| s.end.is_some_and(|e| e >= s.start)));
    }

    /// The stage budgets partition latency exactly: each stage ≤ total
    /// (critical path never exceeds end-to-end latency) and the five
    /// stages sum to it. The book is identical with spans on or off, and
    /// the span-tree extractor recomputes the same budget.
    #[test]
    fn budgets_partition_latency_and_extractor_agrees(
        queries in proptest::collection::vec(any_query(0), 1..6)
            .prop_map(|mut qs| {
                for (i, q) in qs.iter_mut().enumerate() {
                    q.task = i as u64 + 1;
                }
                qs
            }),
    ) {
        let (log_on, samples_on) = play(&queries, true);
        let (log_off, samples_off) = play(&queries, false);
        prop_assert!(log_off.is_empty(), "disabled log records nothing");
        prop_assert_eq!(&samples_on, &samples_off, "book is span-independent");
        for budget in &samples_on {
            prop_assert_eq!(budget.stages_total_us(), budget.total_us);
            for stage in airdnd_telemetry::Stage::ALL {
                prop_assert!(budget.stage_us(stage) <= budget.total_us);
            }
            let extracted = extract(log_on.spans(), budget.task);
            prop_assert_eq!(extracted, Some(*budget),
                "extractor agrees with the book for task {}", budget.task);
        }
    }
}
