//! Property tests: every `Event` kind round-trips through the JSONL
//! exporter byte-exactly.

use airdnd_sim::SimTime;
use airdnd_telemetry::export::{parse_jsonl, to_jsonl, validate_jsonl};
use airdnd_telemetry::{DropReason, EventKind, EventLog};
use proptest::prelude::*;

/// A strategy covering every `EventKind` variant with arbitrary payloads.
fn any_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        any::<u32>().prop_map(|node| EventKind::MeshJoin { node }),
        any::<u32>().prop_map(|node| EventKind::MeshLeave { node }),
        (any::<u32>(), any::<bool>(), any::<u32>(), any::<u64>()).prop_map(
            |(from, unicast, to, bytes)| EventKind::FrameTx {
                from,
                to: unicast.then_some(to),
                bytes,
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u64>())
            .prop_map(|(from, to, bytes)| EventKind::FrameRx { from, to, bytes }),
        (
            (any::<u32>(), any::<bool>(), any::<u32>()),
            any::<u64>(),
            prop_oneof![
                Just(DropReason::Channel),
                Just(DropReason::QueueCap),
                Just(DropReason::Unreachable),
            ]
        )
            .prop_map(
                |((from, unicast, to), bytes, reason)| EventKind::FrameDrop {
                    from,
                    to: unicast.then_some(to),
                    bytes,
                    reason,
                }
            ),
        (any::<u64>(), any::<u32>()).prop_map(|(task, ego)| EventKind::TaskSubmit { task, ego }),
        (any::<u64>(), any::<u32>())
            .prop_map(|(task, executor)| EventKind::TaskOffload { task, executor }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(task, ego, latency_us)| {
            EventKind::TaskComplete {
                task,
                ego,
                latency_us,
            }
        }),
        (any::<u64>(), any::<u32>()).prop_map(|(task, ego)| EventKind::TaskExpire { task, ego }),
        any::<u32>().prop_map(|node| EventKind::LifecycleSpawn { node }),
        (any::<u32>(), any::<bool>())
            .prop_map(|(node, graceful)| EventKind::LifecycleDespawn { node, graceful }),
        (any::<u32>(), any::<u64>()).prop_map(|(ego, task)| EventKind::DemandFire { ego, task }),
    ]
}

proptest! {
    /// serialize → parse → serialize is the identity on the JSONL bytes,
    /// for any mix of event kinds, times and actors.
    #[test]
    fn jsonl_round_trips_byte_exactly(
        entries in proptest::collection::vec(
            (0u64..1_000_000_000_000, any::<u32>(), any_kind()),
            0..32,
        ),
    ) {
        let mut log = EventLog::bounded(64);
        for &(nanos, actor, kind) in &entries {
            log.record(SimTime::from_nanos(nanos), actor, kind);
        }
        let events = log.events();
        let jsonl = to_jsonl(&events);
        let parsed = parse_jsonl(&jsonl).expect("exporter output parses");
        prop_assert_eq!(&parsed, &events);
        prop_assert_eq!(to_jsonl(&parsed), jsonl.clone());
        prop_assert_eq!(validate_jsonl(&jsonl).expect("exporter output validates"), events.len());
    }

    /// The merged event view is always sorted by global sequence, and the
    /// per-category drop accounting matches what the rings evicted.
    #[test]
    fn log_accounting_is_consistent(
        capacity in 1usize..8,
        entries in proptest::collection::vec((0u64..1_000_000, any::<u32>(), any_kind()), 0..64),
    ) {
        let mut log = EventLog::bounded(capacity);
        for &(nanos, actor, kind) in &entries {
            log.record(SimTime::from_nanos(nanos), actor, kind);
        }
        let events = log.events();
        prop_assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        prop_assert_eq!(
            events.len() as u64 + log.dropped_total(),
            log.recorded_total()
        );
        prop_assert_eq!(log.recorded_total(), entries.len() as u64);
    }
}
