//! The causal span model: per-query trees of virtual-time intervals.
//!
//! A [`Span`] is one named interval in a query's life — the whole query,
//! the discovery wait, one offer's radio flight, the remote execution,
//! the result's return flight — stamped with virtual start/end times and
//! linked two ways: `parent` builds the per-query *tree* (every stage of
//! task `K` hangs off `K`'s root [`SpanKind::Query`] span), while
//! `follows_from` records *cross-node causality* (the executor's
//! [`SpanKind::Exec`] span follows from the offer frame that reached it,
//! the result flight follows from the execution that produced it, and a
//! failover re-offer follows from the attempt it replaces).
//!
//! Recording is pure observation: the [`SpanLog`] never touches
//! simulation state, RNG streams or scheduling, and a disabled log makes
//! every call a no-op — runs with spans on report byte-identically to
//! runs with spans off (the stage columns in reports come from the
//! always-on [`QueryTracer`](crate::critical_path::QueryTracer) book,
//! never from here).

use airdnd_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one recorded span (1-based, assigned in recording
/// order, unique within a run).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw identifier.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// What interval of a query's life a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// The whole query: submit → completion (or expiry).
    Query,
    /// Advert discovery: submit → the first offer leaving the requester.
    Discover,
    /// Helper (re)selection: first offer → the winning offer leaving.
    Select,
    /// One offer frame's radio flight: transmit → delivery at the helper.
    OfferFlight,
    /// Remote execution on the helper: offer delivery → result ready.
    Exec,
    /// The result frame's radio flight: transmit → delivery at the ego.
    ResultFlight,
}

impl SpanKind {
    /// Short lower-case label (CLI trees, trace slice names).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Discover => "discover",
            SpanKind::Select => "select",
            SpanKind::OfferFlight => "offer-flight",
            SpanKind::Exec => "exec",
            SpanKind::ResultFlight => "result-flight",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether a span ended, and how.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanStatus {
    /// Still open — only ever observed mid-run; the runner closes or
    /// expires every span by end-of-run, and the validator rejects logs
    /// that leak one.
    Open,
    /// Closed normally at `end`.
    Closed,
    /// The interval never reached its natural end (frame dropped, task
    /// expired, run horizon hit); `end` is when it was abandoned.
    Expired,
}

/// One recorded span: a virtual-time interval with tree and causal links.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Identifier (1-based, strictly increasing in recording order).
    pub id: u64,
    /// Enclosing span in the per-query tree (the root has none).
    pub parent: Option<u64>,
    /// Cross-node (or cross-attempt) causal predecessor.
    pub follows_from: Option<u64>,
    /// What interval this span covers.
    pub kind: SpanKind,
    /// Node address (or ego index) the interval runs on.
    pub actor: u32,
    /// Task id of the query this span belongs to.
    pub task: u64,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time (`None` only while [`SpanStatus::Open`]).
    pub end: Option<SimTime>,
    /// How (and whether) the span ended.
    pub status: SpanStatus,
}

impl Span {
    /// The span's duration in whole microseconds of virtual time (zero
    /// while open).
    pub fn duration_us(&self) -> u64 {
        self.end
            .map(|end| end.saturating_since(self.start).as_nanos() / 1_000)
            .unwrap_or(0)
    }
}

/// The span recorder: a flat list of [`Span`]s in recording order.
///
/// Disabled by default; every method is a no-op (and returns `None`)
/// until [`SpanLog::enabled`] builds one. Ids are assigned 1-based in
/// recording order, so references (`parent`, `follows_from`) always point
/// backwards — which the validator exploits for its cycle check.
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    enabled: bool,
    spans: Vec<Span>,
}

impl SpanLog {
    /// A disabled log: records nothing, costs nothing.
    pub fn disabled() -> Self {
        SpanLog::default()
    }

    /// An enabled log.
    pub fn enabled() -> Self {
        SpanLog {
            enabled: true,
            spans: Vec::new(),
        }
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span at `start`. Returns `None` when the log is disabled.
    pub fn open(
        &mut self,
        kind: SpanKind,
        actor: u32,
        task: u64,
        start: SimTime,
        parent: Option<SpanId>,
        follows_from: Option<SpanId>,
    ) -> Option<SpanId> {
        if !self.enabled {
            return None;
        }
        let id = self.spans.len() as u64 + 1;
        self.spans.push(Span {
            id,
            parent: parent.map(SpanId::raw),
            follows_from: follows_from.map(SpanId::raw),
            kind,
            actor,
            task,
            start,
            end: None,
            status: SpanStatus::Open,
        });
        Some(SpanId(id))
    }

    /// Records an already-finished span (open + close in one call).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        kind: SpanKind,
        actor: u32,
        task: u64,
        start: SimTime,
        end: SimTime,
        parent: Option<SpanId>,
        follows_from: Option<SpanId>,
    ) -> Option<SpanId> {
        let id = self.open(kind, actor, task, start, parent, follows_from)?;
        self.close(id, end);
        Some(id)
    }

    /// Closes an open span at `end` (no-op on disabled logs or ids from
    /// one).
    pub fn close(&mut self, id: SpanId, end: SimTime) {
        self.finish(id, end, SpanStatus::Closed);
    }

    /// Marks an open span expired at `end` — the interval was abandoned
    /// rather than completed.
    pub fn expire(&mut self, id: SpanId, end: SimTime) {
        self.finish(id, end, SpanStatus::Expired);
    }

    fn finish(&mut self, id: SpanId, end: SimTime, status: SpanStatus) {
        if let Some(span) = self.spans.get_mut(id.0 as usize - 1) {
            if span.status == SpanStatus::Open {
                span.end = Some(end.max(span.start));
                span.status = status;
            }
        }
    }

    /// Expires every still-open span at `at` — the end-of-run sweep that
    /// keeps the well-formedness contract ("every opened span closed or
    /// explicitly expired") true even for queries in flight at the
    /// horizon.
    pub fn expire_open(&mut self, at: SimTime) {
        for span in &mut self.spans {
            if span.status == SpanStatus::Open {
                span.end = Some(at.max(span.start));
                span.status = SpanStatus::Expired;
            }
        }
    }

    /// Every recorded span, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans belonging to task `task`, in recording order.
    pub fn for_task(&self, task: u64) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.task == task).collect()
    }
}

/// Structural well-formedness of a span set: every span closed or
/// expired, every `parent`/`follows_from` id present, no cycles, ends
/// after starts, and causal edges respecting virtual-time order (a child
/// never starts before its parent; a span never starts before what it
/// follows from). Returns the first violation as a message naming the
/// offending span.
pub fn validate_spans(spans: &[Span]) -> Result<(), String> {
    use std::collections::BTreeMap;
    let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    if by_id.len() != spans.len() {
        return Err("duplicate span id".to_owned());
    }
    for span in spans {
        if span.status == SpanStatus::Open {
            return Err(format!(
                "span {} ({} task#{}) left open at end of log",
                span.id, span.kind, span.task
            ));
        }
        let end = span
            .end
            .ok_or_else(|| format!("span {} has status {:?} but no end", span.id, span.status))?;
        if end < span.start {
            return Err(format!("span {} ends before it starts", span.id));
        }
        for (label, link) in [("parent", span.parent), ("follows_from", span.follows_from)] {
            let Some(target) = link else { continue };
            let Some(target_span) = by_id.get(&target) else {
                return Err(format!("span {}: {label} {target} does not exist", span.id));
            };
            if span.start < target_span.start {
                return Err(format!(
                    "span {}: starts before its {label} {target} (causal order violated)",
                    span.id
                ));
            }
        }
    }
    // Cycle check over the union of parent and follows_from edges:
    // iterative three-color DFS (0 = unvisited, 1 = on stack, 2 = done).
    let mut color: BTreeMap<u64, u8> = spans.iter().map(|s| (s.id, 0u8)).collect();
    for span in spans {
        if color[&span.id] != 0 {
            continue;
        }
        // Stack of (id, next-edge-index); edges are [parent, follows_from].
        let mut stack: Vec<(u64, usize)> = vec![(span.id, 0)];
        color.insert(span.id, 1);
        while let Some(&mut (id, ref mut edge)) = stack.last_mut() {
            let node = by_id[&id];
            let next = match *edge {
                0 => node.parent,
                1 => node.follows_from,
                _ => {
                    color.insert(id, 2);
                    stack.pop();
                    continue;
                }
            };
            *edge += 1;
            let Some(target) = next else { continue };
            match color.get(&target) {
                Some(1) => {
                    return Err(format!("span {id} is part of a reference cycle"));
                }
                Some(0) => {
                    color.insert(target, 1);
                    stack.push((target, 0));
                }
                _ => {} // done, or missing (already reported above)
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = SpanLog::disabled();
        assert!(log.open(SpanKind::Query, 1, 7, t(0), None, None).is_none());
        assert!(log.is_empty());
        log.expire_open(t(10));
        assert!(log.is_empty());
    }

    #[test]
    fn open_close_expire_balance() {
        let mut log = SpanLog::enabled();
        let root = log.open(SpanKind::Query, 1, 7, t(0), None, None).unwrap();
        let offer = log
            .open(SpanKind::OfferFlight, 1, 7, t(2), Some(root), None)
            .unwrap();
        log.close(offer, t(3));
        log.expire(root, t(9));
        assert_eq!(log.len(), 2);
        assert!(validate_spans(log.spans()).is_ok());
        let spans = log.spans();
        assert_eq!(spans[0].status, SpanStatus::Expired);
        assert_eq!(spans[1].status, SpanStatus::Closed);
        assert_eq!(spans[1].duration_us(), 1_000);
    }

    #[test]
    fn expire_open_sweeps_leftovers() {
        let mut log = SpanLog::enabled();
        log.open(SpanKind::Query, 1, 7, t(0), None, None).unwrap();
        assert!(validate_spans(log.spans()).is_err(), "open span rejected");
        log.expire_open(t(30));
        assert!(validate_spans(log.spans()).is_ok());
        assert_eq!(log.spans()[0].end, Some(t(30)));
    }

    #[test]
    fn close_is_idempotent_and_end_never_precedes_start() {
        let mut log = SpanLog::enabled();
        let id = log.open(SpanKind::Exec, 2, 7, t(5), None, None).unwrap();
        log.close(id, t(1)); // clamped to start
        log.expire(id, t(9)); // already closed: no-op
        let span = log.spans()[0];
        assert_eq!(span.status, SpanStatus::Closed);
        assert_eq!(span.end, Some(t(5)));
    }

    #[test]
    fn validator_names_the_first_violation() {
        // Missing parent.
        let mut log = SpanLog::enabled();
        let id = log.open(SpanKind::Exec, 2, 7, t(5), None, None).unwrap();
        log.close(id, t(6));
        let mut spans = log.spans().to_vec();
        spans[0].parent = Some(99);
        let err = validate_spans(&spans).unwrap_err();
        assert!(err.contains("parent 99"), "{err}");

        // Causal order: child starts before its parent.
        let mut log = SpanLog::enabled();
        let root = log.open(SpanKind::Query, 1, 7, t(10), None, None).unwrap();
        let child = log
            .open(SpanKind::OfferFlight, 1, 7, t(12), Some(root), None)
            .unwrap();
        log.close(child, t(13));
        log.close(root, t(20));
        let mut spans = log.spans().to_vec();
        spans[1].start = t(1);
        let err = validate_spans(&spans).unwrap_err();
        assert!(err.contains("causal order"), "{err}");

        // Self-cycle.
        let mut spans = spans.clone();
        spans[1].start = t(12);
        spans[0].follows_from = Some(spans[0].id);
        let err = validate_spans(&spans).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn two_node_cycle_is_rejected() {
        let mut log = SpanLog::enabled();
        let a = log.open(SpanKind::Exec, 1, 7, t(1), None, None).unwrap();
        let b = log
            .open(SpanKind::ResultFlight, 2, 7, t(2), None, Some(a))
            .unwrap();
        log.close(a, t(3));
        log.close(b, t(4));
        let mut spans = log.spans().to_vec();
        spans[0].follows_from = Some(b.raw());
        // Patch start so the time check does not fire first.
        spans[0].start = t(2);
        let err = validate_spans(&spans).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }
}
