//! The bounded per-category event ring.
//!
//! One ring per [`EventCategory`] means a flood of radio frames cannot
//! evict the (much sparser) lifecycle or mesh history. Rings drop their
//! *oldest* entry when full — the tail of a run is usually the part a
//! test wants to see — and count what they dropped so a truncated log is
//! never mistaken for a complete one. A disabled log records nothing and
//! allocates nothing.

use crate::event::{Event, EventCategory, EventKind};
use crate::query::TraceQuery;
use airdnd_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;

/// An event plus its global record sequence number.
///
/// The sequence number is the recording order across *all* categories —
/// it is what makes ordering assertions (`a precedes b`) and the merged
/// view deterministic even when two events share a virtual timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recorded {
    /// Global recording order (0-based, gap-free until a ring drops).
    pub seq: u64,
    /// The recorded event.
    pub event: Event,
}

impl fmt::Display for Recorded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.event.fmt(f)
    }
}

/// A bounded, per-category ring of typed events.
#[derive(Clone, Debug)]
pub struct EventLog {
    enabled: bool,
    capacity: usize,
    rings: [VecDeque<Recorded>; 5],
    dropped: [u64; 5],
    next_seq: u64,
}

impl EventLog {
    /// A log that records nothing (the zero-cost default).
    pub fn disabled() -> Self {
        EventLog {
            enabled: false,
            capacity: 0,
            rings: Default::default(),
            dropped: [0; 5],
            next_seq: 0,
        }
    }

    /// A log holding up to `per_category` events in each category ring.
    pub fn bounded(per_category: usize) -> Self {
        EventLog {
            enabled: true,
            capacity: per_category,
            rings: Default::default(),
            dropped: [0; 5],
            next_seq: 0,
        }
    }

    /// Whether this log records events at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The per-category ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event (a no-op when the log is disabled).
    pub fn record(&mut self, time: SimTime, actor: u32, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let category = kind.category();
        let ring = &mut self.rings[category.index()];
        if self.capacity == 0 {
            self.dropped[category.index()] += 1;
            return;
        }
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped[category.index()] += 1;
        }
        ring.push_back(Recorded {
            seq: self.next_seq,
            event: Event { time, actor, kind },
        });
        self.next_seq += 1;
    }

    /// Number of events currently held across all rings.
    pub fn len(&self) -> usize {
        self.rings.iter().map(VecDeque::len).sum()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(VecDeque::is_empty)
    }

    /// How many events were recorded in total (including dropped ones).
    pub fn recorded_total(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted from `category`'s ring because it was full.
    pub fn dropped(&self, category: EventCategory) -> u64 {
        self.dropped[category.index()]
    }

    /// Total evicted events across all rings.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// The retained events of one category, oldest first.
    pub fn category(&self, category: EventCategory) -> impl Iterator<Item = &Recorded> {
        self.rings[category.index()].iter()
    }

    /// All retained events merged across categories in recording order
    /// (global sequence order — identical to virtual-time order with the
    /// engine's deterministic tiebreak).
    pub fn events(&self) -> Vec<Recorded> {
        let mut all: Vec<Recorded> = self.rings.iter().flatten().copied().collect();
        all.sort_by_key(|r| r.seq);
        all
    }

    /// Starts a [`TraceQuery`] over the retained events.
    pub fn query(&self) -> TraceQuery<'_> {
        TraceQuery::over(self.events())
    }

    /// Renders the merged log in the legacy trace format — one
    /// `[time] actor#N label` line per event, plus a truncation note
    /// when rings dropped entries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for recorded in self.events() {
            let _ = writeln!(out, "{recorded}");
        }
        let dropped = self.dropped_total();
        if dropped > 0 {
            let _ = writeln!(out, "... {dropped} events discarded");
        }
        out
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        log.record(at(1), 0, EventKind::MeshJoin { node: 0 });
        assert!(log.is_empty());
        assert_eq!(log.recorded_total(), 0);
    }

    #[test]
    fn rings_drop_oldest_per_category() {
        let mut log = EventLog::bounded(2);
        for node in 0..4 {
            log.record(at(node as u64), node, EventKind::MeshJoin { node });
        }
        // The frame ring is untouched by mesh pressure.
        log.record(
            at(9),
            0,
            EventKind::FrameRx {
                from: 0,
                to: 1,
                bytes: 64,
            },
        );
        assert_eq!(log.dropped(EventCategory::Mesh), 2);
        assert_eq!(log.dropped(EventCategory::Frame), 0);
        let mesh: Vec<u32> = log
            .category(EventCategory::Mesh)
            .map(|r| r.event.actor)
            .collect();
        assert_eq!(mesh, vec![2, 3], "oldest mesh events evicted first");
        assert_eq!(log.len(), 3);
        assert_eq!(log.recorded_total(), 5);
    }

    #[test]
    fn merged_view_is_in_recording_order() {
        let mut log = EventLog::bounded(8);
        log.record(at(2), 1, EventKind::MeshJoin { node: 1 });
        log.record(at(2), 0, EventKind::DemandFire { ego: 0, task: 1 });
        log.record(at(3), 1, EventKind::MeshLeave { node: 1 });
        let seqs: Vec<u64> = log.events().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn render_notes_truncation() {
        let mut log = EventLog::bounded(1);
        log.record(at(1), 0, EventKind::MeshJoin { node: 0 });
        log.record(at(2), 1, EventKind::MeshJoin { node: 1 });
        let rendered = log.render();
        assert!(rendered.contains("mesh: node#1 joined"));
        assert!(rendered.contains("... 1 events discarded"));
    }
}
