//! Deterministic critical-path latency decomposition.
//!
//! Every completed query's end-to-end latency is partitioned into five
//! named stages along its critical path — the chain of events that
//! actually produced the completing result:
//!
//! | stage      | interval                                              |
//! |------------|-------------------------------------------------------|
//! | `discover` | submit → the first offer leaving the requester        |
//! | `select`   | first offer → the *winning* offer leaving (failover)  |
//! | `radio`    | winning offer transmit → delivery at the helper       |
//! | `exec`     | offer delivery → result ready on the helper           |
//! | `return`   | result ready → completion at the requester            |
//!
//! The stages are computed with clamped-remainder integer arithmetic, so
//! they always sum *exactly* to the end-to-end latency in microseconds —
//! a [`StageBudget`] is a partition, never an approximation. Strategies
//! that never touch the offload protocol (cloud, raw sharing, local)
//! attribute their whole latency to `exec` via
//! [`StageBudget::all_exec`].
//!
//! Two independent producers exist, and property tests hold them equal:
//!
//! * [`QueryTracer`] — the **always-on** integer book the scenario
//!   runner feeds as the protocol plays out. It powers the
//!   `lat_*_p50/p95` report columns, so the columns are identical
//!   whether span recording is on or off.
//! * [`extract`] — recomputes a budget purely from a recorded span tree
//!   (see [`crate::span`]), which is what `sweep explain` prints.

use crate::span::{Span, SpanId, SpanKind, SpanLog, SpanStatus};
use airdnd_sim::SimTime;
use std::collections::BTreeMap;

/// One named critical-path stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Submit → first offer out.
    Discover,
    /// First offer out → winning offer out.
    Select,
    /// Winning offer transmit → delivery at the helper.
    Radio,
    /// Offer delivery → result ready.
    Exec,
    /// Result ready → completion.
    Return,
}

impl Stage {
    /// Every stage, in critical-path order.
    pub const ALL: [Stage; 5] = [
        Stage::Discover,
        Stage::Select,
        Stage::Radio,
        Stage::Exec,
        Stage::Return,
    ];

    /// Lower-case column/label name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Discover => "discover",
            Stage::Select => "select",
            Stage::Radio => "radio",
            Stage::Exec => "exec",
            Stage::Return => "return",
        }
    }
}

/// One completed query's latency partitioned into stages (microseconds
/// of virtual time; the stages sum exactly to `total_us`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageBudget {
    /// Task id of the query.
    pub task: u64,
    /// End-to-end latency, submit → completion.
    pub total_us: u64,
    /// Submit → first offer out.
    pub discover_us: u64,
    /// First offer out → winning offer out.
    pub select_us: u64,
    /// Winning offer transmit → delivery.
    pub radio_us: u64,
    /// Offer delivery → result ready.
    pub exec_us: u64,
    /// Result ready → completion.
    pub return_us: u64,
}

impl StageBudget {
    /// The budget of a query that never used the offload protocol: the
    /// whole latency is execution.
    pub fn all_exec(task: u64, total_us: u64) -> Self {
        StageBudget {
            task,
            total_us,
            discover_us: 0,
            select_us: 0,
            radio_us: 0,
            exec_us: total_us,
            return_us: 0,
        }
    }

    /// This budget's value for one stage.
    pub fn stage_us(&self, stage: Stage) -> u64 {
        match stage {
            Stage::Discover => self.discover_us,
            Stage::Select => self.select_us,
            Stage::Radio => self.radio_us,
            Stage::Exec => self.exec_us,
            Stage::Return => self.return_us,
        }
    }

    /// Sum of the five stages — equal to `total_us` by construction.
    pub fn stages_total_us(&self) -> u64 {
        Stage::ALL.iter().map(|&s| self.stage_us(s)).sum()
    }
}

/// Microseconds from `a` to `b` (zero if `b` precedes `a`).
fn us_between(a: SimTime, b: SimTime) -> u64 {
    b.saturating_since(a).as_nanos() / 1_000
}

/// Clamped-remainder partition of `[submitted, completed]` given the
/// critical chain's boundary times. Each stage is capped by what is left
/// of the total, and `return` takes the remainder — so the stages always
/// sum exactly to the total, even on degenerate chains.
fn partition(
    task: u64,
    submitted: SimTime,
    first_offer: SimTime,
    offer_sent: SimTime,
    offer_delivered: SimTime,
    result_ready: SimTime,
    completed: SimTime,
) -> StageBudget {
    let total_us = us_between(submitted, completed);
    let mut rem = total_us;
    let discover_us = us_between(submitted, first_offer).min(rem);
    rem -= discover_us;
    let select_us = us_between(first_offer, offer_sent).min(rem);
    rem -= select_us;
    let radio_us = us_between(offer_sent, offer_delivered).min(rem);
    rem -= radio_us;
    let exec_us = us_between(offer_delivered, result_ready).min(rem);
    rem -= exec_us;
    StageBudget {
        task,
        total_us,
        discover_us,
        select_us,
        radio_us,
        exec_us,
        return_us: rem,
    }
}

/// One in-flight offer attempt at a specific executor.
#[derive(Clone, Copy, Debug, Default)]
struct Attempt {
    offer_sent: SimTime,
    offer_delivered: Option<SimTime>,
    result_ready: Option<SimTime>,
    offer_span: Option<SpanId>,
    exec_span: Option<SpanId>,
}

/// A result frame that actually made it back to the requester: the
/// attempt's boundary times snapshotted when the frame left the helper,
/// plus its arrival. The *last* delivered flight at completion time is
/// the winning chain — the same rule [`extract`] applies to the span
/// tree, so book and extractor agree by construction (an executor-keyed
/// lookup would not: a re-offer to the same executor overwrites the
/// attempt the result actually came from).
#[derive(Clone, Copy, Debug)]
struct Flight {
    offer_sent: SimTime,
    offer_delivered: SimTime,
    result_ready: SimTime,
    arrival: SimTime,
}

/// One in-flight query's book.
#[derive(Clone, Debug)]
struct Inflight {
    actor: u32,
    submitted: SimTime,
    first_offer: Option<SimTime>,
    attempts: BTreeMap<u32, Attempt>,
    flights: Vec<Flight>,
    /// The last attempt's offer span — a failover re-offer `follows_from`
    /// the attempt it replaces.
    last_offer_span: Option<SpanId>,
    root: Option<SpanId>,
}

/// The runner-facing tracker: an always-on deterministic stage book per
/// in-flight query, plus (when the passed [`SpanLog`] is enabled) the
/// per-query span tree. All integer virtual-time bookkeeping — never
/// wall clock, never RNG — so the stage columns it feeds are part of the
/// deterministic output surface.
#[derive(Clone, Debug, Default)]
pub struct QueryTracer {
    inflight: BTreeMap<u64, Inflight>,
    samples: Vec<StageBudget>,
}

impl QueryTracer {
    /// A fresh tracker.
    pub fn new() -> Self {
        QueryTracer::default()
    }

    /// Books a query submit; opens the root [`SpanKind::Query`] span.
    pub fn submit(&mut self, log: &mut SpanLog, task: u64, actor: u32, now: SimTime) {
        let root = log.open(SpanKind::Query, actor, task, now, None, None);
        self.inflight.insert(
            task,
            Inflight {
                actor,
                submitted: now,
                first_offer: None,
                attempts: BTreeMap::new(),
                flights: Vec::new(),
                last_offer_span: None,
                root,
            },
        );
    }

    /// Books one offer leaving the requester for `executor`, with the
    /// radio medium's verdict: `delivered` is the arrival time, or `None`
    /// when the frame was dropped. The first offer closes the discovery
    /// stage (recorded as a [`SpanKind::Discover`] child).
    pub fn offer_sent(
        &mut self,
        log: &mut SpanLog,
        task: u64,
        executor: u32,
        now: SimTime,
        delivered: Option<SimTime>,
    ) {
        let Some(entry) = self.inflight.get_mut(&task) else {
            return;
        };
        if entry.first_offer.is_none() {
            entry.first_offer = Some(now);
            log.record(
                SpanKind::Discover,
                entry.actor,
                task,
                entry.submitted,
                now,
                entry.root,
                None,
            );
        }
        let offer_span = log.open(
            SpanKind::OfferFlight,
            entry.actor,
            task,
            now,
            entry.root,
            entry.last_offer_span,
        );
        if let Some(id) = offer_span {
            match delivered {
                Some(at) => log.close(id, at),
                None => log.expire(id, now),
            }
            entry.last_offer_span = Some(id);
        }
        entry.attempts.insert(
            executor,
            Attempt {
                offer_sent: now,
                offer_delivered: delivered,
                result_ready: None,
                offer_span,
                exec_span: None,
            },
        );
    }

    /// Books the helper finishing execution: the offer was delivered at
    /// `now` (execution starts on delivery) and the result is ready at
    /// `ready`. Records the cross-node [`SpanKind::Exec`] span following
    /// from the offer flight that reached this executor.
    pub fn result_ready(
        &mut self,
        log: &mut SpanLog,
        task: u64,
        executor: u32,
        now: SimTime,
        ready: SimTime,
    ) {
        let Some(entry) = self.inflight.get_mut(&task) else {
            return;
        };
        let attempt = entry.attempts.entry(executor).or_insert(Attempt {
            offer_sent: now,
            offer_delivered: Some(now),
            result_ready: None,
            offer_span: None,
            exec_span: None,
        });
        attempt.result_ready = Some(ready);
        attempt.exec_span = log.record(
            SpanKind::Exec,
            executor,
            task,
            now,
            ready,
            entry.root,
            attempt.offer_span,
        );
    }

    /// Books the result frame leaving the helper, with the medium's
    /// verdict (`delivered` = arrival time at the requester, `None` =
    /// dropped). Records the [`SpanKind::ResultFlight`] span following
    /// from the execution that produced it.
    pub fn result_sent(
        &mut self,
        log: &mut SpanLog,
        task: u64,
        executor: u32,
        now: SimTime,
        delivered: Option<SimTime>,
    ) {
        let Some(entry) = self.inflight.get_mut(&task) else {
            return;
        };
        let attempt = entry.attempts.get(&executor).copied();
        let exec_span = attempt.and_then(|a| a.exec_span);
        if let Some(id) = log.open(
            SpanKind::ResultFlight,
            executor,
            task,
            now,
            entry.root,
            exec_span,
        ) {
            match delivered {
                Some(at) => log.close(id, at),
                None => log.expire(id, now),
            }
        }
        if let (Some(attempt), Some(arrival)) = (attempt, delivered) {
            if let (Some(offer_delivered), Some(result_ready)) =
                (attempt.offer_delivered, attempt.result_ready)
            {
                entry.flights.push(Flight {
                    offer_sent: attempt.offer_sent,
                    offer_delivered,
                    result_ready,
                    arrival,
                });
            }
        }
    }

    /// Books completion: closes the root span, records the
    /// [`SpanKind::Select`] child (first offer → winning offer, now that
    /// the winner is known) and returns the query's stage budget — or
    /// `None` for tasks this tracer never saw submitted (non-offload
    /// strategies), which the caller books via [`StageBudget::all_exec`].
    ///
    /// The budget is **not** pushed to [`Self::samples`]; call
    /// [`Self::push_sample`] with the final budget so the sample list
    /// covers every completion in order.
    pub fn complete(&mut self, log: &mut SpanLog, task: u64, now: SimTime) -> Option<StageBudget> {
        let entry = self.inflight.remove(&task)?;
        if let Some(root) = entry.root {
            log.close(root, now);
        }
        // The winning chain is the last result flight delivered by
        // completion time — the same rule `extract` applies to the span
        // tree, so the book and the extractor agree by construction.
        let winner = entry
            .flights
            .iter()
            .filter(|f| f.arrival <= now)
            .max_by_key(|f| f.arrival)
            .copied();
        let total_us = us_between(entry.submitted, now);
        let budget = match (entry.first_offer, winner) {
            (Some(first), Some(win)) => {
                if log.is_enabled() {
                    log.record(
                        SpanKind::Select,
                        entry.actor,
                        task,
                        first,
                        win.offer_sent.max(first),
                        entry.root,
                        None,
                    );
                }
                partition(
                    task,
                    entry.submitted,
                    first,
                    win.offer_sent,
                    win.offer_delivered,
                    win.result_ready,
                    now,
                )
            }
            _ => StageBudget::all_exec(task, total_us),
        };
        Some(budget)
    }

    /// Books a failed/expired query: the root span expires at `now`, and
    /// no stage sample is recorded (the columns decompose *completed*
    /// latency, mirroring `latencies_ms`).
    pub fn fail(&mut self, log: &mut SpanLog, task: u64, now: SimTime) {
        if let Some(entry) = self.inflight.remove(&task) {
            if let Some(root) = entry.root {
                log.expire(root, now);
            }
        }
    }

    /// Appends one completed query's budget to the sample list (in
    /// completion order — the percentile inputs for the report columns).
    pub fn push_sample(&mut self, budget: StageBudget) {
        self.samples.push(budget);
    }

    /// End-of-run sweep: queries still in flight at the horizon expire
    /// their root spans there, and any other leaked span is expired too.
    pub fn finish(&mut self, log: &mut SpanLog, horizon: SimTime) {
        let leftover: Vec<u64> = self.inflight.keys().copied().collect();
        for task in leftover {
            self.fail(log, task, horizon);
        }
        log.expire_open(horizon);
    }

    /// Every completed query's budget, in completion order.
    pub fn samples(&self) -> &[StageBudget] {
        &self.samples
    }
}

/// Recomputes a completed query's stage budget purely from its recorded
/// span tree: the deterministic critical-path extractor behind
/// `sweep explain`. Returns `None` when the log has no *closed*
/// [`SpanKind::Query`] root for `task` (never submitted with spans on,
/// or expired). Equal to the [`QueryTracer`] book for the same run —
/// property-pinned in the scenario tests.
pub fn extract(spans: &[Span], task: u64) -> Option<StageBudget> {
    let root = spans
        .iter()
        .find(|s| s.task == task && s.kind == SpanKind::Query && s.status == SpanStatus::Closed)?;
    let completed = root.end?;
    let total_us = us_between(root.start, completed);
    // The winning chain: the last result flight delivered by completion
    // time (its delivery is what completed the query).
    let winner_flight = spans
        .iter()
        .filter(|s| {
            s.task == task
                && s.kind == SpanKind::ResultFlight
                && s.status == SpanStatus::Closed
                && s.end.is_some_and(|end| end <= completed)
        })
        .max_by_key(|s| (s.end, s.id));
    let by_id = |id: Option<u64>| id.and_then(|id| spans.iter().find(|s| s.id == id));
    let exec = winner_flight.and_then(|f| by_id(f.follows_from));
    let offer = exec.and_then(|e| by_id(e.follows_from));
    let discover = spans
        .iter()
        .find(|s| s.task == task && s.kind == SpanKind::Discover);
    let budget = match (discover, offer, exec) {
        (Some(d), Some(o), Some(e)) => {
            partition(task, root.start, d.end?, o.start, o.end?, e.end?, completed)
        }
        _ => StageBudget::all_exec(task, total_us),
    };
    Some(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn partition_sums_exactly_and_clamps() {
        let b = partition(1, t(0), t(2), t(5), t(6), t(40), t(45));
        assert_eq!(b.total_us, 45_000);
        assert_eq!(b.discover_us, 2_000);
        assert_eq!(b.select_us, 3_000);
        assert_eq!(b.radio_us, 1_000);
        assert_eq!(b.exec_us, 34_000);
        assert_eq!(b.return_us, 5_000);
        assert_eq!(b.stages_total_us(), b.total_us);

        // Degenerate chain: boundaries past the completion still sum.
        let b = partition(2, t(0), t(80), t(90), t(95), t(99), t(50));
        assert_eq!(b.stages_total_us(), b.total_us);
        assert_eq!(b.total_us, 50_000);
        assert_eq!(b.discover_us, 50_000);
        assert_eq!(b.return_us, 0);
    }

    #[test]
    fn all_exec_is_a_partition_too() {
        let b = StageBudget::all_exec(9, 1_234);
        assert_eq!(b.stages_total_us(), 1_234);
        assert_eq!(b.exec_us, 1_234);
        assert_eq!(b.stage_us(Stage::Radio), 0);
    }

    /// Play a two-attempt query (first offer dropped, failover wins)
    /// through the tracer with spans on: the book's budget, the span
    /// tree's extracted budget, and the well-formedness contract must all
    /// agree.
    #[test]
    fn tracer_and_extractor_agree_on_a_failover_query() {
        let mut log = SpanLog::enabled();
        let mut tracer = QueryTracer::new();
        tracer.submit(&mut log, 7, 1, t(0));
        tracer.offer_sent(&mut log, 7, 20, t(3), None); // dropped
        tracer.offer_sent(&mut log, 7, 21, t(10), Some(t(11)));
        tracer.result_ready(&mut log, 7, 21, t(11), t(30));
        tracer.result_sent(&mut log, 7, 21, t(30), Some(t(32)));
        let book = tracer.complete(&mut log, 7, t(32)).expect("tracked");
        tracer.push_sample(book);
        tracer.finish(&mut log, t(100));

        assert_eq!(book.total_us, 32_000);
        assert_eq!(book.discover_us, 3_000); // submit → first offer
        assert_eq!(book.select_us, 7_000); // first → winning offer
        assert_eq!(book.radio_us, 1_000);
        assert_eq!(book.exec_us, 19_000);
        assert_eq!(book.return_us, 2_000);
        assert_eq!(book.stages_total_us(), book.total_us);

        crate::span::validate_spans(log.spans()).expect("well-formed");
        let extracted = extract(log.spans(), 7).expect("closed root");
        assert_eq!(extracted, book);
        // The dropped first offer expired; the failover offer follows
        // from it.
        let flights: Vec<_> = log
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::OfferFlight)
            .collect();
        assert_eq!(flights.len(), 2);
        assert_eq!(flights[0].status, SpanStatus::Expired);
        assert_eq!(flights[1].follows_from, Some(flights[0].id));
        assert_eq!(tracer.samples(), &[book]);
    }

    #[test]
    fn untracked_tasks_fall_back_to_all_exec() {
        let mut log = SpanLog::disabled();
        let mut tracer = QueryTracer::new();
        assert!(tracer.complete(&mut log, 99, t(5)).is_none());
        tracer.fail(&mut log, 99, t(5)); // no-op
        assert!(log.is_empty());
    }

    #[test]
    fn expired_queries_leave_expired_roots_and_no_samples() {
        let mut log = SpanLog::enabled();
        let mut tracer = QueryTracer::new();
        tracer.submit(&mut log, 1, 1, t(0));
        tracer.submit(&mut log, 2, 1, t(1));
        tracer.fail(&mut log, 1, t(9));
        tracer.finish(&mut log, t(63)); // task 2 still in flight
        crate::span::validate_spans(log.spans()).expect("well-formed");
        let roots: Vec<_> = log
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Query)
            .collect();
        assert_eq!(roots.len(), 2);
        assert!(roots.iter().all(|r| r.status == SpanStatus::Expired));
        assert!(tracer.samples().is_empty());
        assert!(
            extract(log.spans(), 1).is_none(),
            "expired roots extract to None"
        );
    }
}
