//! The deterministic metrics registry.
//!
//! Counters and histograms here are part of the *deterministic output
//! surface*: they hold only integers, never read a wall clock, and
//! iterate in `BTreeMap` order, so two runs with the same seed produce
//! byte-identical registries regardless of thread count or telemetry
//! settings. G4's per-ego fairness columns are computed from this
//! registry rather than from ad-hoc bookkeeping in the runner.

use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::fmt;

/// What a metric is keyed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// A run-wide metric.
    Global,
    /// A metric attributed to one node address.
    Node(u32),
    /// A metric attributed to one ego (query origin) index.
    Ego(u32),
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Global => f.write_str("global"),
            Scope::Node(n) => write!(f, "node#{n}"),
            Scope::Ego(e) => write!(f, "ego#{e}"),
        }
    }
}

/// A fixed-bucket latency histogram over microseconds.
///
/// Bucket bounds follow a 1-2-5 decade ladder from 100 µs to 50 s; the
/// ladder is compiled in, so histograms from different runs (or shards)
/// are always mergeable and quantiles are deterministic. A reported
/// quantile is the *upper bound* of the bucket containing it — a
/// conservative, reproducible answer rather than an interpolated one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: u64,
}

/// Bucket upper bounds in microseconds (1-2-5 ladder, 100 µs .. 50 s).
pub const BUCKET_BOUNDS_US: [u64; 18] = [
    100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000, 50_000_000,
];

impl FixedHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        FixedHistogram {
            counts: vec![0; BUCKET_BOUNDS_US.len() + 1],
            total: 0,
            sum_us: 0,
        }
    }

    /// Records one observation in microseconds.
    pub fn observe_us(&mut self, value_us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| value_us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_us = self.sum_us.saturating_add(value_us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// The deterministic quantile: the upper bound (in µs) of the bucket
    /// containing quantile `q` in `[0, 1]`. Observations beyond the last
    /// bound report that last bound. Returns `None` on an empty
    /// histogram.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(
                    BUCKET_BOUNDS_US
                        .get(idx)
                        .copied()
                        .unwrap_or(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]),
                );
            }
        }
        Some(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1])
    }

    /// Merges another histogram into this one (same compiled-in ladder).
    pub fn merge(&mut self, other: &FixedHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

impl Default for FixedHistogram {
    fn default() -> Self {
        FixedHistogram::new()
    }
}

/// Integer counters and fixed-bucket histograms keyed by name and scope.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<(String, Scope), u64>,
    histograms: BTreeMap<(String, Scope), FixedHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the counter `name` at `scope`.
    pub fn add(&mut self, name: &str, scope: Scope, delta: u64) {
        if let Some(existing) = self.counters.get_mut(&(name.to_string(), scope)) {
            *existing += delta;
        } else {
            self.counters.insert((name.to_string(), scope), delta);
        }
    }

    /// Increments the counter `name` at `scope` by one.
    pub fn inc(&mut self, name: &str, scope: Scope) {
        self.add(name, scope, 1);
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str, scope: Scope) -> u64 {
        self.counters
            .get(&(name.to_string(), scope))
            .copied()
            .unwrap_or(0)
    }

    /// Records one histogram observation in microseconds.
    pub fn observe_us(&mut self, name: &str, scope: Scope, value_us: u64) {
        self.histograms
            .entry((name.to_string(), scope))
            .or_default()
            .observe_us(value_us);
    }

    /// Reads a histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str, scope: Scope) -> Option<&FixedHistogram> {
        self.histograms.get(&(name.to_string(), scope))
    }

    /// All scopes of a given counter name, in scope order.
    pub fn scopes_of(&self, name: &str) -> Vec<Scope> {
        self.counters
            .keys()
            .filter(|(n, _)| n == name)
            .map(|&(_, scope)| scope)
            .collect()
    }

    /// Number of distinct (name, scope) counter cells.
    pub fn len(&self) -> usize {
        self.counters.len() + self.histograms.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders the registry as a stable JSON object: counters and
    /// histogram summaries keyed `"name@scope"`, in `BTreeMap` order.
    pub fn to_json(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .iter()
            .map(|((name, scope), value)| (format!("{name}@{scope}"), json!(value)))
            .collect();
        let histograms: Vec<(String, Value)> = self
            .histograms
            .iter()
            .map(|((name, scope), hist)| {
                (
                    format!("{name}@{scope}"),
                    json!({
                        "count": hist.count(),
                        "sum_us": hist.sum_us(),
                        "p50_us": hist.quantile_us(0.50),
                        "p95_us": hist.quantile_us(0.95),
                    }),
                )
            })
            .collect();
        json!({
            "counters": Value::Object(counters),
            "histograms": Value::Object(histograms),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_scope() {
        let mut reg = Registry::new();
        reg.inc("tasks_completed", Scope::Ego(0));
        reg.inc("tasks_completed", Scope::Ego(0));
        reg.inc("tasks_completed", Scope::Ego(1));
        reg.add("bytes", Scope::Node(3), 120);
        assert_eq!(reg.counter("tasks_completed", Scope::Ego(0)), 2);
        assert_eq!(reg.counter("tasks_completed", Scope::Ego(1)), 1);
        assert_eq!(reg.counter("tasks_completed", Scope::Ego(2)), 0);
        assert_eq!(reg.counter("bytes", Scope::Node(3)), 120);
        assert_eq!(
            reg.scopes_of("tasks_completed"),
            vec![Scope::Ego(0), Scope::Ego(1)]
        );
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds() {
        let mut h = FixedHistogram::new();
        for value in [150, 150, 150, 40_000] {
            h.observe_us(value);
        }
        assert_eq!(h.count(), 4);
        // Three of four observations land in the (100, 200] bucket.
        assert_eq!(h.quantile_us(0.50), Some(200));
        assert_eq!(h.quantile_us(0.95), Some(50_000));
        assert_eq!(FixedHistogram::new().quantile_us(0.5), None);
    }

    #[test]
    fn overflow_observations_clamp_to_last_bound() {
        let mut h = FixedHistogram::new();
        h.observe_us(90_000_000);
        assert_eq!(h.quantile_us(1.0), Some(50_000_000));
    }

    #[test]
    fn merge_is_count_preserving() {
        let mut a = FixedHistogram::new();
        let mut b = FixedHistogram::new();
        a.observe_us(150);
        b.observe_us(400);
        b.observe_us(90_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_us(), 150 + 400 + 90_000_000);
    }

    #[test]
    fn json_render_is_stable_and_scoped() {
        let mut reg = Registry::new();
        reg.inc("joins", Scope::Global);
        reg.observe_us("task_latency_us", Scope::Ego(0), 1_500);
        let rendered = serde_json::to_string(&reg.to_json()).unwrap();
        assert!(rendered.contains("\"joins@global\":1"));
        assert!(rendered.contains("\"task_latency_us@ego#0\""));
    }
}
