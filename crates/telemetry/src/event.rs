//! The typed event schema.
//!
//! Every protocol-visible thing the simulation driver used to describe
//! with a free-form `"area: detail"` trace label is one [`EventKind`]
//! variant carrying plain integers — cheap to construct, total-ordered to
//! serialize, and byte-exact through the JSONL exporter. [`Event`] stamps
//! a kind with its virtual time and the node (or ego) it concerns.

use airdnd_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ring the event is recorded into (one bounded ring per category,
/// so a flood of wire frames can never evict the lifecycle history).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventCategory {
    /// Mesh membership: joins and leaves (including lease expiries).
    Mesh,
    /// Radio frames: transmissions, deliveries and drops.
    Frame,
    /// Task lifecycle: submit, offload, complete, expire.
    Task,
    /// Fleet lifecycle: mid-run vehicle spawns and despawns.
    Lifecycle,
    /// Perception demand: a query origin's task generator firing.
    Demand,
}

impl EventCategory {
    /// Every category, in ring order.
    pub const ALL: [EventCategory; 5] = [
        EventCategory::Mesh,
        EventCategory::Frame,
        EventCategory::Task,
        EventCategory::Lifecycle,
        EventCategory::Demand,
    ];

    /// This category's ring index.
    pub fn index(self) -> usize {
        match self {
            EventCategory::Mesh => 0,
            EventCategory::Frame => 1,
            EventCategory::Task => 2,
            EventCategory::Lifecycle => 3,
            EventCategory::Demand => 4,
        }
    }

    /// The label prefix the legacy string trace used for this category.
    pub fn prefix(self) -> &'static str {
        match self {
            EventCategory::Mesh => "mesh:",
            EventCategory::Frame => "wire:",
            EventCategory::Task => "task:",
            EventCategory::Lifecycle => "lifecycle:",
            EventCategory::Demand => "demand:",
        }
    }
}

impl fmt::Display for EventCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EventCategory::Mesh => "mesh",
            EventCategory::Frame => "frame",
            EventCategory::Task => "task",
            EventCategory::Lifecycle => "lifecycle",
            EventCategory::Demand => "demand",
        };
        f.write_str(name)
    }
}

/// Why a frame never reached its destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// Lost on the channel (range, obstacle shadowing, retry budget).
    Channel,
    /// Shed by the bounded MAC transmit queue
    /// (`ScenarioConfig::radio_queue_cap`) before ever going on air.
    QueueCap,
    /// The destination address does not exist (stale advert).
    Unreachable,
}

impl DropReason {
    /// Lower-case label used in rendered traces and exports.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::Channel => "channel",
            DropReason::QueueCap => "queue-cap",
            DropReason::Unreachable => "unreachable",
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One typed simulation event.
///
/// All payloads are plain integers: node addresses (`u32`), task ids and
/// byte counts (`u64`), ego indices (`u32`). `to: None` on a
/// [`EventKind::FrameTx`] means a broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A node joined the mesh (observed via its membership protocol).
    MeshJoin {
        /// The joining node.
        node: u32,
    },
    /// A node left the mesh — gracefully or by lease expiry.
    MeshLeave {
        /// The leaving node.
        node: u32,
    },
    /// A frame was put on the air (`to: None` is a broadcast).
    FrameTx {
        /// Transmitting node.
        from: u32,
        /// Unicast destination, or `None` for a broadcast.
        to: Option<u32>,
        /// On-air payload size.
        bytes: u64,
    },
    /// A frame was delivered.
    FrameRx {
        /// Transmitting node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// On-air payload size.
        bytes: u64,
    },
    /// A frame was dropped before reaching its destination (`to: None`
    /// for a broadcast shed by the MAC queue).
    FrameDrop {
        /// Transmitting node.
        from: u32,
        /// Intended destination, or `None` for a broadcast.
        to: Option<u32>,
        /// On-air payload size.
        bytes: u64,
        /// Why the frame never arrived.
        reason: DropReason,
    },
    /// A query origin submitted a perception task to the orchestrator.
    TaskSubmit {
        /// Task id.
        task: u64,
        /// Submitting ego index.
        ego: u32,
    },
    /// The orchestrator offered a task to an executor.
    TaskOffload {
        /// Task id.
        task: u64,
        /// The executor the offer targets.
        executor: u32,
    },
    /// A task produced a usable view.
    TaskComplete {
        /// Task id.
        task: u64,
        /// Owning ego index.
        ego: u32,
        /// End-to-end latency, microseconds of virtual time.
        latency_us: u64,
    },
    /// A task failed or missed its deadline.
    TaskExpire {
        /// Task id.
        task: u64,
        /// Owning ego index.
        ego: u32,
    },
    /// A vehicle arrived mid-run (fleet schedule).
    LifecycleSpawn {
        /// The arriving node.
        node: u32,
    },
    /// A vehicle departed mid-run (fleet schedule).
    LifecycleDespawn {
        /// The departing node.
        node: u32,
        /// `true` for a graceful leave, `false` for an abrupt drop.
        graceful: bool,
    },
    /// A query origin's demand profile fired.
    DemandFire {
        /// The firing ego index.
        ego: u32,
        /// Ordinal of the demand at this ego (1-based).
        task: u64,
    },
}

impl EventKind {
    /// The ring this kind is recorded into.
    pub fn category(&self) -> EventCategory {
        match self {
            EventKind::MeshJoin { .. } | EventKind::MeshLeave { .. } => EventCategory::Mesh,
            EventKind::FrameTx { .. } | EventKind::FrameRx { .. } | EventKind::FrameDrop { .. } => {
                EventCategory::Frame
            }
            EventKind::TaskSubmit { .. }
            | EventKind::TaskOffload { .. }
            | EventKind::TaskComplete { .. }
            | EventKind::TaskExpire { .. } => EventCategory::Task,
            EventKind::LifecycleSpawn { .. } | EventKind::LifecycleDespawn { .. } => {
                EventCategory::Lifecycle
            }
            EventKind::DemandFire { .. } => EventCategory::Demand,
        }
    }
}

impl fmt::Display for EventKind {
    /// Renders the kind in the legacy `"area: detail"` label style, so
    /// `sweep --trace N` output stays familiar and prefix-greppable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EventKind::MeshJoin { node } => write!(f, "mesh: node#{node} joined"),
            EventKind::MeshLeave { node } => write!(f, "mesh: node#{node} left"),
            EventKind::FrameTx {
                from,
                to: Some(to),
                bytes,
            } => write!(f, "wire: node#{from} -> node#{to} tx ({bytes} B)"),
            EventKind::FrameTx {
                from,
                to: None,
                bytes,
            } => write!(f, "wire: node#{from} broadcast ({bytes} B)"),
            EventKind::FrameRx { from, to, bytes } => {
                write!(f, "wire: node#{from} -> node#{to} ({bytes} B)")
            }
            EventKind::FrameDrop {
                from,
                to: Some(to),
                bytes,
                reason,
            } => {
                write!(
                    f,
                    "wire: node#{from} -> node#{to} dropped ({bytes} B, {reason})"
                )
            }
            EventKind::FrameDrop {
                from,
                to: None,
                bytes,
                reason,
            } => {
                write!(
                    f,
                    "wire: node#{from} broadcast dropped ({bytes} B, {reason})"
                )
            }
            EventKind::TaskSubmit { task, ego } => {
                write!(f, "task: #{task} submitted by ego#{ego}")
            }
            EventKind::TaskOffload { task, executor } => {
                write!(f, "task: #{task} offered to node#{executor}")
            }
            EventKind::TaskComplete {
                task,
                ego,
                latency_us,
            } => write!(
                f,
                "task: #{task} completed for ego#{ego} after {} ms",
                latency_us as f64 / 1_000.0
            ),
            EventKind::TaskExpire { task, ego } => {
                write!(f, "task: #{task} expired at ego#{ego}")
            }
            EventKind::LifecycleSpawn { node } => {
                write!(f, "lifecycle: node#{node} spawned")
            }
            EventKind::LifecycleDespawn { node, graceful } => write!(
                f,
                "lifecycle: node#{node} despawned ({})",
                if graceful { "graceful" } else { "abrupt" }
            ),
            EventKind::DemandFire { ego, task } => {
                write!(f, "demand: task {task} due at ego#{ego}")
            }
        }
    }
}

/// One recorded event: a kind stamped with virtual time and the node (or
/// ego) it primarily concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual time of the event.
    pub time: SimTime,
    /// The node address (or ego index, for demand events) the event is
    /// attributed to.
    pub actor: u32,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] actor#{} {}", self.time, self.actor, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_their_category() {
        assert_eq!(
            EventKind::MeshJoin { node: 1 }.category(),
            EventCategory::Mesh
        );
        assert_eq!(
            EventKind::FrameDrop {
                from: 1,
                to: Some(2),
                bytes: 3,
                reason: DropReason::QueueCap
            }
            .category(),
            EventCategory::Frame
        );
        assert_eq!(
            EventKind::TaskExpire { task: 9, ego: 0 }.category(),
            EventCategory::Task
        );
        assert_eq!(
            EventKind::LifecycleSpawn { node: 7 }.category(),
            EventCategory::Lifecycle
        );
        assert_eq!(
            EventKind::DemandFire { ego: 0, task: 1 }.category(),
            EventCategory::Demand
        );
    }

    #[test]
    fn display_keeps_the_legacy_prefixes() {
        for (kind, prefix) in [
            (EventKind::MeshJoin { node: 4 }, "mesh:"),
            (
                EventKind::FrameRx {
                    from: 1,
                    to: 2,
                    bytes: 64,
                },
                "wire:",
            ),
            (EventKind::TaskSubmit { task: 1, ego: 0 }, "task:"),
            (EventKind::LifecycleSpawn { node: 9 }, "lifecycle:"),
            (EventKind::DemandFire { ego: 0, task: 2 }, "demand:"),
        ] {
            assert!(
                kind.to_string().starts_with(prefix),
                "{kind} should start with {prefix}"
            );
            assert!(kind.to_string().starts_with(kind.category().prefix()));
        }
    }

    #[test]
    fn event_display_matches_the_trace_entry_shape() {
        let e = Event {
            time: SimTime::from_millis(1),
            actor: 3,
            kind: EventKind::MeshJoin { node: 3 },
        };
        assert_eq!(e.to_string(), "[t=0.001000s] actor#3 mesh: node#3 joined");
    }
}
