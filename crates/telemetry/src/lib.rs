//! # airdnd-telemetry — structured observability for the simulation
//!
//! The paper's claims are about *dynamics* — asynchronous joins and
//! leaves, in-range handoffs, task offload under churn — so the window
//! into a run must be richer than a free-form string trace. This crate is
//! that window, in five pieces:
//!
//! * [`Event`]/[`EventKind`] — a typed schema for everything the driver
//!   used to describe with `"area: detail"` labels: mesh join/leave,
//!   frame tx/rx/drop, task submit/offload/complete/expire, lifecycle
//!   spawn/despawn, demand fire.
//! * [`EventLog`] — a bounded per-category ring the events are recorded
//!   into. Recording is a no-op when the log is disabled, and recording
//!   never touches simulation state, RNG streams or scheduling, so a run
//!   with telemetry on reports **byte-identical** results to one with
//!   telemetry off.
//! * [`Registry`] — a deterministic metrics registry: integer counters
//!   and fixed-bucket histograms keyed per node and per ego. No wall
//!   clock, no floats on the recording path — the registry is part of
//!   the deterministic output surface (per-ego fairness in G4 reads from
//!   it).
//! * [`export`] — a JSONL event log (one object per line, byte-exact
//!   round-trip) and a Chrome-trace/Perfetto-compatible timeline, both
//!   pure functions of the event log (sim time only, stable ordering).
//! * [`TraceQuery`] — a matcher API over the recorded events (filter by
//!   kind/category/actor/time window, assert ordering), so tests stop
//!   grepping substrings out of rendered traces.
//!
//! [`PhaseProfiler`] is the one deliberate exception to determinism: it
//! attributes *wall-clock* to engine phases (movement, radio, mesh,
//! tasks) for `BENCH_engine.json`. It never feeds an artifact that is
//! diffed for byte identity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical_path;
pub mod event;
pub mod export;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod query;
pub mod span;

pub use critical_path::{extract, QueryTracer, Stage, StageBudget};
pub use event::{DropReason, Event, EventCategory, EventKind};
pub use log::{EventLog, Recorded};
pub use metrics::{FixedHistogram, Registry, Scope};
pub use profile::{Phase, PhaseProfiler};
pub use query::TraceQuery;
pub use span::{validate_spans, Span, SpanId, SpanKind, SpanLog, SpanStatus};

use airdnd_sim::SimTime;

/// What a run should capture, beyond the always-on metrics registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryOptions {
    /// Record typed events into a per-category ring of this capacity
    /// (`None` keeps the event log disabled — the zero-cost default).
    pub events: Option<usize>,
    /// Attribute wall-clock to engine phases (see [`PhaseProfiler`]).
    /// Wall-clock only; never part of a deterministic artifact.
    pub profile: bool,
    /// Record per-query causal span trees (see [`SpanLog`]). Like the
    /// event log, span recording never perturbs the run — reports are
    /// byte-identical with spans on or off.
    pub spans: bool,
}

impl TelemetryOptions {
    /// Default per-category ring capacity used by [`Self::from_env`] and
    /// the CLI exporters when no explicit capacity is given.
    pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

    /// Options with event recording enabled at `capacity` entries per
    /// category.
    pub fn events(capacity: usize) -> Self {
        TelemetryOptions {
            events: Some(capacity),
            profile: false,
            spans: false,
        }
    }

    /// The same options with span recording switched on.
    pub fn with_spans(self) -> Self {
        TelemetryOptions {
            spans: true,
            ..self
        }
    }

    /// Reads the `AIRDND_TELEMETRY` environment variable: unset means
    /// disabled, a number is a per-category ring capacity, any other
    /// non-empty value enables the default capacity. The companion
    /// `AIRDND_TELEMETRY_SPANS` variable (any non-empty value other than
    /// `0`) additionally turns on span recording. CI uses these to prove
    /// non-perturbation by diffing artifacts produced with the variables
    /// set against artifacts produced without them.
    pub fn from_env() -> Self {
        let spans = match std::env::var("AIRDND_TELEMETRY_SPANS") {
            Err(_) => false,
            Ok(value) => !(value.is_empty() || value == "0"),
        };
        let base = match std::env::var("AIRDND_TELEMETRY") {
            Err(_) => TelemetryOptions::default(),
            Ok(value) if value.is_empty() || value == "0" => TelemetryOptions::default(),
            Ok(value) => TelemetryOptions {
                events: Some(
                    value
                        .parse::<usize>()
                        .unwrap_or(Self::DEFAULT_EVENT_CAPACITY),
                ),
                profile: false,
                spans: false,
            },
        };
        TelemetryOptions { spans, ..base }
    }
}

/// Everything one observed run captures: the typed event log, the
/// deterministic metrics registry and the (wall-clock) phase profile.
///
/// The registry is always populated — it is deterministic integer state
/// and some report fields derive from it — while the event log and the
/// profiler obey [`TelemetryOptions`].
#[derive(Clone, Debug)]
pub struct RunTelemetry {
    /// Typed events, recorded when enabled.
    pub events: EventLog,
    /// Deterministic counters and histograms (always on).
    pub metrics: Registry,
    /// Wall-clock phase attribution, recorded when enabled.
    pub phases: PhaseProfiler,
    /// Per-query causal span trees, recorded when enabled.
    pub spans: SpanLog,
}

impl RunTelemetry {
    /// Telemetry with everything but the metrics registry off.
    pub fn disabled() -> Self {
        RunTelemetry {
            events: EventLog::disabled(),
            metrics: Registry::new(),
            phases: PhaseProfiler::disabled(),
            spans: SpanLog::disabled(),
        }
    }

    /// Telemetry configured by `opts` (the registry is always on).
    pub fn with(opts: TelemetryOptions) -> Self {
        RunTelemetry {
            events: match opts.events {
                Some(capacity) => EventLog::bounded(capacity),
                None => EventLog::disabled(),
            },
            metrics: Registry::new(),
            phases: if opts.profile {
                PhaseProfiler::enabled()
            } else {
                PhaseProfiler::disabled()
            },
            spans: if opts.spans {
                SpanLog::enabled()
            } else {
                SpanLog::disabled()
            },
        }
    }

    /// Records one typed event (no-op when the event log is disabled).
    pub fn event(&mut self, time: SimTime, actor: u32, kind: EventKind) {
        self.events.record(time, actor, kind);
    }
}

impl Default for RunTelemetry {
    fn default() -> Self {
        RunTelemetry::disabled()
    }
}
