//! A matcher API over recorded events.
//!
//! Tests used to grep substrings out of a rendered trace (`"lifecycle:"`,
//! `"despawned (graceful)"`), which breaks silently when a label changes
//! and cannot express ordering. [`TraceQuery`] filters typed events by
//! category, actor, time window, or an arbitrary predicate, and
//! [`TraceQuery::precedes`] asserts that one set of events happens before
//! another using the global record sequence.

use crate::event::EventCategory;
use crate::log::Recorded;
use airdnd_sim::SimTime;

/// Type of the boxed event predicate used by [`TraceQuery::matching`].
pub type EventPredicate<'a> = Box<dyn Fn(&Recorded) -> bool + 'a>;

/// A filtered view over a list of recorded events.
///
/// Queries are cheap value types built from an owned snapshot of the
/// log; every combinator narrows the view and returns `self`, so
/// assertions chain: `log.query().category(Mesh).actor(3).exists()`.
pub struct TraceQuery<'a> {
    events: Vec<Recorded>,
    predicates: Vec<EventPredicate<'a>>,
}

impl<'a> TraceQuery<'a> {
    /// A query over a snapshot of recorded events (recording order).
    pub fn over(events: Vec<Recorded>) -> Self {
        TraceQuery {
            events,
            predicates: Vec::new(),
        }
    }

    /// Keeps only events of `category`.
    pub fn category(mut self, category: EventCategory) -> Self {
        self.predicates
            .push(Box::new(move |r| r.event.kind.category() == category));
        self
    }

    /// Keeps only events attributed to `actor`.
    pub fn actor(mut self, actor: u32) -> Self {
        self.predicates
            .push(Box::new(move |r| r.event.actor == actor));
        self
    }

    /// Keeps only events at or after `time`.
    pub fn since(mut self, time: SimTime) -> Self {
        self.predicates
            .push(Box::new(move |r| r.event.time >= time));
        self
    }

    /// Keeps only events strictly before `time`.
    pub fn until(mut self, time: SimTime) -> Self {
        self.predicates.push(Box::new(move |r| r.event.time < time));
        self
    }

    /// Keeps only events matching an arbitrary predicate (typically a
    /// `matches!` over [`crate::EventKind`]).
    pub fn matching(mut self, pred: impl Fn(&Recorded) -> bool + 'a) -> Self {
        self.predicates.push(Box::new(pred));
        self
    }

    fn keeps(&self, recorded: &Recorded) -> bool {
        self.predicates.iter().all(|p| p(recorded))
    }

    /// All matching events, in recording order.
    pub fn all(&self) -> Vec<Recorded> {
        self.events
            .iter()
            .filter(|r| self.keeps(r))
            .copied()
            .collect()
    }

    /// Number of matching events.
    pub fn count(&self) -> usize {
        self.events.iter().filter(|r| self.keeps(r)).count()
    }

    /// Whether at least one event matches.
    pub fn exists(&self) -> bool {
        self.events.iter().any(|r| self.keeps(r))
    }

    /// The earliest matching event, if any.
    pub fn first(&self) -> Option<Recorded> {
        self.events.iter().find(|r| self.keeps(r)).copied()
    }

    /// The latest matching event, if any.
    pub fn last(&self) -> Option<Recorded> {
        self.events.iter().rev().find(|r| self.keeps(r)).copied()
    }

    /// Whether this query's *first* match was recorded before `other`'s
    /// first match. Returns `false` if either side has no match — an
    /// ordering claim over absent events is vacuous and tests should
    /// assert existence separately first.
    pub fn precedes(&self, other: &TraceQuery) -> bool {
        match (self.first(), other.first()) {
            (Some(a), Some(b)) => a.seq < b.seq,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::log::EventLog;

    fn sample_log() -> EventLog {
        let mut log = EventLog::bounded(16);
        log.record(SimTime::from_millis(5), 1, EventKind::MeshJoin { node: 1 });
        log.record(
            SimTime::from_millis(7),
            0,
            EventKind::FrameTx {
                from: 0,
                to: Some(1),
                bytes: 120,
            },
        );
        log.record(
            SimTime::from_millis(8),
            1,
            EventKind::FrameRx {
                from: 0,
                to: 1,
                bytes: 120,
            },
        );
        log.record(
            SimTime::from_millis(20),
            1,
            EventKind::MeshLeave { node: 1 },
        );
        log
    }

    #[test]
    fn filters_compose() {
        let log = sample_log();
        assert_eq!(log.query().category(EventCategory::Frame).count(), 2);
        assert_eq!(
            log.query().category(EventCategory::Frame).actor(1).count(),
            1
        );
        assert_eq!(
            log.query().since(SimTime::from_millis(8)).count(),
            2,
            "since is inclusive"
        );
        assert_eq!(
            log.query().until(SimTime::from_millis(8)).count(),
            2,
            "until is exclusive"
        );
    }

    #[test]
    fn matching_takes_kind_patterns() {
        let log = sample_log();
        assert!(log
            .query()
            .matching(|r| matches!(r.event.kind, EventKind::MeshLeave { node: 1 }))
            .exists());
        assert!(!log
            .query()
            .matching(|r| matches!(r.event.kind, EventKind::MeshLeave { node: 2 }))
            .exists());
    }

    #[test]
    fn precedes_orders_first_matches() {
        let log = sample_log();
        let join = log
            .query()
            .matching(|r| matches!(r.event.kind, EventKind::MeshJoin { .. }));
        let rx = log
            .query()
            .matching(|r| matches!(r.event.kind, EventKind::FrameRx { .. }));
        assert!(join.precedes(&rx));
        assert!(!rx.precedes(&join));
        // Vacuous over an absent side.
        let none = log
            .query()
            .matching(|r| matches!(r.event.kind, EventKind::TaskSubmit { .. }));
        assert!(!none.precedes(&rx));
        assert!(!rx.precedes(&none));
    }

    #[test]
    fn first_and_last_bracket_the_run() {
        let log = sample_log();
        let q = log.query().actor(1);
        assert_eq!(q.first().unwrap().event.time, SimTime::from_millis(5));
        assert_eq!(q.last().unwrap().event.time, SimTime::from_millis(20));
    }
}
