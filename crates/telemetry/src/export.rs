//! Deterministic exporters: JSONL event logs and Chrome-trace timelines.
//!
//! Both exporters are pure functions of the recorded events — sim time
//! only, stable ordering, no wall clock — so the same seed always
//! produces the same bytes. The JSONL format round-trips byte-exactly
//! (serialize → parse → serialize is the identity), which
//! [`validate_jsonl`] checks line by line; CI uses it to validate
//! `sweep --trace-out` output against the schema.

use crate::event::EventKind;
use crate::log::Recorded;
use serde_json::{json, Value};
use std::fmt::Write as _;

/// Renders recorded events as JSONL: one JSON object per line, in
/// recording order, trailing newline included.
pub fn to_jsonl(events: &[Recorded]) -> String {
    let mut out = String::new();
    for recorded in events {
        let line = serde_json::to_string(recorded).expect("events always serialize");
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Parses a JSONL event log back into recorded events.
pub fn parse_jsonl(text: &str) -> Result<Vec<Recorded>, String> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let recorded: Recorded =
            serde_json::from_str(line).map_err(|err| format!("line {}: {err}", idx + 1))?;
        events.push(recorded);
    }
    Ok(events)
}

/// Validates a JSONL event log: every line must parse as a [`Recorded`]
/// event AND re-serialize to the exact same bytes (schema conformance
/// plus canonical formatting). Returns the number of valid events.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut last_seq: Option<u64> = None;
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let recorded: Recorded =
            serde_json::from_str(line).map_err(|err| format!("line {lineno}: {err}"))?;
        let reserialized =
            serde_json::to_string(&recorded).map_err(|err| format!("line {lineno}: {err}"))?;
        if reserialized != line {
            return Err(format!(
                "line {lineno}: not canonical — parsed event re-serializes differently"
            ));
        }
        if let Some(prev) = last_seq {
            if recorded.seq <= prev {
                return Err(format!(
                    "line {lineno}: seq {} out of order (previous {prev})",
                    recorded.seq
                ));
            }
        }
        last_seq = Some(recorded.seq);
        count += 1;
    }
    Ok(count)
}

/// Renders recorded events as a Chrome-trace / Perfetto JSON document.
///
/// Every event becomes an instant (`ph:"i"`) on its actor's track; task
/// submit→complete/expire pairs additionally become duration spans
/// (`ph:"X"`) on a per-ego task track, so offload latency is visible as
/// bar length. Timestamps are integer microseconds of *sim* time.
pub fn to_chrome_trace(events: &[Recorded], process_name: &str) -> Value {
    let mut trace_events = Vec::new();
    trace_events.push(json!({
        "name": "process_name",
        "ph": "M",
        "pid": 1u32,
        "tid": 0u32,
        "args": json!({"name": process_name}),
    }));

    // Instants: one per recorded event, tid = actor.
    for recorded in events {
        let event = &recorded.event;
        trace_events.push(json!({
            "name": event.kind.to_string(),
            "cat": event.kind.category().to_string(),
            "ph": "i",
            "s": "t",
            "ts": event.time.as_nanos() / 1_000,
            "pid": 1u32,
            "tid": event.actor,
            "args": json!({"seq": recorded.seq}),
        }));
    }

    // Spans: submit → complete/expire per task id.
    let mut open: Vec<(u64, u32, u64)> = Vec::new(); // (task, ego, start_us)
    for recorded in events {
        let ts_us = recorded.event.time.as_nanos() / 1_000;
        match recorded.event.kind {
            EventKind::TaskSubmit { task, ego } => open.push((task, ego, ts_us)),
            EventKind::TaskComplete { task, ego, .. } | EventKind::TaskExpire { task, ego } => {
                if let Some(pos) = open.iter().position(|&(t, _, _)| t == task) {
                    let (_, _, start_us) = open.remove(pos);
                    let done = matches!(recorded.event.kind, EventKind::TaskComplete { .. });
                    let outcome = if done { "complete" } else { "expire" };
                    trace_events.push(json!({
                        "name": format!("task#{task}"),
                        "cat": "task-span",
                        "ph": "X",
                        "ts": start_us,
                        "dur": ts_us.saturating_sub(start_us),
                        "pid": 1u32,
                        "tid": 100_000u64 + ego as u64,
                        "args": json!({"outcome": outcome}),
                    }));
                }
            }
            _ => {}
        }
    }

    json!({
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::log::EventLog;
    use airdnd_sim::SimTime;

    fn sample() -> Vec<Recorded> {
        let mut log = EventLog::bounded(16);
        log.record(SimTime::from_millis(1), 2, EventKind::MeshJoin { node: 2 });
        log.record(
            SimTime::from_millis(2),
            0,
            EventKind::TaskSubmit { task: 1, ego: 0 },
        );
        log.record(
            SimTime::from_millis(9),
            0,
            EventKind::TaskComplete {
                task: 1,
                ego: 0,
                latency_us: 7_000,
            },
        );
        log.record(
            SimTime::from_millis(10),
            0,
            EventKind::FrameTx {
                from: 0,
                to: None,
                bytes: 48,
            },
        );
        log.events()
    }

    #[test]
    fn jsonl_round_trips_byte_exactly() {
        let events = sample();
        let jsonl = to_jsonl(&events);
        let parsed = parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, events);
        assert_eq!(to_jsonl(&parsed), jsonl);
        assert_eq!(validate_jsonl(&jsonl).unwrap(), events.len());
    }

    #[test]
    fn validate_rejects_garbage_and_disorder() {
        assert!(validate_jsonl("not json\n").is_err());
        // Re-ordered lines violate the seq monotonicity check.
        let events = sample();
        let jsonl = to_jsonl(&events);
        let mut lines: Vec<&str> = jsonl.lines().collect();
        lines.swap(0, 1);
        assert!(validate_jsonl(&lines.join("\n")).is_err());
    }

    /// Pulls `field` out of a JSON object `Value` (the vendored `Value`
    /// has no `Index` impl).
    fn field<'v>(value: &'v Value, name: &str) -> &'v Value {
        match value {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("field {name} missing")),
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn chrome_trace_has_instants_and_task_spans() {
        let events = sample();
        let doc = to_chrome_trace(&events, "g3 quick");
        let entries = match field(&doc, "traceEvents") {
            Value::Array(items) => items.clone(),
            other => panic!("traceEvents not an array: {other:?}"),
        };
        // 1 metadata + 4 instants + 1 task span.
        assert_eq!(entries.len(), 6);
        let span = entries
            .iter()
            .find(|e| *field(e, "ph") == json!("X"))
            .expect("task span present");
        assert_eq!(*field(span, "ts"), json!(2_000u64));
        assert_eq!(*field(span, "dur"), json!(7_000u64));
        assert_eq!(*field(field(span, "args"), "outcome"), json!("complete"));
        let instants = entries
            .iter()
            .filter(|e| *field(e, "ph") == json!("i"))
            .count();
        assert_eq!(instants, 4);
    }

    #[test]
    fn exporters_are_deterministic() {
        let events = sample();
        assert_eq!(to_jsonl(&events), to_jsonl(&events));
        assert_eq!(
            serde_json::to_string(&to_chrome_trace(&events, "x")).unwrap(),
            serde_json::to_string(&to_chrome_trace(&events, "x")).unwrap()
        );
    }
}
