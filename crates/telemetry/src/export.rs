//! Deterministic exporters: JSONL event logs and Chrome-trace timelines.
//!
//! Both exporters are pure functions of the recorded events — sim time
//! only, stable ordering, no wall clock — so the same seed always
//! produces the same bytes. The JSONL format round-trips byte-exactly
//! (serialize → parse → serialize is the identity), which
//! [`validate_jsonl`] checks line by line; CI uses it to validate
//! `sweep --trace-out` output against the schema.

use crate::event::EventKind;
use crate::log::Recorded;
use crate::span::{validate_spans, Span, SpanKind};
use serde_json::{json, Value};
use std::fmt::Write as _;

/// Renders recorded events as JSONL: one JSON object per line, in
/// recording order, trailing newline included.
pub fn to_jsonl(events: &[Recorded]) -> String {
    let mut out = String::new();
    for recorded in events {
        let line = serde_json::to_string(recorded).expect("events always serialize");
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Parses a JSONL event log back into recorded events.
pub fn parse_jsonl(text: &str) -> Result<Vec<Recorded>, String> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let recorded: Recorded =
            serde_json::from_str(line).map_err(|err| format!("line {}: {err}", idx + 1))?;
        events.push(recorded);
    }
    Ok(events)
}

/// Validates a JSONL event log: every line must parse as a [`Recorded`]
/// event AND re-serialize to the exact same bytes (schema conformance
/// plus canonical formatting). Returns the number of valid events.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut last_seq: Option<u64> = None;
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let recorded: Recorded =
            serde_json::from_str(line).map_err(|err| format!("line {lineno}: {err}"))?;
        let reserialized =
            serde_json::to_string(&recorded).map_err(|err| format!("line {lineno}: {err}"))?;
        if reserialized != line {
            return Err(format!(
                "line {lineno}: not canonical — parsed event re-serializes differently"
            ));
        }
        if let Some(prev) = last_seq {
            if recorded.seq <= prev {
                return Err(format!(
                    "line {lineno}: seq {} out of order (previous {prev})",
                    recorded.seq
                ));
            }
        }
        last_seq = Some(recorded.seq);
        count += 1;
    }
    Ok(count)
}

/// Renders recorded events as a Chrome-trace / Perfetto JSON document.
///
/// Every event becomes an instant (`ph:"i"`) on its actor's track; task
/// submit→complete/expire pairs additionally become duration spans
/// (`ph:"X"`) on a per-ego task track, so offload latency is visible as
/// bar length. Timestamps are integer microseconds of *sim* time.
pub fn to_chrome_trace(events: &[Recorded], process_name: &str) -> Value {
    let mut trace_events = Vec::new();
    trace_events.push(json!({
        "name": "process_name",
        "ph": "M",
        "pid": 1u32,
        "tid": 0u32,
        "args": json!({"name": process_name}),
    }));

    // Instants: one per recorded event, tid = actor.
    for recorded in events {
        let event = &recorded.event;
        trace_events.push(json!({
            "name": event.kind.to_string(),
            "cat": event.kind.category().to_string(),
            "ph": "i",
            "s": "t",
            "ts": event.time.as_nanos() / 1_000,
            "pid": 1u32,
            "tid": event.actor,
            "args": json!({"seq": recorded.seq}),
        }));
    }

    // Spans: submit → complete/expire per task id.
    let mut open: Vec<(u64, u32, u64)> = Vec::new(); // (task, ego, start_us)
    for recorded in events {
        let ts_us = recorded.event.time.as_nanos() / 1_000;
        match recorded.event.kind {
            EventKind::TaskSubmit { task, ego } => open.push((task, ego, ts_us)),
            EventKind::TaskComplete { task, ego, .. } | EventKind::TaskExpire { task, ego } => {
                if let Some(pos) = open.iter().position(|&(t, _, _)| t == task) {
                    let (_, _, start_us) = open.remove(pos);
                    let done = matches!(recorded.event.kind, EventKind::TaskComplete { .. });
                    let outcome = if done { "complete" } else { "expire" };
                    trace_events.push(json!({
                        "name": format!("task#{task}"),
                        "cat": "task-span",
                        "ph": "X",
                        "ts": start_us,
                        "dur": ts_us.saturating_sub(start_us),
                        "pid": 1u32,
                        "tid": 100_000u64 + ego as u64,
                        "args": json!({"outcome": outcome}),
                    }));
                }
            }
            _ => {}
        }
    }

    json!({
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    })
}

/// Renders recorded spans as JSONL: one JSON object per line, in
/// recording (= id) order, trailing newline included.
pub fn spans_to_jsonl(spans: &[Span]) -> String {
    let mut out = String::new();
    for span in spans {
        let line = serde_json::to_string(span).expect("spans always serialize");
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Parses a span JSONL document back into spans.
pub fn parse_spans_jsonl(text: &str) -> Result<Vec<Span>, String> {
    let mut spans = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let span: Span =
            serde_json::from_str(line).map_err(|err| format!("line {}: {err}", idx + 1))?;
        spans.push(span);
    }
    Ok(spans)
}

/// Validates a span JSONL document: every line must parse as a [`Span`]
/// and re-serialize to the exact same bytes, ids must be strictly
/// increasing (recording order), and the whole collection must satisfy
/// the well-formedness contract ([`validate_spans`]: everything closed or
/// expired, every parent/follows_from id present, causal edges respect
/// virtual-time order, no cycles). Returns the number of valid spans.
pub fn validate_spans_jsonl(text: &str) -> Result<usize, String> {
    let mut spans = Vec::new();
    let mut last_id: Option<u64> = None;
    for (idx, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let span: Span =
            serde_json::from_str(line).map_err(|err| format!("line {lineno}: {err}"))?;
        let reserialized =
            serde_json::to_string(&span).map_err(|err| format!("line {lineno}: {err}"))?;
        if reserialized != line {
            return Err(format!(
                "line {lineno}: not canonical — parsed span re-serializes differently"
            ));
        }
        if let Some(prev) = last_id {
            if span.id <= prev {
                return Err(format!(
                    "line {lineno}: span id {} out of order (previous {prev})",
                    span.id
                ));
            }
        }
        last_id = Some(span.id);
        spans.push(span);
    }
    validate_spans(&spans)?;
    Ok(spans.len())
}

/// Track id for a node's span lane (instants use the bare actor id, the
/// legacy task bars use `100_000 + ego`; span lanes sit above both).
fn span_lane(actor: u32) -> u64 {
    200_000u64 + actor as u64
}

/// Renders events *and* causal spans as one Chrome-trace / Perfetto
/// document: everything [`to_chrome_trace`] emits, plus an `X` slice per
/// recorded span on its actor's span lane and flow arrows (`ph:"s"` /
/// `ph:"f"`) following each causal edge — root query → first offer, a
/// failover offer → the attempt it replaces, offer → remote execution,
/// execution → result flight — so one offloaded query reads as a
/// connected arc across node lanes.
pub fn to_chrome_trace_full(events: &[Recorded], spans: &[Span], process_name: &str) -> Value {
    let mut doc = to_chrome_trace(events, process_name);
    let Value::Object(entries) = &mut doc else {
        unreachable!("chrome trace doc is an object");
    };
    let Some((_, Value::Array(trace_events))) =
        entries.iter_mut().find(|(k, _)| k == "traceEvents")
    else {
        unreachable!("chrome trace doc has traceEvents");
    };

    let us = |t: airdnd_sim::SimTime| t.as_nanos() / 1_000;
    for span in spans {
        let start_us = us(span.start);
        let end_us = span.end.map(us).unwrap_or(start_us);
        let mut args = vec![
            ("span".to_string(), json!(span.id)),
            ("task".to_string(), json!(span.task)),
            ("status".to_string(), json!(format!("{:?}", span.status))),
        ];
        if let Some(parent) = span.parent {
            args.push(("parent".to_string(), json!(parent)));
        }
        if let Some(follows) = span.follows_from {
            args.push(("follows_from".to_string(), json!(follows)));
        }
        trace_events.push(json!({
            "name": format!("{} task#{}", span.kind.label(), span.task),
            "cat": "span",
            "ph": "X",
            "ts": start_us,
            "dur": end_us.saturating_sub(start_us),
            "pid": 1u32,
            "tid": span_lane(span.actor),
            "args": Value::Object(args),
        }));
    }

    // Flow arrows: one per causal edge, id = destination span id. The
    // `follows_from` edges carry cross-node causality (offer → exec →
    // result, failover chains); first offers flow from their root query
    // so the arc starts at the submit.
    let find = |id: u64| spans.iter().find(|s| s.id == id);
    for span in spans {
        let source = span.follows_from.or(match span.kind {
            SpanKind::OfferFlight => span.parent,
            _ => None,
        });
        let Some(source) = source.and_then(find) else {
            continue;
        };
        let source_ts = us(source.end.unwrap_or(source.start)).max(us(source.start));
        trace_events.push(json!({
            "name": "causal",
            "cat": "flow",
            "ph": "s",
            "id": span.id,
            "ts": source_ts.min(us(span.start)),
            "pid": 1u32,
            "tid": span_lane(source.actor),
        }));
        trace_events.push(json!({
            "name": "causal",
            "cat": "flow",
            "ph": "f",
            "bp": "e",
            "id": span.id,
            "ts": us(span.start),
            "pid": 1u32,
            "tid": span_lane(span.actor),
        }));
    }

    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::log::EventLog;
    use airdnd_sim::SimTime;

    fn sample() -> Vec<Recorded> {
        let mut log = EventLog::bounded(16);
        log.record(SimTime::from_millis(1), 2, EventKind::MeshJoin { node: 2 });
        log.record(
            SimTime::from_millis(2),
            0,
            EventKind::TaskSubmit { task: 1, ego: 0 },
        );
        log.record(
            SimTime::from_millis(9),
            0,
            EventKind::TaskComplete {
                task: 1,
                ego: 0,
                latency_us: 7_000,
            },
        );
        log.record(
            SimTime::from_millis(10),
            0,
            EventKind::FrameTx {
                from: 0,
                to: None,
                bytes: 48,
            },
        );
        log.events()
    }

    #[test]
    fn jsonl_round_trips_byte_exactly() {
        let events = sample();
        let jsonl = to_jsonl(&events);
        let parsed = parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, events);
        assert_eq!(to_jsonl(&parsed), jsonl);
        assert_eq!(validate_jsonl(&jsonl).unwrap(), events.len());
    }

    #[test]
    fn validate_rejects_garbage_and_disorder() {
        assert!(validate_jsonl("not json\n").is_err());
        // Re-ordered lines violate the seq monotonicity check.
        let events = sample();
        let jsonl = to_jsonl(&events);
        let mut lines: Vec<&str> = jsonl.lines().collect();
        lines.swap(0, 1);
        assert!(validate_jsonl(&lines.join("\n")).is_err());
    }

    /// Pulls `field` out of a JSON object `Value` (the vendored `Value`
    /// has no `Index` impl).
    fn field<'v>(value: &'v Value, name: &str) -> &'v Value {
        match value {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("field {name} missing")),
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn chrome_trace_has_instants_and_task_spans() {
        let events = sample();
        let doc = to_chrome_trace(&events, "g3 quick");
        let entries = match field(&doc, "traceEvents") {
            Value::Array(items) => items.clone(),
            other => panic!("traceEvents not an array: {other:?}"),
        };
        // 1 metadata + 4 instants + 1 task span.
        assert_eq!(entries.len(), 6);
        let span = entries
            .iter()
            .find(|e| *field(e, "ph") == json!("X"))
            .expect("task span present");
        assert_eq!(*field(span, "ts"), json!(2_000u64));
        assert_eq!(*field(span, "dur"), json!(7_000u64));
        assert_eq!(*field(field(span, "args"), "outcome"), json!("complete"));
        let instants = entries
            .iter()
            .filter(|e| *field(e, "ph") == json!("i"))
            .count();
        assert_eq!(instants, 4);
    }

    use crate::span::SpanStatus;

    fn sample_spans() -> Vec<Span> {
        use crate::critical_path::QueryTracer;
        use crate::span::SpanLog;
        let t = SimTime::from_millis;
        let mut log = SpanLog::enabled();
        let mut tracer = QueryTracer::new();
        tracer.submit(&mut log, 1, 0, t(2));
        tracer.offer_sent(&mut log, 1, 7, t(3), Some(t(4)));
        tracer.result_ready(&mut log, 1, 7, t(4), t(8));
        tracer.result_sent(&mut log, 1, 7, t(8), Some(t(9)));
        let budget = tracer.complete(&mut log, 1, t(9)).unwrap();
        tracer.push_sample(budget);
        tracer.finish(&mut log, t(10));
        log.spans().to_vec()
    }

    #[test]
    fn span_jsonl_round_trips_and_validates() {
        let spans = sample_spans();
        let jsonl = spans_to_jsonl(&spans);
        let parsed = parse_spans_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, spans);
        assert_eq!(validate_spans_jsonl(&jsonl).unwrap(), spans.len());
        // Reordering lines breaks the strictly-increasing id check.
        let mut lines: Vec<&str> = jsonl.lines().collect();
        lines.swap(0, 1);
        assert!(validate_spans_jsonl(&lines.join("\n")).is_err());
        // Dropping a referenced span breaks well-formedness.
        let tail = jsonl.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(validate_spans_jsonl(&tail).is_err());
    }

    #[test]
    fn full_chrome_trace_adds_span_slices_and_flow_arrows() {
        let events = sample();
        let spans = sample_spans();
        let doc = to_chrome_trace_full(&events, &spans, "g3 quick");
        let entries = match field(&doc, "traceEvents") {
            Value::Array(items) => items.clone(),
            other => panic!("traceEvents not an array: {other:?}"),
        };
        // Base doc (6 entries for this sample) is untouched...
        let base_doc = to_chrome_trace(&events, "g3 quick");
        let base_entries = match field(&base_doc, "traceEvents") {
            Value::Array(items) => items.clone(),
            other => panic!("traceEvents not an array: {other:?}"),
        };
        assert_eq!(&entries[..base_entries.len()], &base_entries[..]);
        // Not every chrome-trace entry carries every key (metadata has no
        // `cat`), so filter with a tolerant lookup.
        let has = |e: &Value, name: &str, expect: &Value| match e {
            Value::Object(entries) => entries.iter().any(|(k, v)| k == name && v == expect),
            _ => false,
        };
        // ...and each span adds an X slice on its actor's span lane.
        let slices: Vec<_> = entries
            .iter()
            .filter(|e| has(e, "cat", &json!("span")))
            .collect();
        assert_eq!(slices.len(), spans.len());
        // Flow arrows come in s/f pairs sharing an id, and every
        // follows_from edge produced one — so the offloaded query is a
        // connected submit → offer → exec → result arc.
        let starts: Vec<_> = entries
            .iter()
            .filter(|e| has(e, "ph", &json!("s")))
            .collect();
        let finishes: Vec<_> = entries
            .iter()
            .filter(|e| has(e, "ph", &json!("f")))
            .collect();
        assert_eq!(starts.len(), finishes.len());
        let causal_edges = spans.iter().filter(|s| s.follows_from.is_some()).count();
        let first_offers = spans
            .iter()
            .filter(|s| s.kind == SpanKind::OfferFlight && s.follows_from.is_none())
            .count();
        assert_eq!(starts.len(), causal_edges + first_offers);
        assert!(
            starts.len() >= 3,
            "submit→offer→exec→result needs ≥3 arrows"
        );
        let ts_us = |v: &Value| {
            serde_json::to_string(v)
                .unwrap()
                .parse::<u64>()
                .expect("ts is integer µs")
        };
        for (s, f) in starts.iter().zip(&finishes) {
            assert_eq!(field(s, "id"), field(f, "id"));
            // Arrows always point forward in virtual time.
            assert!(ts_us(field(s, "ts")) <= ts_us(field(f, "ts")));
        }
        // The recorded spans are all closed — the args carry the status.
        assert!(slices
            .iter()
            .all(|e| *field(field(e, "args"), "status")
                == json!(format!("{:?}", SpanStatus::Closed))));
    }

    #[test]
    fn exporters_are_deterministic() {
        let events = sample();
        assert_eq!(to_jsonl(&events), to_jsonl(&events));
        assert_eq!(
            serde_json::to_string(&to_chrome_trace(&events, "x")).unwrap(),
            serde_json::to_string(&to_chrome_trace(&events, "x")).unwrap()
        );
    }
}
