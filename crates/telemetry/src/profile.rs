//! Wall-clock attribution of engine time to simulation phases.
//!
//! This is the one part of the crate that deliberately reads a real
//! clock: it answers "where does the 98.6 s full-mode pass actually go?"
//! so the planned discrete-event engine refactor has a baseline
//! (`BENCH_engine.json`). Profiling output is wall-clock and therefore
//! never part of a byte-diffed artifact; a disabled profiler costs one
//! branch per section.

use serde_json::{json, Value};
use std::fmt;
use std::time::Instant;

/// The engine phases wall-clock is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Fleet schedule processing: spawns and despawns.
    Lifecycle,
    /// Vehicle kinematics and position updates.
    Movement,
    /// Sensor coverage evaluation and view fusion.
    Sensor,
    /// Mesh membership: beacons, joins, leases.
    Mesh,
    /// Task generation, offload decisions, completion bookkeeping — and
    /// kernel execution: an `Offer` delivery runs the offloaded TaskVM
    /// program synchronously on the helper, so that wall-clock belongs
    /// here, not to the medium.
    Tasks,
    /// Radio frame scheduling and medium/protocol delivery work only
    /// (task execution triggered by a delivery books under [`Phase::Tasks`]).
    Radio,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 6] = [
        Phase::Lifecycle,
        Phase::Movement,
        Phase::Sensor,
        Phase::Mesh,
        Phase::Tasks,
        Phase::Radio,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Lifecycle => 0,
            Phase::Movement => 1,
            Phase::Sensor => 2,
            Phase::Mesh => 3,
            Phase::Tasks => 4,
            Phase::Radio => 5,
        }
    }

    /// The phase's report key.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Lifecycle => "lifecycle",
            Phase::Movement => "movement",
            Phase::Sensor => "sensor",
            Phase::Mesh => "mesh",
            Phase::Tasks => "tasks",
            Phase::Radio => "radio",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulates wall-clock nanoseconds and entry counts per [`Phase`].
#[derive(Clone, Debug)]
pub struct PhaseProfiler {
    enabled: bool,
    nanos: [u128; 6],
    entries: [u64; 6],
}

impl PhaseProfiler {
    /// A profiler that measures nothing.
    pub fn disabled() -> Self {
        PhaseProfiler {
            enabled: false,
            nanos: [0; 6],
            entries: [0; 6],
        }
    }

    /// A profiler that accumulates wall-clock per phase.
    pub fn enabled() -> Self {
        PhaseProfiler {
            enabled: true,
            nanos: [0; 6],
            entries: [0; 6],
        }
    }

    /// Whether this profiler measures anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Times `body` and attributes the elapsed wall-clock to `phase`.
    /// When disabled this is just the call to `body`.
    pub fn section<T>(&mut self, phase: Phase, body: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return body();
        }
        let start = Instant::now();
        let out = body();
        self.nanos[phase.index()] += start.elapsed().as_nanos();
        self.entries[phase.index()] += 1;
        out
    }

    /// Attributes externally measured wall-clock to `phase` (one entry).
    /// A no-op when disabled — callers that cannot hold the profiler
    /// across a section (borrow discipline) time with their own
    /// `Instant` and deposit the elapsed nanoseconds here.
    pub fn record_nanos(&mut self, phase: Phase, nanos: u128) {
        if !self.enabled {
            return;
        }
        self.nanos[phase.index()] += nanos;
        self.entries[phase.index()] += 1;
    }

    /// Accumulated wall-clock for `phase`, nanoseconds.
    pub fn nanos(&self, phase: Phase) -> u128 {
        self.nanos[phase.index()]
    }

    /// Times `phase` was entered.
    pub fn entries(&self, phase: Phase) -> u64 {
        self.entries[phase.index()]
    }

    /// Total attributed wall-clock across phases, nanoseconds.
    pub fn total_nanos(&self) -> u128 {
        self.nanos.iter().sum()
    }

    /// Folds another profiler's accumulation into this one.
    pub fn merge(&mut self, other: &PhaseProfiler) {
        for phase in Phase::ALL {
            self.nanos[phase.index()] += other.nanos[phase.index()];
            self.entries[phase.index()] += other.entries[phase.index()];
        }
        self.enabled |= other.enabled;
    }

    /// Renders the attribution as a JSON object: per-phase milliseconds,
    /// share of attributed time, and entry counts.
    pub fn report(&self) -> Value {
        let total = self.total_nanos();
        let phases: Vec<(String, Value)> = Phase::ALL
            .iter()
            .map(|&phase| {
                let nanos = self.nanos(phase);
                let share = if total > 0 {
                    nanos as f64 / total as f64
                } else {
                    0.0
                };
                (
                    phase.name().to_string(),
                    json!({
                        "ms": nanos as f64 / 1.0e6,
                        "share": (share * 1.0e4).round() / 1.0e4,
                        "entries": self.entries(phase),
                    }),
                )
            })
            .collect();
        json!({
            "total_ms": total as f64 / 1.0e6,
            "phases": Value::Object(phases),
        })
    }
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_accumulates_nothing() {
        let mut p = PhaseProfiler::disabled();
        let out = p.section(Phase::Movement, || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(p.total_nanos(), 0);
        assert_eq!(p.entries(Phase::Movement), 0);
    }

    #[test]
    fn enabled_profiler_counts_entries_and_time() {
        let mut p = PhaseProfiler::enabled();
        for _ in 0..3 {
            p.section(Phase::Radio, || std::hint::black_box(1 + 1));
        }
        assert_eq!(p.entries(Phase::Radio), 3);
        assert_eq!(p.entries(Phase::Mesh), 0);
        assert!(p.nanos(Phase::Radio) == p.total_nanos());
    }

    #[test]
    fn merge_folds_counts() {
        let mut a = PhaseProfiler::enabled();
        let mut b = PhaseProfiler::enabled();
        a.section(Phase::Tasks, || ());
        b.section(Phase::Tasks, || ());
        b.section(Phase::Mesh, || ());
        a.merge(&b);
        assert_eq!(a.entries(Phase::Tasks), 2);
        assert_eq!(a.entries(Phase::Mesh), 1);
    }

    #[test]
    fn report_has_all_phases() {
        let mut p = PhaseProfiler::enabled();
        p.section(Phase::Sensor, || ());
        let rendered = serde_json::to_string(&p.report()).unwrap();
        for phase in Phase::ALL {
            assert!(
                rendered.contains(&format!("\"{}\":{{", phase.name())),
                "missing phase {phase} in {rendered}"
            );
        }
        assert!(rendered.contains("\"entries\":1"));
    }
}
