//! Resource virtualization: slicing a node's capacity.
//!
//! A [`ResourcePool`] tracks one node's total capacity and its outstanding
//! allocations. Allocation is all-or-nothing across three dimensions (CPU,
//! memory, gas-rate share) — matching how the orchestrator reasons about
//! whether a VNF or task *fits* on a node.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::ops::{Add, Sub};

/// A three-dimensional resource vector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceCapacity {
    /// CPU in millicores.
    pub cpu_millicores: u64,
    /// Memory in bytes.
    pub mem_bytes: u64,
    /// TaskVM execution share, gas per second.
    pub gas_rate: u64,
}

impl ResourceCapacity {
    /// The zero vector.
    pub const ZERO: ResourceCapacity = ResourceCapacity {
        cpu_millicores: 0,
        mem_bytes: 0,
        gas_rate: 0,
    };

    /// Creates a capacity vector.
    pub const fn new(cpu_millicores: u64, mem_bytes: u64, gas_rate: u64) -> Self {
        ResourceCapacity {
            cpu_millicores,
            mem_bytes,
            gas_rate,
        }
    }

    /// `true` if every dimension of `other` fits within `self`.
    pub fn fits(&self, other: &ResourceCapacity) -> bool {
        self.cpu_millicores >= other.cpu_millicores
            && self.mem_bytes >= other.mem_bytes
            && self.gas_rate >= other.gas_rate
    }

    /// The largest per-dimension utilization fraction of `used` against
    /// `self` (0.0 when self is the zero vector).
    pub fn dominant_utilization(&self, used: &ResourceCapacity) -> f64 {
        let frac = |u: u64, c: u64| if c == 0 { 0.0 } else { u as f64 / c as f64 };
        frac(used.cpu_millicores, self.cpu_millicores)
            .max(frac(used.mem_bytes, self.mem_bytes))
            .max(frac(used.gas_rate, self.gas_rate))
    }
}

impl Add for ResourceCapacity {
    type Output = ResourceCapacity;
    fn add(self, rhs: ResourceCapacity) -> ResourceCapacity {
        ResourceCapacity {
            cpu_millicores: self.cpu_millicores.saturating_add(rhs.cpu_millicores),
            mem_bytes: self.mem_bytes.saturating_add(rhs.mem_bytes),
            gas_rate: self.gas_rate.saturating_add(rhs.gas_rate),
        }
    }
}

impl Sub for ResourceCapacity {
    type Output = ResourceCapacity;
    fn sub(self, rhs: ResourceCapacity) -> ResourceCapacity {
        ResourceCapacity {
            cpu_millicores: self.cpu_millicores.saturating_sub(rhs.cpu_millicores),
            mem_bytes: self.mem_bytes.saturating_sub(rhs.mem_bytes),
            gas_rate: self.gas_rate.saturating_sub(rhs.gas_rate),
        }
    }
}

impl fmt::Display for ResourceCapacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}m cpu / {} MiB / {} gas/s",
            self.cpu_millicores,
            self.mem_bytes >> 20,
            self.gas_rate
        )
    }
}

/// Identifies one allocation within a pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AllocationId(u64);

impl fmt::Display for AllocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc#{}", self.0)
    }
}

/// Why an allocation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsufficientCapacity {
    /// What was requested.
    pub requested: ResourceCapacity,
    /// What remained available.
    pub available: ResourceCapacity,
}

impl fmt::Display for InsufficientCapacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "insufficient capacity: requested {}, available {}",
            self.requested, self.available
        )
    }
}

impl Error for InsufficientCapacity {}

/// One node's capacity and outstanding slices.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResourcePool {
    capacity: ResourceCapacity,
    allocations: BTreeMap<AllocationId, ResourceCapacity>,
    used: ResourceCapacity,
    next_id: u64,
}

impl ResourcePool {
    /// Creates a pool with the given total capacity.
    pub fn new(capacity: ResourceCapacity) -> Self {
        ResourcePool {
            capacity,
            allocations: BTreeMap::new(),
            used: ResourceCapacity::ZERO,
            next_id: 0,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> ResourceCapacity {
        self.capacity
    }

    /// Currently allocated resources.
    pub fn used(&self) -> ResourceCapacity {
        self.used
    }

    /// Remaining free resources.
    pub fn available(&self) -> ResourceCapacity {
        self.capacity - self.used
    }

    /// Number of live allocations.
    pub fn allocation_count(&self) -> usize {
        self.allocations.len()
    }

    /// Dominant-dimension utilization fraction in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.capacity.dominant_utilization(&self.used)
    }

    /// Attempts to carve out a slice.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientCapacity`] if the request does not fit.
    pub fn try_allocate(
        &mut self,
        request: ResourceCapacity,
    ) -> Result<AllocationId, InsufficientCapacity> {
        if !self.available().fits(&request) {
            return Err(InsufficientCapacity {
                requested: request,
                available: self.available(),
            });
        }
        let id = AllocationId(self.next_id);
        self.next_id += 1;
        self.allocations.insert(id, request);
        self.used = self.used + request;
        Ok(id)
    }

    /// Releases a slice; returns the freed resources, or `None` if the id
    /// is unknown (double release is harmless and observable).
    pub fn release(&mut self, id: AllocationId) -> Option<ResourceCapacity> {
        let freed = self.allocations.remove(&id)?;
        self.used = self.used - freed;
        Some(freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(cpu: u64, mem: u64, gas: u64) -> ResourceCapacity {
        ResourceCapacity::new(cpu, mem, gas)
    }

    #[test]
    fn fits_is_per_dimension() {
        let big = cap(1000, 1000, 1000);
        assert!(big.fits(&cap(1000, 1000, 1000)));
        assert!(!big.fits(&cap(1001, 0, 0)));
        assert!(!big.fits(&cap(0, 1001, 0)));
        assert!(!big.fits(&cap(0, 0, 1001)));
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let mut pool = ResourcePool::new(cap(1000, 1 << 30, 1_000_000));
        let a = pool.try_allocate(cap(400, 1 << 29, 500_000)).unwrap();
        assert_eq!(pool.used(), cap(400, 1 << 29, 500_000));
        assert_eq!(pool.allocation_count(), 1);
        let freed = pool.release(a).unwrap();
        assert_eq!(freed, cap(400, 1 << 29, 500_000));
        assert_eq!(pool.used(), ResourceCapacity::ZERO);
        assert_eq!(pool.release(a), None, "double release is a no-op");
    }

    #[test]
    fn overcommit_is_rejected() {
        let mut pool = ResourcePool::new(cap(1000, 1000, 1000));
        pool.try_allocate(cap(700, 0, 0)).unwrap();
        let err = pool.try_allocate(cap(400, 0, 0)).unwrap_err();
        assert_eq!(err.available.cpu_millicores, 300);
        // A fitting request still succeeds after the failure.
        assert!(pool.try_allocate(cap(300, 0, 0)).is_ok());
        assert_eq!(pool.available().cpu_millicores, 0);
    }

    #[test]
    fn utilization_tracks_dominant_dimension() {
        let mut pool = ResourcePool::new(cap(1000, 1000, 1000));
        assert_eq!(pool.utilization(), 0.0);
        pool.try_allocate(cap(100, 900, 500)).unwrap();
        assert!((pool.utilization() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_pool() {
        let mut pool = ResourcePool::new(ResourceCapacity::ZERO);
        assert_eq!(pool.utilization(), 0.0);
        assert!(pool.try_allocate(cap(1, 0, 0)).is_err());
        assert!(
            pool.try_allocate(ResourceCapacity::ZERO).is_ok(),
            "zero fits in zero"
        );
    }

    #[test]
    fn allocation_ids_are_unique() {
        let mut pool = ResourcePool::new(cap(100, 100, 100));
        let a = pool.try_allocate(cap(10, 10, 10)).unwrap();
        pool.release(a);
        let b = pool.try_allocate(cap(10, 10, 10)).unwrap();
        assert_ne!(a, b, "ids are never reused");
    }

    #[test]
    fn display_formats() {
        let c = cap(500, 64 << 20, 1_000_000);
        assert_eq!(c.to_string(), "500m cpu / 64 MiB / 1000000 gas/s");
    }
}
