//! VNF descriptors, instances and the lifecycle state machine.

use crate::resources::{AllocationId, ResourceCapacity};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The function a VNF performs (drives default resource sizing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VnfKind {
    /// Frame forwarding / relay between mesh segments.
    Router,
    /// Admission filtering of offload requests.
    Firewall,
    /// Aggregates perception results from several producers.
    Aggregator,
    /// Runs fused-perception kernels for the whole mesh.
    PerceptionFuser,
    /// Caches task results for repeated queries.
    ResultCache,
}

impl VnfKind {
    /// Default resource footprint for this kind.
    pub fn default_footprint(self) -> ResourceCapacity {
        match self {
            VnfKind::Router => ResourceCapacity::new(100, 32 << 20, 0),
            VnfKind::Firewall => ResourceCapacity::new(50, 16 << 20, 0),
            VnfKind::Aggregator => ResourceCapacity::new(200, 128 << 20, 200_000),
            VnfKind::PerceptionFuser => ResourceCapacity::new(500, 256 << 20, 1_000_000),
            VnfKind::ResultCache => ResourceCapacity::new(50, 512 << 20, 0),
        }
    }
}

impl fmt::Display for VnfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VnfKind::Router => "router",
            VnfKind::Firewall => "firewall",
            VnfKind::Aggregator => "aggregator",
            VnfKind::PerceptionFuser => "perception-fuser",
            VnfKind::ResultCache => "result-cache",
        };
        f.write_str(s)
    }
}

/// Static description of a VNF to be instantiated.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VnfDescriptor {
    /// Diagnostic name.
    pub name: String,
    /// The function performed.
    pub kind: VnfKind,
    /// Resources the instance needs.
    pub required: ResourceCapacity,
}

impl VnfDescriptor {
    /// A descriptor with the kind's default footprint.
    pub fn of_kind(name: impl Into<String>, kind: VnfKind) -> Self {
        VnfDescriptor {
            name: name.into(),
            kind,
            required: kind.default_footprint(),
        }
    }
}

/// Identifies a VNF instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VnfId(pub u64);

impl fmt::Display for VnfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vnf#{}", self.0)
    }
}

/// Lifecycle states. Legal transitions:
/// `Instantiating → Running → Migrating → Running` and any → `Terminated`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VnfState {
    /// Being deployed on its host.
    Instantiating,
    /// Serving traffic.
    Running,
    /// Moving to a new host (not serving).
    Migrating,
    /// Shut down; terminal.
    Terminated,
}

impl fmt::Display for VnfState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VnfState::Instantiating => "instantiating",
            VnfState::Running => "running",
            VnfState::Migrating => "migrating",
            VnfState::Terminated => "terminated",
        };
        f.write_str(s)
    }
}

/// An illegal lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidTransition {
    /// State the instance was in.
    pub from: VnfState,
    /// State that was requested.
    pub to: VnfState,
}

impl fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid VNF transition {} → {}", self.from, self.to)
    }
}

impl Error for InvalidTransition {}

/// A deployed VNF.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VnfInstance {
    /// Instance id.
    pub id: VnfId,
    /// What was deployed.
    pub descriptor: VnfDescriptor,
    /// Hosting node (raw address).
    pub host: u64,
    /// The resource slice backing this instance.
    pub allocation: AllocationId,
    state: VnfState,
}

impl VnfInstance {
    /// Creates an instance in `Instantiating` state.
    pub fn new(id: VnfId, descriptor: VnfDescriptor, host: u64, allocation: AllocationId) -> Self {
        VnfInstance {
            id,
            descriptor,
            host,
            allocation,
            state: VnfState::Instantiating,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> VnfState {
        self.state
    }

    /// `true` if the instance is serving.
    pub fn is_running(&self) -> bool {
        self.state == VnfState::Running
    }

    /// Attempts a lifecycle transition.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTransition`] for anything but the legal moves
    /// documented on [`VnfState`].
    pub fn transition(&mut self, to: VnfState) -> Result<(), InvalidTransition> {
        use VnfState::*;
        let legal = matches!(
            (self.state, to),
            (Instantiating, Running)
                | (Running, Migrating)
                | (Migrating, Running)
                | (Instantiating, Terminated)
                | (Running, Terminated)
                | (Migrating, Terminated)
        );
        if !legal {
            return Err(InvalidTransition {
                from: self.state,
                to,
            });
        }
        self.state = to;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_id() -> AllocationId {
        // Round-trip through a pool to obtain a real id.
        let mut pool = crate::resources::ResourcePool::new(ResourceCapacity::new(1, 1, 1));
        pool.try_allocate(ResourceCapacity::ZERO).unwrap()
    }

    fn instance() -> VnfInstance {
        VnfInstance::new(
            VnfId(1),
            VnfDescriptor::of_kind("fuser", VnfKind::PerceptionFuser),
            7,
            alloc_id(),
        )
    }

    #[test]
    fn normal_lifecycle() {
        let mut v = instance();
        assert_eq!(v.state(), VnfState::Instantiating);
        v.transition(VnfState::Running).unwrap();
        assert!(v.is_running());
        v.transition(VnfState::Migrating).unwrap();
        assert!(!v.is_running());
        v.transition(VnfState::Running).unwrap();
        v.transition(VnfState::Terminated).unwrap();
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut v = instance();
        assert_eq!(
            v.transition(VnfState::Migrating),
            Err(InvalidTransition {
                from: VnfState::Instantiating,
                to: VnfState::Migrating
            })
        );
        v.transition(VnfState::Terminated).unwrap();
        assert!(
            v.transition(VnfState::Running).is_err(),
            "terminated is terminal"
        );
        assert!(
            v.transition(VnfState::Terminated).is_err(),
            "no self-loop on terminal"
        );
    }

    #[test]
    fn kind_footprints_are_sane() {
        for kind in [
            VnfKind::Router,
            VnfKind::Firewall,
            VnfKind::Aggregator,
            VnfKind::PerceptionFuser,
            VnfKind::ResultCache,
        ] {
            let fp = kind.default_footprint();
            assert!(fp.cpu_millicores > 0, "{kind} needs cpu");
            assert!(fp.mem_bytes > 0, "{kind} needs memory");
        }
        // The fuser is the compute-heavy one.
        assert!(
            VnfKind::PerceptionFuser.default_footprint().gas_rate
                > VnfKind::Aggregator.default_footprint().gas_rate
        );
    }

    #[test]
    fn descriptor_of_kind_uses_default_footprint() {
        let d = VnfDescriptor::of_kind("r", VnfKind::Router);
        assert_eq!(d.required, VnfKind::Router.default_footprint());
        assert_eq!(d.kind, VnfKind::Router);
    }
}
