//! Service-function chains: ordered VNF compositions.
//!
//! A chain like `firewall → aggregator → perception-fuser` is the unit the
//! application layer asks for; the NF manager places each link on a mesh
//! node. A chain is *up* only while every link runs, and the chain tracks
//! its cumulative downtime — the metric experiment T11 reports under
//! mobility.

use crate::vnf::{VnfDescriptor, VnfId};
use airdnd_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a deployed chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChainId(pub u64);

impl fmt::Display for ChainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain#{}", self.0)
    }
}

/// An ordered list of VNFs to deploy as one service.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceChain {
    /// Diagnostic name.
    pub name: String,
    /// The links, in traversal order.
    pub links: Vec<VnfDescriptor>,
}

impl ServiceChain {
    /// Creates a chain.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty — an empty chain is meaningless.
    pub fn new(name: impl Into<String>, links: Vec<VnfDescriptor>) -> Self {
        assert!(!links.is_empty(), "a service chain needs at least one link");
        ServiceChain {
            name: name.into(),
            links,
        }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` if the chain has no links (cannot happen via [`ServiceChain::new`]).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// Runtime availability accounting for a deployed chain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChainStatus {
    /// The chain's instances, in link order.
    pub instances: Vec<VnfId>,
    up_since: Option<SimTime>,
    down_since: Option<SimTime>,
    total_downtime: SimDuration,
    deployed_at: SimTime,
}

impl ChainStatus {
    /// Creates status for a chain deployed (but not yet up) at `now`.
    pub fn new(instances: Vec<VnfId>, now: SimTime) -> Self {
        ChainStatus {
            instances,
            up_since: None,
            down_since: Some(now),
            total_downtime: SimDuration::ZERO,
            deployed_at: now,
        }
    }

    /// `true` while every link is running.
    pub fn is_up(&self) -> bool {
        self.up_since.is_some()
    }

    /// Marks the chain up at `now` (idempotent).
    pub fn mark_up(&mut self, now: SimTime) {
        if let Some(down) = self.down_since.take() {
            self.total_downtime += now.saturating_since(down);
        }
        self.up_since.get_or_insert(now);
    }

    /// Marks the chain down at `now` (idempotent).
    pub fn mark_down(&mut self, now: SimTime) {
        if self.up_since.take().is_some() {
            self.down_since = Some(now);
        }
    }

    /// Cumulative downtime up to `now` (includes an ongoing outage).
    pub fn downtime(&self, now: SimTime) -> SimDuration {
        match self.down_since {
            Some(down) => self.total_downtime + now.saturating_since(down),
            None => self.total_downtime,
        }
    }

    /// Availability fraction since deployment, in `[0, 1]`.
    pub fn availability(&self, now: SimTime) -> f64 {
        let lifetime = now.saturating_since(self.deployed_at);
        if lifetime.is_zero() {
            return 0.0;
        }
        1.0 - self.downtime(now).as_secs_f64() / lifetime.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::VnfKind;

    fn chain() -> ServiceChain {
        ServiceChain::new(
            "perception",
            vec![
                VnfDescriptor::of_kind("fw", VnfKind::Firewall),
                VnfDescriptor::of_kind("agg", VnfKind::Aggregator),
                VnfDescriptor::of_kind("fuse", VnfKind::PerceptionFuser),
            ],
        )
    }

    #[test]
    fn chain_construction() {
        let c = chain();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_chain_panics() {
        let _ = ServiceChain::new("x", vec![]);
    }

    #[test]
    fn downtime_accumulates_across_outages() {
        let mut s = ChainStatus::new(vec![VnfId(1)], SimTime::ZERO);
        assert!(!s.is_up());
        // 1 s of deploy time counts as downtime.
        s.mark_up(SimTime::from_secs(1));
        assert!(s.is_up());
        assert_eq!(s.downtime(SimTime::from_secs(5)), SimDuration::from_secs(1));
        // Outage from t=5 to t=8.
        s.mark_down(SimTime::from_secs(5));
        s.mark_up(SimTime::from_secs(8));
        assert_eq!(
            s.downtime(SimTime::from_secs(10)),
            SimDuration::from_secs(4)
        );
        // Ongoing outage counts up to `now`.
        s.mark_down(SimTime::from_secs(10));
        assert_eq!(
            s.downtime(SimTime::from_secs(12)),
            SimDuration::from_secs(6)
        );
    }

    #[test]
    fn marks_are_idempotent() {
        let mut s = ChainStatus::new(vec![VnfId(1)], SimTime::ZERO);
        s.mark_up(SimTime::from_secs(1));
        s.mark_up(SimTime::from_secs(2));
        s.mark_down(SimTime::from_secs(3));
        s.mark_down(SimTime::from_secs(4));
        assert_eq!(s.downtime(SimTime::from_secs(5)), SimDuration::from_secs(3));
    }

    #[test]
    fn availability_fraction() {
        let mut s = ChainStatus::new(vec![VnfId(1)], SimTime::ZERO);
        s.mark_up(SimTime::ZERO);
        assert_eq!(s.availability(SimTime::from_secs(10)), 1.0);
        s.mark_down(SimTime::from_secs(10));
        // 10 s up, 10 s down.
        assert!((s.availability(SimTime::from_secs(20)) - 0.5).abs() < 1e-12);
    }
}
