//! The NF manager: placement, migration and healing.
//!
//! The manager owns every node's [`ResourcePool`] and every VNF instance.
//! It decides *where* functions run ([`PlacementStrategy`]), moves them
//! when their host leaves the mesh ([`NfManager::node_departed`] →
//! [`NfManager::heal`]), and keeps chain availability accounting current.

use crate::chain::{ChainId, ChainStatus, ServiceChain};
use crate::resources::{ResourceCapacity, ResourcePool};
use crate::vnf::{VnfDescriptor, VnfId, VnfInstance, VnfState};
use airdnd_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// How the manager picks a host among those with room.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Lowest node address with room (fast, deterministic).
    FirstFit,
    /// The node left with the *least* headroom after placement (packs
    /// tightly, preserves big slots).
    #[default]
    BestFit,
    /// The node left with the *most* headroom (spreads load).
    WorstFit,
}

/// Errors from manager operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NfvError {
    /// No registered node can fit the request.
    NoFeasibleHost,
    /// The referenced node is not registered.
    UnknownNode(u64),
    /// The referenced VNF does not exist.
    UnknownVnf(VnfId),
    /// The referenced chain does not exist.
    UnknownChain(ChainId),
}

impl fmt::Display for NfvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NfvError::NoFeasibleHost => write!(f, "no registered node can host the function"),
            NfvError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NfvError::UnknownVnf(v) => write!(f, "unknown {v}"),
            NfvError::UnknownChain(c) => write!(f, "unknown {c}"),
        }
    }
}

impl Error for NfvError {}

/// The infrastructure-layer manager. See the module docs.
#[derive(Debug, Default)]
pub struct NfManager {
    pools: BTreeMap<u64, ResourcePool>,
    instances: BTreeMap<VnfId, VnfInstance>,
    chains: BTreeMap<ChainId, ChainStatus>,
    strategy: PlacementStrategy,
    next_vnf: u64,
    next_chain: u64,
    migrations: u64,
    failed_migrations: u64,
}

impl NfManager {
    /// Creates a manager with the given placement strategy.
    pub fn new(strategy: PlacementStrategy) -> Self {
        NfManager {
            strategy,
            ..Default::default()
        }
    }

    /// Registers (or re-registers) a node's capacity.
    pub fn register_node(&mut self, node: u64, capacity: ResourceCapacity) {
        self.pools.insert(node, ResourcePool::new(capacity));
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.pools.len()
    }

    /// Lifetime migration counters: `(attempted_ok, failed)`.
    pub fn migration_counts(&self) -> (u64, u64) {
        (self.migrations, self.failed_migrations)
    }

    /// The instance record for a VNF.
    pub fn instance(&self, id: VnfId) -> Option<&VnfInstance> {
        self.instances.get(&id)
    }

    /// Iterates over all live instances in id order.
    pub fn instances(&self) -> impl Iterator<Item = &VnfInstance> {
        self.instances.values()
    }

    /// Dominant-dimension utilization of one node (`None` if unknown).
    pub fn node_utilization(&self, node: u64) -> Option<f64> {
        self.pools.get(&node).map(ResourcePool::utilization)
    }

    /// Mean utilization across registered nodes (0.0 with no nodes).
    pub fn mean_utilization(&self) -> f64 {
        if self.pools.is_empty() {
            return 0.0;
        }
        self.pools
            .values()
            .map(ResourcePool::utilization)
            .sum::<f64>()
            / self.pools.len() as f64
    }

    fn pick_host(&self, required: &ResourceCapacity, exclude: Option<u64>) -> Option<u64> {
        let candidates = self
            .pools
            .iter()
            .filter(|(&node, pool)| Some(node) != exclude && pool.available().fits(required));
        let headroom = |pool: &ResourcePool| {
            let after = pool.available() - *required;
            // Scalarize leftover capacity; gas dominates for compute VNFs.
            after.cpu_millicores as f64
                + (after.mem_bytes >> 20) as f64
                + after.gas_rate as f64 / 1_000.0
        };
        match self.strategy {
            PlacementStrategy::FirstFit => candidates.map(|(&n, _)| n).next(),
            PlacementStrategy::BestFit => candidates
                .min_by(|a, b| {
                    headroom(a.1)
                        .partial_cmp(&headroom(b.1))
                        .expect("finite")
                        .then(a.0.cmp(b.0))
                })
                .map(|(&n, _)| n),
            PlacementStrategy::WorstFit => candidates
                .max_by(|a, b| {
                    headroom(a.1)
                        .partial_cmp(&headroom(b.1))
                        .expect("finite")
                        .then(b.0.cmp(a.0))
                })
                .map(|(&n, _)| n),
        }
    }

    /// Instantiates a VNF somewhere feasible and brings it to `Running`.
    ///
    /// # Errors
    ///
    /// [`NfvError::NoFeasibleHost`] if nothing fits.
    pub fn instantiate(&mut self, descriptor: VnfDescriptor) -> Result<VnfId, NfvError> {
        let host = self
            .pick_host(&descriptor.required, None)
            .ok_or(NfvError::NoFeasibleHost)?;
        let pool = self.pools.get_mut(&host).expect("picked host exists");
        let allocation = pool
            .try_allocate(descriptor.required)
            .expect("pick_host checked fit");
        let id = VnfId(self.next_vnf);
        self.next_vnf += 1;
        let mut instance = VnfInstance::new(id, descriptor, host, allocation);
        instance
            .transition(VnfState::Running)
            .expect("instantiating → running is legal");
        self.instances.insert(id, instance);
        Ok(id)
    }

    /// Migrates a VNF to the best feasible host other than its current one.
    ///
    /// # Errors
    ///
    /// [`NfvError::UnknownVnf`] or [`NfvError::NoFeasibleHost`]; on failure
    /// the instance keeps running where it is (if its host still exists).
    pub fn migrate(&mut self, id: VnfId) -> Result<u64, NfvError> {
        let (old_host, old_alloc, required) = {
            let inst = self.instances.get(&id).ok_or(NfvError::UnknownVnf(id))?;
            (inst.host, inst.allocation, inst.descriptor.required)
        };
        let Some(new_host) = self.pick_host(&required, Some(old_host)) else {
            self.failed_migrations += 1;
            return Err(NfvError::NoFeasibleHost);
        };
        let new_alloc = self
            .pools
            .get_mut(&new_host)
            .expect("picked host exists")
            .try_allocate(required)
            .expect("pick_host checked fit");
        if let Some(pool) = self.pools.get_mut(&old_host) {
            pool.release(old_alloc);
        }
        let inst = self.instances.get_mut(&id).expect("checked above");
        if inst.is_running() {
            inst.transition(VnfState::Migrating)
                .expect("running → migrating");
            inst.transition(VnfState::Running)
                .expect("migrating → running");
        }
        inst.host = new_host;
        inst.allocation = new_alloc;
        self.migrations += 1;
        Ok(new_host)
    }

    /// Terminates a VNF, releasing its slice.
    ///
    /// # Errors
    ///
    /// [`NfvError::UnknownVnf`] if it does not exist.
    pub fn terminate(&mut self, id: VnfId) -> Result<(), NfvError> {
        let mut inst = self.instances.remove(&id).ok_or(NfvError::UnknownVnf(id))?;
        let _ = inst.transition(VnfState::Terminated);
        if let Some(pool) = self.pools.get_mut(&inst.host) {
            pool.release(inst.allocation);
        }
        Ok(())
    }

    /// Handles a node leaving the mesh: its pool disappears and its VNFs
    /// become orphans needing migration. Returns the orphaned VNF ids.
    pub fn node_departed(&mut self, node: u64) -> Vec<VnfId> {
        self.pools.remove(&node);
        self.instances
            .values()
            .filter(|i| i.host == node)
            .map(|i| i.id)
            .collect()
    }

    /// Attempts to re-place every orphan; returns `(healed, lost)` ids.
    /// Lost VNFs are terminated and removed.
    pub fn heal(&mut self, orphans: &[VnfId], now: SimTime) -> (Vec<VnfId>, Vec<VnfId>) {
        let mut healed = Vec::new();
        let mut lost = Vec::new();
        for &id in orphans {
            match self.migrate(id) {
                Ok(_) => healed.push(id),
                Err(_) => {
                    let _ = self.terminate(id);
                    lost.push(id);
                }
            }
        }
        self.refresh_chain_status(now);
        (healed, lost)
    }

    /// Deploys every link of a chain; rolls back on failure.
    ///
    /// # Errors
    ///
    /// [`NfvError::NoFeasibleHost`] if any link cannot be placed (already
    /// placed links are terminated again).
    pub fn deploy_chain(
        &mut self,
        chain: &ServiceChain,
        now: SimTime,
    ) -> Result<ChainId, NfvError> {
        let mut placed = Vec::with_capacity(chain.len());
        for link in &chain.links {
            match self.instantiate(link.clone()) {
                Ok(id) => placed.push(id),
                Err(e) => {
                    for id in placed {
                        let _ = self.terminate(id);
                    }
                    return Err(e);
                }
            }
        }
        let id = ChainId(self.next_chain);
        self.next_chain += 1;
        let mut status = ChainStatus::new(placed, now);
        status.mark_up(now);
        self.chains.insert(id, status);
        Ok(id)
    }

    /// The status record of a chain.
    pub fn chain_status(&self, id: ChainId) -> Option<&ChainStatus> {
        self.chains.get(&id)
    }

    /// Recomputes chain up/down state from instance health.
    pub fn refresh_chain_status(&mut self, now: SimTime) {
        for status in self.chains.values_mut() {
            let all_up = status
                .instances
                .iter()
                .all(|id| self.instances.get(id).is_some_and(VnfInstance::is_running));
            if all_up {
                status.mark_up(now);
            } else {
                status.mark_down(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::VnfKind;

    fn capacity(gas: u64) -> ResourceCapacity {
        ResourceCapacity::new(1_000, 1 << 30, gas)
    }

    fn manager(strategy: PlacementStrategy) -> NfManager {
        let mut m = NfManager::new(strategy);
        m.register_node(1, capacity(1_000_000));
        m.register_node(2, capacity(2_000_000));
        m.register_node(3, capacity(500_000));
        m
    }

    fn fuser() -> VnfDescriptor {
        VnfDescriptor::of_kind("fuse", VnfKind::PerceptionFuser) // needs 1M gas/s
    }

    #[test]
    fn first_fit_picks_lowest_feasible_address() {
        let mut m = manager(PlacementStrategy::FirstFit);
        let id = m.instantiate(fuser()).unwrap();
        assert_eq!(m.instance(id).unwrap().host, 1, "node 1 fits and is first");
    }

    #[test]
    fn best_fit_packs_tightly() {
        let mut m = manager(PlacementStrategy::BestFit);
        let id = m.instantiate(fuser()).unwrap();
        // Node 1 (1M gas) leaves less headroom than node 2 (2M gas).
        assert_eq!(m.instance(id).unwrap().host, 1);
    }

    #[test]
    fn worst_fit_spreads_load() {
        let mut m = manager(PlacementStrategy::WorstFit);
        let id = m.instantiate(fuser()).unwrap();
        assert_eq!(
            m.instance(id).unwrap().host,
            2,
            "node 2 has the most headroom"
        );
    }

    #[test]
    fn infeasible_instantiation_fails() {
        let mut m = manager(PlacementStrategy::BestFit);
        let mut huge = fuser();
        huge.required = ResourceCapacity::new(10_000, 1 << 40, 10_000_000);
        assert_eq!(m.instantiate(huge), Err(NfvError::NoFeasibleHost));
    }

    #[test]
    fn resources_are_charged_and_released() {
        let mut m = manager(PlacementStrategy::FirstFit);
        let id = m.instantiate(fuser()).unwrap();
        assert!(m.node_utilization(1).unwrap() > 0.9);
        m.terminate(id).unwrap();
        assert_eq!(m.node_utilization(1).unwrap(), 0.0);
        assert_eq!(m.terminate(id), Err(NfvError::UnknownVnf(id)));
    }

    #[test]
    fn migration_moves_the_allocation() {
        let mut m = manager(PlacementStrategy::FirstFit);
        let id = m.instantiate(fuser()).unwrap();
        assert_eq!(m.instance(id).unwrap().host, 1);
        let new_host = m.migrate(id).unwrap();
        assert_eq!(new_host, 2, "only node 2 also fits a fuser");
        assert_eq!(m.node_utilization(1).unwrap(), 0.0, "old slice released");
        assert!(m.node_utilization(2).unwrap() > 0.0);
        assert!(m.instance(id).unwrap().is_running());
        assert_eq!(m.migration_counts(), (1, 0));
    }

    #[test]
    fn node_departure_and_heal() {
        let mut m = manager(PlacementStrategy::FirstFit);
        let id = m.instantiate(fuser()).unwrap();
        let orphans = m.node_departed(1);
        assert_eq!(orphans, vec![id]);
        let (healed, lost) = m.heal(&orphans, SimTime::from_secs(1));
        assert_eq!(healed, vec![id]);
        assert!(lost.is_empty());
        assert_eq!(m.instance(id).unwrap().host, 2);
    }

    #[test]
    fn heal_terminates_unplaceable_orphans() {
        let mut m = NfManager::new(PlacementStrategy::BestFit);
        m.register_node(1, capacity(1_000_000));
        m.register_node(2, capacity(100)); // far too small for a fuser
        let id = m.instantiate(fuser()).unwrap();
        let orphans = m.node_departed(1);
        let (healed, lost) = m.heal(&orphans, SimTime::from_secs(1));
        assert!(healed.is_empty());
        assert_eq!(lost, vec![id]);
        assert!(m.instance(id).is_none());
        assert_eq!(m.migration_counts(), (0, 1));
    }

    #[test]
    fn chain_deployment_and_rollback() {
        let mut m = manager(PlacementStrategy::BestFit);
        let ok_chain = ServiceChain::new(
            "small",
            vec![
                VnfDescriptor::of_kind("fw", VnfKind::Firewall),
                VnfDescriptor::of_kind("agg", VnfKind::Aggregator),
            ],
        );
        let cid = m.deploy_chain(&ok_chain, SimTime::ZERO).unwrap();
        assert!(m.chain_status(cid).unwrap().is_up());

        // Capacity check: node 1 hosts one fuser (1M gas), node 2 hosts two
        // (2M gas), node 3 none — so a fourth fuser must fail and roll the
        // whole chain back.
        let instances_before = m.instances().count();
        let too_big = ServiceChain::new("heavy", vec![fuser(), fuser(), fuser(), fuser()]);
        assert_eq!(
            m.deploy_chain(&too_big, SimTime::ZERO),
            Err(NfvError::NoFeasibleHost)
        );
        assert_eq!(
            m.instances().count(),
            instances_before,
            "rollback released everything"
        );
    }

    #[test]
    fn chain_goes_down_when_a_link_is_lost() {
        let mut m = manager(PlacementStrategy::FirstFit);
        let chain = ServiceChain::new("svc", vec![fuser()]);
        let cid = m.deploy_chain(&chain, SimTime::ZERO).unwrap();
        let host = m
            .instance(m.chain_status(cid).unwrap().instances[0])
            .unwrap()
            .host;
        // Remove every other node so healing must fail.
        let others: Vec<u64> = [1u64, 2, 3].into_iter().filter(|&n| n != host).collect();
        for n in others {
            m.node_departed(n);
        }
        let orphans = m.node_departed(host);
        m.heal(&orphans, SimTime::from_secs(2));
        let status = m.chain_status(cid).unwrap();
        assert!(!status.is_up());
        assert!(status.downtime(SimTime::from_secs(5)) >= airdnd_sim::SimDuration::from_secs(3));
    }

    #[test]
    fn mean_utilization_averages_nodes() {
        let mut m = manager(PlacementStrategy::FirstFit);
        assert_eq!(m.mean_utilization(), 0.0);
        m.instantiate(fuser()).unwrap();
        let mean = m.mean_utilization();
        assert!(mean > 0.0 && mean < 1.0);
    }
}
