//! # airdnd-nfv — the infrastructure layer of Fig. 1
//!
//! The paper's architecture rests on an NFV-style infrastructure layer:
//! node resources are *virtualized* into slices, network functions run as
//! VNF instances on those slices, and an NF manager places and migrates
//! them as the mesh reshapes. This crate implements that layer:
//!
//! * [`resources`] — capacity accounting and slice allocation per node,
//! * [`vnf`] — VNF descriptors, instances and a validated lifecycle state
//!   machine (instantiating → running → migrating → …),
//! * [`chain`] — ordered service-function chains with availability
//!   accounting,
//! * [`manager`] — the NF manager: placement strategies (first/best/worst
//!   fit), chain deployment, node-failure healing and migration under
//!   mobility (experiment T11).
//!
//! The orchestrator (`airdnd-core`) treats offloaded TaskVM work and
//! long-lived VNFs uniformly as consumers of the same resource pools.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod manager;
pub mod resources;
pub mod vnf;

pub use chain::{ChainId, ServiceChain};
pub use manager::{NfManager, PlacementStrategy};
pub use resources::{AllocationId, ResourceCapacity, ResourcePool};
pub use vnf::{VnfDescriptor, VnfId, VnfInstance, VnfKind, VnfState};
