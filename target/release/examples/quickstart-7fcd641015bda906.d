/root/repo/target/release/examples/quickstart-7fcd641015bda906.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7fcd641015bda906: examples/quickstart.rs

examples/quickstart.rs:
