/root/repo/target/release/examples/probe_tmp-26055a4e21077745.d: examples/probe_tmp.rs

/root/repo/target/release/examples/probe_tmp-26055a4e21077745: examples/probe_tmp.rs

examples/probe_tmp.rs:
