/root/repo/target/release/deps/airdnd_trust-49a6f335fcaaa1a0.d: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs

/root/repo/target/release/deps/libairdnd_trust-49a6f335fcaaa1a0.rlib: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs

/root/repo/target/release/deps/libairdnd_trust-49a6f335fcaaa1a0.rmeta: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs

crates/trust/src/lib.rs:
crates/trust/src/hash.rs:
crates/trust/src/privacy.rs:
crates/trust/src/reputation.rs:
crates/trust/src/verify.rs:
