/root/repo/target/release/deps/harness-d21f6ec0f7da3f52.d: crates/harness/benches/harness.rs

/root/repo/target/release/deps/harness-d21f6ec0f7da3f52: crates/harness/benches/harness.rs

crates/harness/benches/harness.rs:
