/root/repo/target/release/deps/airdnd_data-18450c1ab63d71e7.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

/root/repo/target/release/deps/libairdnd_data-18450c1ab63d71e7.rlib: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

/root/repo/target/release/deps/libairdnd_data-18450c1ab63d71e7.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/matching.rs:
crates/data/src/quality.rs:
crates/data/src/schema.rs:
crates/data/src/semantic.rs:
