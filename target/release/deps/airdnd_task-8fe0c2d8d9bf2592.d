/root/repo/target/release/deps/airdnd_task-8fe0c2d8d9bf2592.d: crates/task/src/lib.rs crates/task/src/graph.rs crates/task/src/library.rs crates/task/src/spec.rs crates/task/src/vm/mod.rs crates/task/src/vm/asm.rs crates/task/src/vm/exec.rs crates/task/src/vm/isa.rs crates/task/src/vm/verify.rs crates/task/src/wire.rs

/root/repo/target/release/deps/libairdnd_task-8fe0c2d8d9bf2592.rlib: crates/task/src/lib.rs crates/task/src/graph.rs crates/task/src/library.rs crates/task/src/spec.rs crates/task/src/vm/mod.rs crates/task/src/vm/asm.rs crates/task/src/vm/exec.rs crates/task/src/vm/isa.rs crates/task/src/vm/verify.rs crates/task/src/wire.rs

/root/repo/target/release/deps/libairdnd_task-8fe0c2d8d9bf2592.rmeta: crates/task/src/lib.rs crates/task/src/graph.rs crates/task/src/library.rs crates/task/src/spec.rs crates/task/src/vm/mod.rs crates/task/src/vm/asm.rs crates/task/src/vm/exec.rs crates/task/src/vm/isa.rs crates/task/src/vm/verify.rs crates/task/src/wire.rs

crates/task/src/lib.rs:
crates/task/src/graph.rs:
crates/task/src/library.rs:
crates/task/src/spec.rs:
crates/task/src/vm/mod.rs:
crates/task/src/vm/asm.rs:
crates/task/src/vm/exec.rs:
crates/task/src/vm/isa.rs:
crates/task/src/vm/verify.rs:
crates/task/src/wire.rs:
