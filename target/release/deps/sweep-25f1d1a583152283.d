/root/repo/target/release/deps/sweep-25f1d1a583152283.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-25f1d1a583152283: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
