/root/repo/target/release/deps/airdnd_scenario-3f10ad315e18b16a.d: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs

/root/repo/target/release/deps/libairdnd_scenario-3f10ad315e18b16a.rlib: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs

/root/repo/target/release/deps/libairdnd_scenario-3f10ad315e18b16a.rmeta: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs

crates/scenario/src/lib.rs:
crates/scenario/src/fleet.rs:
crates/scenario/src/perception.rs:
crates/scenario/src/runner.rs:
crates/scenario/src/world.rs:
