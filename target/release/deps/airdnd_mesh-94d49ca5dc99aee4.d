/root/repo/target/release/deps/airdnd_mesh-94d49ca5dc99aee4.d: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

/root/repo/target/release/deps/libairdnd_mesh-94d49ca5dc99aee4.rlib: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

/root/repo/target/release/deps/libairdnd_mesh-94d49ca5dc99aee4.rmeta: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

crates/mesh/src/lib.rs:
crates/mesh/src/beacon.rs:
crates/mesh/src/descriptor.rs:
crates/mesh/src/membership.rs:
crates/mesh/src/neighbor.rs:
crates/mesh/src/routing.rs:
