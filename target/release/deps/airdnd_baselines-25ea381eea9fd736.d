/root/repo/target/release/deps/airdnd_baselines-25ea381eea9fd736.d: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

/root/repo/target/release/deps/libairdnd_baselines-25ea381eea9fd736.rlib: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

/root/repo/target/release/deps/libairdnd_baselines-25ea381eea9fd736.rmeta: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assigner.rs:
crates/baselines/src/auction.rs:
crates/baselines/src/cloud.rs:
crates/baselines/src/local.rs:
