/root/repo/target/release/deps/airdnd_bench-e8dba152f25f6879.d: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libairdnd_bench-e8dba152f25f6879.rlib: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libairdnd_bench-e8dba152f25f6879.rmeta: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/exp/mod.rs:
crates/bench/src/exp/market.rs:
crates/bench/src/report.rs:
crates/bench/src/sweeps.rs:
