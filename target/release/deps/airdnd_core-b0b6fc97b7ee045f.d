/root/repo/target/release/deps/airdnd_core-b0b6fc97b7ee045f.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libairdnd_core-b0b6fc97b7ee045f.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libairdnd_core-b0b6fc97b7ee045f.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/executor.rs:
crates/core/src/node.rs:
crates/core/src/protocol.rs:
crates/core/src/selection.rs:
crates/core/src/stats.rs:
