/root/repo/target/release/deps/criterion-f2a200652469a356.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f2a200652469a356.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f2a200652469a356.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
