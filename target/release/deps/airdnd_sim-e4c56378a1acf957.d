/root/repo/target/release/deps/airdnd_sim-e4c56378a1acf957.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libairdnd_sim-e4c56378a1acf957.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libairdnd_sim-e4c56378a1acf957.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
