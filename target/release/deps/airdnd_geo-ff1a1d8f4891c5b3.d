/root/repo/target/release/deps/airdnd_geo-ff1a1d8f4891c5b3.d: crates/geo/src/lib.rs crates/geo/src/fov.rs crates/geo/src/mobility.rs crates/geo/src/occlusion.rs crates/geo/src/road.rs crates/geo/src/spatial.rs crates/geo/src/vec2.rs

/root/repo/target/release/deps/libairdnd_geo-ff1a1d8f4891c5b3.rlib: crates/geo/src/lib.rs crates/geo/src/fov.rs crates/geo/src/mobility.rs crates/geo/src/occlusion.rs crates/geo/src/road.rs crates/geo/src/spatial.rs crates/geo/src/vec2.rs

/root/repo/target/release/deps/libairdnd_geo-ff1a1d8f4891c5b3.rmeta: crates/geo/src/lib.rs crates/geo/src/fov.rs crates/geo/src/mobility.rs crates/geo/src/occlusion.rs crates/geo/src/road.rs crates/geo/src/spatial.rs crates/geo/src/vec2.rs

crates/geo/src/lib.rs:
crates/geo/src/fov.rs:
crates/geo/src/mobility.rs:
crates/geo/src/occlusion.rs:
crates/geo/src/road.rs:
crates/geo/src/spatial.rs:
crates/geo/src/vec2.rs:
