/root/repo/target/release/deps/airdnd-10e3ace6e39bb07d.d: src/lib.rs

/root/repo/target/release/deps/libairdnd-10e3ace6e39bb07d.rlib: src/lib.rs

/root/repo/target/release/deps/libairdnd-10e3ace6e39bb07d.rmeta: src/lib.rs

src/lib.rs:
