/root/repo/target/release/deps/airdnd_radio-f3455269feded093.d: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

/root/repo/target/release/deps/libairdnd_radio-f3455269feded093.rlib: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

/root/repo/target/release/deps/libairdnd_radio-f3455269feded093.rmeta: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

crates/radio/src/lib.rs:
crates/radio/src/channel.rs:
crates/radio/src/mac.rs:
crates/radio/src/medium.rs:
crates/radio/src/profiles.rs:
