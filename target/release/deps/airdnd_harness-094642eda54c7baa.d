/root/repo/target/release/deps/airdnd_harness-094642eda54c7baa.d: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

/root/repo/target/release/deps/libairdnd_harness-094642eda54c7baa.rlib: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

/root/repo/target/release/deps/libairdnd_harness-094642eda54c7baa.rmeta: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

crates/harness/src/lib.rs:
crates/harness/src/agg.rs:
crates/harness/src/exec.rs:
crates/harness/src/manifest.rs:
crates/harness/src/report.rs:
crates/harness/src/spec.rs:
