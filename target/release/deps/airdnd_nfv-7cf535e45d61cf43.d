/root/repo/target/release/deps/airdnd_nfv-7cf535e45d61cf43.d: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

/root/repo/target/release/deps/libairdnd_nfv-7cf535e45d61cf43.rlib: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

/root/repo/target/release/deps/libairdnd_nfv-7cf535e45d61cf43.rmeta: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

crates/nfv/src/lib.rs:
crates/nfv/src/chain.rs:
crates/nfv/src/manager.rs:
crates/nfv/src/resources.rs:
crates/nfv/src/vnf.rs:
