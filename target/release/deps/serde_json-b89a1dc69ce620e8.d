/root/repo/target/release/deps/serde_json-b89a1dc69ce620e8.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-b89a1dc69ce620e8.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-b89a1dc69ce620e8.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
