/root/repo/target/release/deps/run_experiments-68e277b44fa143c1.d: crates/bench/src/bin/run_experiments.rs

/root/repo/target/release/deps/run_experiments-68e277b44fa143c1: crates/bench/src/bin/run_experiments.rs

crates/bench/src/bin/run_experiments.rs:
