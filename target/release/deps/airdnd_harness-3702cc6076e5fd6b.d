/root/repo/target/release/deps/airdnd_harness-3702cc6076e5fd6b.d: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

/root/repo/target/release/deps/airdnd_harness-3702cc6076e5fd6b: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

crates/harness/src/lib.rs:
crates/harness/src/agg.rs:
crates/harness/src/exec.rs:
crates/harness/src/manifest.rs:
crates/harness/src/report.rs:
crates/harness/src/spec.rs:
