/root/repo/target/debug/deps/airdnd_radio-cbed2fd277b2976c.d: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

/root/repo/target/debug/deps/libairdnd_radio-cbed2fd277b2976c.rlib: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

/root/repo/target/debug/deps/libairdnd_radio-cbed2fd277b2976c.rmeta: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

crates/radio/src/lib.rs:
crates/radio/src/channel.rs:
crates/radio/src/mac.rs:
crates/radio/src/medium.rs:
crates/radio/src/profiles.rs:
