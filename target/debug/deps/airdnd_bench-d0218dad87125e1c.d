/root/repo/target/debug/deps/airdnd_bench-d0218dad87125e1c.d: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libairdnd_bench-d0218dad87125e1c.rlib: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libairdnd_bench-d0218dad87125e1c.rmeta: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/exp/mod.rs:
crates/bench/src/exp/market.rs:
crates/bench/src/report.rs:
crates/bench/src/sweeps.rs:
