/root/repo/target/debug/deps/props-2b29e2ed510dbe40.d: crates/radio/tests/props.rs

/root/repo/target/debug/deps/props-2b29e2ed510dbe40: crates/radio/tests/props.rs

crates/radio/tests/props.rs:
