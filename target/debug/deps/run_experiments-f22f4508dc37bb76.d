/root/repo/target/debug/deps/run_experiments-f22f4508dc37bb76.d: crates/bench/src/bin/run_experiments.rs

/root/repo/target/debug/deps/run_experiments-f22f4508dc37bb76: crates/bench/src/bin/run_experiments.rs

crates/bench/src/bin/run_experiments.rs:
