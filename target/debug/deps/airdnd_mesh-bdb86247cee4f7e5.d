/root/repo/target/debug/deps/airdnd_mesh-bdb86247cee4f7e5.d: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

/root/repo/target/debug/deps/libairdnd_mesh-bdb86247cee4f7e5.rlib: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

/root/repo/target/debug/deps/libairdnd_mesh-bdb86247cee4f7e5.rmeta: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

crates/mesh/src/lib.rs:
crates/mesh/src/beacon.rs:
crates/mesh/src/descriptor.rs:
crates/mesh/src/membership.rs:
crates/mesh/src/neighbor.rs:
crates/mesh/src/routing.rs:
