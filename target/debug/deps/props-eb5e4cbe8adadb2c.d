/root/repo/target/debug/deps/props-eb5e4cbe8adadb2c.d: crates/mesh/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-eb5e4cbe8adadb2c.rmeta: crates/mesh/tests/props.rs Cargo.toml

crates/mesh/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
