/root/repo/target/debug/deps/serde_json-a78a746a24520d21.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-a78a746a24520d21.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
