/root/repo/target/debug/deps/props-6bb5040a264f0ae7.d: crates/mesh/tests/props.rs

/root/repo/target/debug/deps/props-6bb5040a264f0ae7: crates/mesh/tests/props.rs

crates/mesh/tests/props.rs:
