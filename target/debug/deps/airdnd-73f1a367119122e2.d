/root/repo/target/debug/deps/airdnd-73f1a367119122e2.d: src/lib.rs

/root/repo/target/debug/deps/libairdnd-73f1a367119122e2.rlib: src/lib.rs

/root/repo/target/debug/deps/libairdnd-73f1a367119122e2.rmeta: src/lib.rs

src/lib.rs:
