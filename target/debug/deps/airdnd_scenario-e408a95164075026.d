/root/repo/target/debug/deps/airdnd_scenario-e408a95164075026.d: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs

/root/repo/target/debug/deps/libairdnd_scenario-e408a95164075026.rmeta: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs

crates/scenario/src/lib.rs:
crates/scenario/src/fleet.rs:
crates/scenario/src/perception.rs:
crates/scenario/src/runner.rs:
crates/scenario/src/world.rs:
