/root/repo/target/debug/deps/airdnd_radio-cb11290a96a2f00e.d: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

/root/repo/target/debug/deps/libairdnd_radio-cb11290a96a2f00e.rmeta: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

crates/radio/src/lib.rs:
crates/radio/src/channel.rs:
crates/radio/src/mac.rs:
crates/radio/src/medium.rs:
crates/radio/src/profiles.rs:
