/root/repo/target/debug/deps/hash-8274d860a514dc20.d: crates/bench/benches/hash.rs Cargo.toml

/root/repo/target/debug/deps/libhash-8274d860a514dc20.rmeta: crates/bench/benches/hash.rs Cargo.toml

crates/bench/benches/hash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
