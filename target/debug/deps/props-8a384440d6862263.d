/root/repo/target/debug/deps/props-8a384440d6862263.d: crates/radio/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-8a384440d6862263.rmeta: crates/radio/tests/props.rs Cargo.toml

crates/radio/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
