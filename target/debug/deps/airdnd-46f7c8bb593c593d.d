/root/repo/target/debug/deps/airdnd-46f7c8bb593c593d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd-46f7c8bb593c593d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
