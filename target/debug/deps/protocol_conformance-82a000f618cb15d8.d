/root/repo/target/debug/deps/protocol_conformance-82a000f618cb15d8.d: tests/protocol_conformance.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_conformance-82a000f618cb15d8.rmeta: tests/protocol_conformance.rs Cargo.toml

tests/protocol_conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
