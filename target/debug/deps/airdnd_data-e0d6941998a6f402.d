/root/repo/target/debug/deps/airdnd_data-e0d6941998a6f402.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

/root/repo/target/debug/deps/airdnd_data-e0d6941998a6f402: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/matching.rs:
crates/data/src/quality.rs:
crates/data/src/schema.rs:
crates/data/src/semantic.rs:
