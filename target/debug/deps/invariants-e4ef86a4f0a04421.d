/root/repo/target/debug/deps/invariants-e4ef86a4f0a04421.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-e4ef86a4f0a04421: tests/invariants.rs

tests/invariants.rs:
