/root/repo/target/debug/deps/props-0b2deffc812c1ca7.d: crates/core/tests/props.rs

/root/repo/target/debug/deps/props-0b2deffc812c1ca7: crates/core/tests/props.rs

crates/core/tests/props.rs:
