/root/repo/target/debug/deps/serde_json-666612fd68ad9ad6.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-666612fd68ad9ad6.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
