/root/repo/target/debug/deps/airdnd_trust-70609192c6c02320.d: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_trust-70609192c6c02320.rmeta: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs Cargo.toml

crates/trust/src/lib.rs:
crates/trust/src/hash.rs:
crates/trust/src/privacy.rs:
crates/trust/src/reputation.rs:
crates/trust/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
