/root/repo/target/debug/deps/props-d2d9e74f5cb4943d.d: crates/sim/tests/props.rs

/root/repo/target/debug/deps/props-d2d9e74f5cb4943d: crates/sim/tests/props.rs

crates/sim/tests/props.rs:
