/root/repo/target/debug/deps/airdnd_radio-a62fdaf596cd34db.d: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

/root/repo/target/debug/deps/libairdnd_radio-a62fdaf596cd34db.rlib: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

/root/repo/target/debug/deps/libairdnd_radio-a62fdaf596cd34db.rmeta: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

crates/radio/src/lib.rs:
crates/radio/src/channel.rs:
crates/radio/src/mac.rs:
crates/radio/src/medium.rs:
crates/radio/src/profiles.rs:
