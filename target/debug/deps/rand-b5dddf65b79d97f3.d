/root/repo/target/debug/deps/rand-b5dddf65b79d97f3.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b5dddf65b79d97f3.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
