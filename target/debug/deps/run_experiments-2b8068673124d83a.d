/root/repo/target/debug/deps/run_experiments-2b8068673124d83a.d: crates/bench/src/bin/run_experiments.rs

/root/repo/target/debug/deps/librun_experiments-2b8068673124d83a.rmeta: crates/bench/src/bin/run_experiments.rs

crates/bench/src/bin/run_experiments.rs:
