/root/repo/target/debug/deps/airdnd_mesh-1257971c091832bd.d: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

/root/repo/target/debug/deps/libairdnd_mesh-1257971c091832bd.rmeta: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

crates/mesh/src/lib.rs:
crates/mesh/src/beacon.rs:
crates/mesh/src/descriptor.rs:
crates/mesh/src/membership.rs:
crates/mesh/src/neighbor.rs:
crates/mesh/src/routing.rs:
