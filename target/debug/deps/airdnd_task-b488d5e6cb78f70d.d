/root/repo/target/debug/deps/airdnd_task-b488d5e6cb78f70d.d: crates/task/src/lib.rs crates/task/src/graph.rs crates/task/src/library.rs crates/task/src/spec.rs crates/task/src/vm/mod.rs crates/task/src/vm/asm.rs crates/task/src/vm/exec.rs crates/task/src/vm/isa.rs crates/task/src/vm/verify.rs crates/task/src/wire.rs

/root/repo/target/debug/deps/libairdnd_task-b488d5e6cb78f70d.rlib: crates/task/src/lib.rs crates/task/src/graph.rs crates/task/src/library.rs crates/task/src/spec.rs crates/task/src/vm/mod.rs crates/task/src/vm/asm.rs crates/task/src/vm/exec.rs crates/task/src/vm/isa.rs crates/task/src/vm/verify.rs crates/task/src/wire.rs

/root/repo/target/debug/deps/libairdnd_task-b488d5e6cb78f70d.rmeta: crates/task/src/lib.rs crates/task/src/graph.rs crates/task/src/library.rs crates/task/src/spec.rs crates/task/src/vm/mod.rs crates/task/src/vm/asm.rs crates/task/src/vm/exec.rs crates/task/src/vm/isa.rs crates/task/src/vm/verify.rs crates/task/src/wire.rs

crates/task/src/lib.rs:
crates/task/src/graph.rs:
crates/task/src/library.rs:
crates/task/src/spec.rs:
crates/task/src/vm/mod.rs:
crates/task/src/vm/asm.rs:
crates/task/src/vm/exec.rs:
crates/task/src/vm/isa.rs:
crates/task/src/vm/verify.rs:
crates/task/src/wire.rs:
