/root/repo/target/debug/deps/airdnd_data-1cdfe6a64eb6e599.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

/root/repo/target/debug/deps/libairdnd_data-1cdfe6a64eb6e599.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/matching.rs:
crates/data/src/quality.rs:
crates/data/src/schema.rs:
crates/data/src/semantic.rs:
