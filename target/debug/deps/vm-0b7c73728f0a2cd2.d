/root/repo/target/debug/deps/vm-0b7c73728f0a2cd2.d: crates/bench/benches/vm.rs Cargo.toml

/root/repo/target/debug/deps/libvm-0b7c73728f0a2cd2.rmeta: crates/bench/benches/vm.rs Cargo.toml

crates/bench/benches/vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
