/root/repo/target/debug/deps/airdnd_trust-21dcc8fced053562.d: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs

/root/repo/target/debug/deps/airdnd_trust-21dcc8fced053562: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs

crates/trust/src/lib.rs:
crates/trust/src/hash.rs:
crates/trust/src/privacy.rs:
crates/trust/src/reputation.rs:
crates/trust/src/verify.rs:
