/root/repo/target/debug/deps/invariants-dbaa93d1c40f645f.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-dbaa93d1c40f645f.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
