/root/repo/target/debug/deps/airdnd_nfv-4d1ed0f5821f59f0.d: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_nfv-4d1ed0f5821f59f0.rmeta: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs Cargo.toml

crates/nfv/src/lib.rs:
crates/nfv/src/chain.rs:
crates/nfv/src/manager.rs:
crates/nfv/src/resources.rs:
crates/nfv/src/vnf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
