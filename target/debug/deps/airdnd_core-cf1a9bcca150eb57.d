/root/repo/target/debug/deps/airdnd_core-cf1a9bcca150eb57.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/airdnd_core-cf1a9bcca150eb57: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/executor.rs:
crates/core/src/node.rs:
crates/core/src/protocol.rs:
crates/core/src/selection.rs:
crates/core/src/stats.rs:
