/root/repo/target/debug/deps/airdnd_baselines-1a86d2c19891b45d.d: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

/root/repo/target/debug/deps/libairdnd_baselines-1a86d2c19891b45d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assigner.rs:
crates/baselines/src/auction.rs:
crates/baselines/src/cloud.rs:
crates/baselines/src/local.rs:
