/root/repo/target/debug/deps/airdnd_bench-f53c511ccef9f8be.d: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libairdnd_bench-f53c511ccef9f8be.rlib: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libairdnd_bench-f53c511ccef9f8be.rmeta: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/exp/mod.rs:
crates/bench/src/exp/market.rs:
crates/bench/src/report.rs:
crates/bench/src/sweeps.rs:
