/root/repo/target/debug/deps/airdnd_scenario-207a8710cfcbeb7d.d: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs

/root/repo/target/debug/deps/airdnd_scenario-207a8710cfcbeb7d: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs

crates/scenario/src/lib.rs:
crates/scenario/src/fleet.rs:
crates/scenario/src/perception.rs:
crates/scenario/src/runner.rs:
crates/scenario/src/world.rs:
