/root/repo/target/debug/deps/airdnd_baselines-b8fd031325174ee4.d: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_baselines-b8fd031325174ee4.rmeta: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/assigner.rs:
crates/baselines/src/auction.rs:
crates/baselines/src/cloud.rs:
crates/baselines/src/local.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
