/root/repo/target/debug/deps/airdnd_nfv-5a9d070346fe1e96.d: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

/root/repo/target/debug/deps/libairdnd_nfv-5a9d070346fe1e96.rlib: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

/root/repo/target/debug/deps/libairdnd_nfv-5a9d070346fe1e96.rmeta: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

crates/nfv/src/lib.rs:
crates/nfv/src/chain.rs:
crates/nfv/src/manager.rs:
crates/nfv/src/resources.rs:
crates/nfv/src/vnf.rs:
