/root/repo/target/debug/deps/sweep-c929b77f3bd352eb.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-c929b77f3bd352eb: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
