/root/repo/target/debug/deps/airdnd_sim-5ba8fd4ce4440ffa.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libairdnd_sim-5ba8fd4ce4440ffa.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libairdnd_sim-5ba8fd4ce4440ffa.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
