/root/repo/target/debug/deps/airdnd_radio-b6f5dfcc8631a641.d: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

/root/repo/target/debug/deps/airdnd_radio-b6f5dfcc8631a641: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs

crates/radio/src/lib.rs:
crates/radio/src/channel.rs:
crates/radio/src/mac.rs:
crates/radio/src/medium.rs:
crates/radio/src/profiles.rs:
