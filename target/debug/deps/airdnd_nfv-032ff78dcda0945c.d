/root/repo/target/debug/deps/airdnd_nfv-032ff78dcda0945c.d: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

/root/repo/target/debug/deps/libairdnd_nfv-032ff78dcda0945c.rmeta: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

crates/nfv/src/lib.rs:
crates/nfv/src/chain.rs:
crates/nfv/src/manager.rs:
crates/nfv/src/resources.rs:
crates/nfv/src/vnf.rs:
