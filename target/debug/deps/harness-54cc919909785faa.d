/root/repo/target/debug/deps/harness-54cc919909785faa.d: crates/harness/tests/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-54cc919909785faa.rmeta: crates/harness/tests/harness.rs Cargo.toml

crates/harness/tests/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
