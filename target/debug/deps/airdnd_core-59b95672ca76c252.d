/root/repo/target/debug/deps/airdnd_core-59b95672ca76c252.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_core-59b95672ca76c252.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/executor.rs:
crates/core/src/node.rs:
crates/core/src/protocol.rs:
crates/core/src/selection.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
