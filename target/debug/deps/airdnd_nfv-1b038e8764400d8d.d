/root/repo/target/debug/deps/airdnd_nfv-1b038e8764400d8d.d: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

/root/repo/target/debug/deps/airdnd_nfv-1b038e8764400d8d: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

crates/nfv/src/lib.rs:
crates/nfv/src/chain.rs:
crates/nfv/src/manager.rs:
crates/nfv/src/resources.rs:
crates/nfv/src/vnf.rs:
