/root/repo/target/debug/deps/airdnd-213e2dd5f673f25d.d: src/lib.rs

/root/repo/target/debug/deps/airdnd-213e2dd5f673f25d: src/lib.rs

src/lib.rs:
