/root/repo/target/debug/deps/airdnd_bench-35125b3f3be03ea0.d: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_bench-35125b3f3be03ea0.rmeta: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/exp/mod.rs:
crates/bench/src/exp/market.rs:
crates/bench/src/report.rs:
crates/bench/src/sweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
