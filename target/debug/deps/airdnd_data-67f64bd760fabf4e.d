/root/repo/target/debug/deps/airdnd_data-67f64bd760fabf4e.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_data-67f64bd760fabf4e.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/matching.rs:
crates/data/src/quality.rs:
crates/data/src/schema.rs:
crates/data/src/semantic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
