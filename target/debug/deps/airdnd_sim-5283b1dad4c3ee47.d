/root/repo/target/debug/deps/airdnd_sim-5283b1dad4c3ee47.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libairdnd_sim-5283b1dad4c3ee47.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libairdnd_sim-5283b1dad4c3ee47.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
