/root/repo/target/debug/deps/rand-637b9819395a1284.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-637b9819395a1284.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
