/root/repo/target/debug/deps/airdnd_core-26e606b8d6b6a7c0.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libairdnd_core-26e606b8d6b6a7c0.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/executor.rs:
crates/core/src/node.rs:
crates/core/src/protocol.rs:
crates/core/src/selection.rs:
crates/core/src/stats.rs:
