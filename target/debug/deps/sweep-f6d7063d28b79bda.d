/root/repo/target/debug/deps/sweep-f6d7063d28b79bda.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-f6d7063d28b79bda.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
