/root/repo/target/debug/deps/airdnd_trust-07096e9c2aad6313.d: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs

/root/repo/target/debug/deps/libairdnd_trust-07096e9c2aad6313.rlib: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs

/root/repo/target/debug/deps/libairdnd_trust-07096e9c2aad6313.rmeta: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs

crates/trust/src/lib.rs:
crates/trust/src/hash.rs:
crates/trust/src/privacy.rs:
crates/trust/src/reputation.rs:
crates/trust/src/verify.rs:
