/root/repo/target/debug/deps/airdnd_baselines-ad2d96f4ff409ef9.d: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_baselines-ad2d96f4ff409ef9.rmeta: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/assigner.rs:
crates/baselines/src/auction.rs:
crates/baselines/src/cloud.rs:
crates/baselines/src/local.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
