/root/repo/target/debug/deps/serde_json-17d07571e050658c.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-17d07571e050658c: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
