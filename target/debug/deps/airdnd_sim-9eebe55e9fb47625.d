/root/repo/target/debug/deps/airdnd_sim-9eebe55e9fb47625.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_sim-9eebe55e9fb47625.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
