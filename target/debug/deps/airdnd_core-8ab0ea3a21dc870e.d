/root/repo/target/debug/deps/airdnd_core-8ab0ea3a21dc870e.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libairdnd_core-8ab0ea3a21dc870e.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libairdnd_core-8ab0ea3a21dc870e.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/executor.rs:
crates/core/src/node.rs:
crates/core/src/protocol.rs:
crates/core/src/selection.rs:
crates/core/src/stats.rs:
