/root/repo/target/debug/deps/airdnd_scenario-e8367af606b62bbd.d: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_scenario-e8367af606b62bbd.rmeta: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs Cargo.toml

crates/scenario/src/lib.rs:
crates/scenario/src/fleet.rs:
crates/scenario/src/perception.rs:
crates/scenario/src/runner.rs:
crates/scenario/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
