/root/repo/target/debug/deps/channel-b708816a9feefa51.d: crates/bench/benches/channel.rs Cargo.toml

/root/repo/target/debug/deps/libchannel-b708816a9feefa51.rmeta: crates/bench/benches/channel.rs Cargo.toml

crates/bench/benches/channel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
