/root/repo/target/debug/deps/airdnd_mesh-04f31baa786856cc.d: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

/root/repo/target/debug/deps/airdnd_mesh-04f31baa786856cc: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

crates/mesh/src/lib.rs:
crates/mesh/src/beacon.rs:
crates/mesh/src/descriptor.rs:
crates/mesh/src/membership.rs:
crates/mesh/src/neighbor.rs:
crates/mesh/src/routing.rs:
