/root/repo/target/debug/deps/harness-4b64e5cef1069a2f.d: crates/harness/benches/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-4b64e5cef1069a2f.rmeta: crates/harness/benches/harness.rs Cargo.toml

crates/harness/benches/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
