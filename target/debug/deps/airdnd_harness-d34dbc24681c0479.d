/root/repo/target/debug/deps/airdnd_harness-d34dbc24681c0479.d: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

/root/repo/target/debug/deps/libairdnd_harness-d34dbc24681c0479.rmeta: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

crates/harness/src/lib.rs:
crates/harness/src/agg.rs:
crates/harness/src/exec.rs:
crates/harness/src/manifest.rs:
crates/harness/src/report.rs:
crates/harness/src/spec.rs:
