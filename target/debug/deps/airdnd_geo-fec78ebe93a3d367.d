/root/repo/target/debug/deps/airdnd_geo-fec78ebe93a3d367.d: crates/geo/src/lib.rs crates/geo/src/fov.rs crates/geo/src/mobility.rs crates/geo/src/occlusion.rs crates/geo/src/road.rs crates/geo/src/spatial.rs crates/geo/src/vec2.rs

/root/repo/target/debug/deps/airdnd_geo-fec78ebe93a3d367: crates/geo/src/lib.rs crates/geo/src/fov.rs crates/geo/src/mobility.rs crates/geo/src/occlusion.rs crates/geo/src/road.rs crates/geo/src/spatial.rs crates/geo/src/vec2.rs

crates/geo/src/lib.rs:
crates/geo/src/fov.rs:
crates/geo/src/mobility.rs:
crates/geo/src/occlusion.rs:
crates/geo/src/road.rs:
crates/geo/src/spatial.rs:
crates/geo/src/vec2.rs:
