/root/repo/target/debug/deps/airdnd_scenario-5fca08c1e6cf573c.d: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs

/root/repo/target/debug/deps/libairdnd_scenario-5fca08c1e6cf573c.rlib: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs

/root/repo/target/debug/deps/libairdnd_scenario-5fca08c1e6cf573c.rmeta: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs

crates/scenario/src/lib.rs:
crates/scenario/src/fleet.rs:
crates/scenario/src/perception.rs:
crates/scenario/src/runner.rs:
crates/scenario/src/world.rs:
