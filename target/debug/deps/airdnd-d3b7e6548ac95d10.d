/root/repo/target/debug/deps/airdnd-d3b7e6548ac95d10.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd-d3b7e6548ac95d10.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
