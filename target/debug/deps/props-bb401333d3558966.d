/root/repo/target/debug/deps/props-bb401333d3558966.d: crates/geo/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-bb401333d3558966.rmeta: crates/geo/tests/props.rs Cargo.toml

crates/geo/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
