/root/repo/target/debug/deps/airdnd_sim-efa5200e9af9a4a1.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_sim-efa5200e9af9a4a1.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
