/root/repo/target/debug/deps/airdnd_scenario-50d2608b4c340714.d: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_scenario-50d2608b4c340714.rmeta: crates/scenario/src/lib.rs crates/scenario/src/fleet.rs crates/scenario/src/perception.rs crates/scenario/src/runner.rs crates/scenario/src/world.rs Cargo.toml

crates/scenario/src/lib.rs:
crates/scenario/src/fleet.rs:
crates/scenario/src/perception.rs:
crates/scenario/src/runner.rs:
crates/scenario/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
