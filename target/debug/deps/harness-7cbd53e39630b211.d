/root/repo/target/debug/deps/harness-7cbd53e39630b211.d: crates/harness/tests/harness.rs

/root/repo/target/debug/deps/harness-7cbd53e39630b211: crates/harness/tests/harness.rs

crates/harness/tests/harness.rs:
