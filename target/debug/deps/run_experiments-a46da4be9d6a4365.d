/root/repo/target/debug/deps/run_experiments-a46da4be9d6a4365.d: crates/bench/src/bin/run_experiments.rs Cargo.toml

/root/repo/target/debug/deps/librun_experiments-a46da4be9d6a4365.rmeta: crates/bench/src/bin/run_experiments.rs Cargo.toml

crates/bench/src/bin/run_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
