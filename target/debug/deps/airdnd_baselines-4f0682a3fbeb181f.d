/root/repo/target/debug/deps/airdnd_baselines-4f0682a3fbeb181f.d: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

/root/repo/target/debug/deps/libairdnd_baselines-4f0682a3fbeb181f.rlib: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

/root/repo/target/debug/deps/libairdnd_baselines-4f0682a3fbeb181f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assigner.rs:
crates/baselines/src/auction.rs:
crates/baselines/src/cloud.rs:
crates/baselines/src/local.rs:
