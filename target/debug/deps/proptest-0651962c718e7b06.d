/root/repo/target/debug/deps/proptest-0651962c718e7b06.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-0651962c718e7b06.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/strategy.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
