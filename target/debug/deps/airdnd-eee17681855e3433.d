/root/repo/target/debug/deps/airdnd-eee17681855e3433.d: src/lib.rs

/root/repo/target/debug/deps/libairdnd-eee17681855e3433.rlib: src/lib.rs

/root/repo/target/debug/deps/libairdnd-eee17681855e3433.rmeta: src/lib.rs

src/lib.rs:
