/root/repo/target/debug/deps/props-a9792a0abee0ecf1.d: crates/core/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-a9792a0abee0ecf1.rmeta: crates/core/tests/props.rs Cargo.toml

crates/core/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
