/root/repo/target/debug/deps/airdnd_bench-38ce27cc5441eaa0.d: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/airdnd_bench-38ce27cc5441eaa0: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/exp/mod.rs:
crates/bench/src/exp/market.rs:
crates/bench/src/report.rs:
crates/bench/src/sweeps.rs:
