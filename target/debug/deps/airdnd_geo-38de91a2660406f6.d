/root/repo/target/debug/deps/airdnd_geo-38de91a2660406f6.d: crates/geo/src/lib.rs crates/geo/src/fov.rs crates/geo/src/mobility.rs crates/geo/src/occlusion.rs crates/geo/src/road.rs crates/geo/src/spatial.rs crates/geo/src/vec2.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_geo-38de91a2660406f6.rmeta: crates/geo/src/lib.rs crates/geo/src/fov.rs crates/geo/src/mobility.rs crates/geo/src/occlusion.rs crates/geo/src/road.rs crates/geo/src/spatial.rs crates/geo/src/vec2.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/fov.rs:
crates/geo/src/mobility.rs:
crates/geo/src/occlusion.rs:
crates/geo/src/road.rs:
crates/geo/src/spatial.rs:
crates/geo/src/vec2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
