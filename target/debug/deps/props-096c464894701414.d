/root/repo/target/debug/deps/props-096c464894701414.d: crates/sim/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-096c464894701414.rmeta: crates/sim/tests/props.rs Cargo.toml

crates/sim/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
