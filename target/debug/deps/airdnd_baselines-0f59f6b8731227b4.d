/root/repo/target/debug/deps/airdnd_baselines-0f59f6b8731227b4.d: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

/root/repo/target/debug/deps/libairdnd_baselines-0f59f6b8731227b4.rlib: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

/root/repo/target/debug/deps/libairdnd_baselines-0f59f6b8731227b4.rmeta: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assigner.rs:
crates/baselines/src/auction.rs:
crates/baselines/src/cloud.rs:
crates/baselines/src/local.rs:
