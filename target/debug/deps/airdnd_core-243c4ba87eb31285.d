/root/repo/target/debug/deps/airdnd_core-243c4ba87eb31285.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_core-243c4ba87eb31285.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/executor.rs:
crates/core/src/node.rs:
crates/core/src/protocol.rs:
crates/core/src/selection.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
