/root/repo/target/debug/deps/airdnd_harness-2d452e76c0ad8e94.d: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

/root/repo/target/debug/deps/airdnd_harness-2d452e76c0ad8e94: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

crates/harness/src/lib.rs:
crates/harness/src/agg.rs:
crates/harness/src/exec.rs:
crates/harness/src/manifest.rs:
crates/harness/src/report.rs:
crates/harness/src/spec.rs:
