/root/repo/target/debug/deps/airdnd_harness-ed52309e5a5bfe44.d: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

/root/repo/target/debug/deps/libairdnd_harness-ed52309e5a5bfe44.rlib: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

/root/repo/target/debug/deps/libairdnd_harness-ed52309e5a5bfe44.rmeta: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

crates/harness/src/lib.rs:
crates/harness/src/agg.rs:
crates/harness/src/exec.rs:
crates/harness/src/manifest.rs:
crates/harness/src/report.rs:
crates/harness/src/spec.rs:
