/root/repo/target/debug/deps/airdnd_data-29e9266fa7b9d2ef.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

/root/repo/target/debug/deps/libairdnd_data-29e9266fa7b9d2ef.rlib: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

/root/repo/target/debug/deps/libairdnd_data-29e9266fa7b9d2ef.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/matching.rs:
crates/data/src/quality.rs:
crates/data/src/schema.rs:
crates/data/src/semantic.rs:
