/root/repo/target/debug/deps/airdnd_harness-4e4ee6b7fd5537c3.d: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

/root/repo/target/debug/deps/libairdnd_harness-4e4ee6b7fd5537c3.rlib: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

/root/repo/target/debug/deps/libairdnd_harness-4e4ee6b7fd5537c3.rmeta: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs

crates/harness/src/lib.rs:
crates/harness/src/agg.rs:
crates/harness/src/exec.rs:
crates/harness/src/manifest.rs:
crates/harness/src/report.rs:
crates/harness/src/spec.rs:
