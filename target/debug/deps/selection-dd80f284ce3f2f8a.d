/root/repo/target/debug/deps/selection-dd80f284ce3f2f8a.d: crates/bench/benches/selection.rs Cargo.toml

/root/repo/target/debug/deps/libselection-dd80f284ce3f2f8a.rmeta: crates/bench/benches/selection.rs Cargo.toml

crates/bench/benches/selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
