/root/repo/target/debug/deps/airdnd_data-b6c23b0f7e90798d.d: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

/root/repo/target/debug/deps/libairdnd_data-b6c23b0f7e90798d.rlib: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

/root/repo/target/debug/deps/libairdnd_data-b6c23b0f7e90798d.rmeta: crates/data/src/lib.rs crates/data/src/catalog.rs crates/data/src/matching.rs crates/data/src/quality.rs crates/data/src/schema.rs crates/data/src/semantic.rs

crates/data/src/lib.rs:
crates/data/src/catalog.rs:
crates/data/src/matching.rs:
crates/data/src/quality.rs:
crates/data/src/schema.rs:
crates/data/src/semantic.rs:
