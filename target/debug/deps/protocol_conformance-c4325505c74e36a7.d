/root/repo/target/debug/deps/protocol_conformance-c4325505c74e36a7.d: tests/protocol_conformance.rs

/root/repo/target/debug/deps/protocol_conformance-c4325505c74e36a7: tests/protocol_conformance.rs

tests/protocol_conformance.rs:
