/root/repo/target/debug/deps/airdnd_task-4fd0a150fe6e94d8.d: crates/task/src/lib.rs crates/task/src/graph.rs crates/task/src/library.rs crates/task/src/spec.rs crates/task/src/vm/mod.rs crates/task/src/vm/asm.rs crates/task/src/vm/exec.rs crates/task/src/vm/isa.rs crates/task/src/vm/verify.rs crates/task/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_task-4fd0a150fe6e94d8.rmeta: crates/task/src/lib.rs crates/task/src/graph.rs crates/task/src/library.rs crates/task/src/spec.rs crates/task/src/vm/mod.rs crates/task/src/vm/asm.rs crates/task/src/vm/exec.rs crates/task/src/vm/isa.rs crates/task/src/vm/verify.rs crates/task/src/wire.rs Cargo.toml

crates/task/src/lib.rs:
crates/task/src/graph.rs:
crates/task/src/library.rs:
crates/task/src/spec.rs:
crates/task/src/vm/mod.rs:
crates/task/src/vm/asm.rs:
crates/task/src/vm/exec.rs:
crates/task/src/vm/isa.rs:
crates/task/src/vm/verify.rs:
crates/task/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
