/root/repo/target/debug/deps/determinism-00a1ca4d6003d0b8.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-00a1ca4d6003d0b8: tests/determinism.rs

tests/determinism.rs:
