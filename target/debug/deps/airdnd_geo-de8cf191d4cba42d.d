/root/repo/target/debug/deps/airdnd_geo-de8cf191d4cba42d.d: crates/geo/src/lib.rs crates/geo/src/fov.rs crates/geo/src/mobility.rs crates/geo/src/occlusion.rs crates/geo/src/road.rs crates/geo/src/spatial.rs crates/geo/src/vec2.rs

/root/repo/target/debug/deps/libairdnd_geo-de8cf191d4cba42d.rmeta: crates/geo/src/lib.rs crates/geo/src/fov.rs crates/geo/src/mobility.rs crates/geo/src/occlusion.rs crates/geo/src/road.rs crates/geo/src/spatial.rs crates/geo/src/vec2.rs

crates/geo/src/lib.rs:
crates/geo/src/fov.rs:
crates/geo/src/mobility.rs:
crates/geo/src/occlusion.rs:
crates/geo/src/road.rs:
crates/geo/src/spatial.rs:
crates/geo/src/vec2.rs:
