/root/repo/target/debug/deps/airdnd_harness-bd8b50241618cb69.d: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_harness-bd8b50241618cb69.rmeta: crates/harness/src/lib.rs crates/harness/src/agg.rs crates/harness/src/exec.rs crates/harness/src/manifest.rs crates/harness/src/report.rs crates/harness/src/spec.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/agg.rs:
crates/harness/src/exec.rs:
crates/harness/src/manifest.rs:
crates/harness/src/report.rs:
crates/harness/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
