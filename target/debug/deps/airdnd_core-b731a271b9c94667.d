/root/repo/target/debug/deps/airdnd_core-b731a271b9c94667.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libairdnd_core-b731a271b9c94667.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libairdnd_core-b731a271b9c94667.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/executor.rs crates/core/src/node.rs crates/core/src/protocol.rs crates/core/src/selection.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/executor.rs:
crates/core/src/node.rs:
crates/core/src/protocol.rs:
crates/core/src/selection.rs:
crates/core/src/stats.rs:
