/root/repo/target/debug/deps/spatial-4f9861b223f66a92.d: crates/bench/benches/spatial.rs Cargo.toml

/root/repo/target/debug/deps/libspatial-4f9861b223f66a92.rmeta: crates/bench/benches/spatial.rs Cargo.toml

crates/bench/benches/spatial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
