/root/repo/target/debug/deps/run_experiments-1563b9ddde0e2dae.d: crates/bench/src/bin/run_experiments.rs

/root/repo/target/debug/deps/run_experiments-1563b9ddde0e2dae: crates/bench/src/bin/run_experiments.rs

crates/bench/src/bin/run_experiments.rs:
