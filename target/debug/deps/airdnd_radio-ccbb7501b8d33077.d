/root/repo/target/debug/deps/airdnd_radio-ccbb7501b8d33077.d: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_radio-ccbb7501b8d33077.rmeta: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs Cargo.toml

crates/radio/src/lib.rs:
crates/radio/src/channel.rs:
crates/radio/src/mac.rs:
crates/radio/src/medium.rs:
crates/radio/src/profiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
