/root/repo/target/debug/deps/airdnd_baselines-0e50578c6073ddf4.d: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

/root/repo/target/debug/deps/airdnd_baselines-0e50578c6073ddf4: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assigner.rs:
crates/baselines/src/auction.rs:
crates/baselines/src/cloud.rs:
crates/baselines/src/local.rs:
