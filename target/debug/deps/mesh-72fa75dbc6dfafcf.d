/root/repo/target/debug/deps/mesh-72fa75dbc6dfafcf.d: crates/bench/benches/mesh.rs Cargo.toml

/root/repo/target/debug/deps/libmesh-72fa75dbc6dfafcf.rmeta: crates/bench/benches/mesh.rs Cargo.toml

crates/bench/benches/mesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
