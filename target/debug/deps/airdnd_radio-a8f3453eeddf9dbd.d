/root/repo/target/debug/deps/airdnd_radio-a8f3453eeddf9dbd.d: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_radio-a8f3453eeddf9dbd.rmeta: crates/radio/src/lib.rs crates/radio/src/channel.rs crates/radio/src/mac.rs crates/radio/src/medium.rs crates/radio/src/profiles.rs Cargo.toml

crates/radio/src/lib.rs:
crates/radio/src/channel.rs:
crates/radio/src/mac.rs:
crates/radio/src/medium.rs:
crates/radio/src/profiles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
