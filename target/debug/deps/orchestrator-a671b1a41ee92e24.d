/root/repo/target/debug/deps/orchestrator-a671b1a41ee92e24.d: crates/bench/benches/orchestrator.rs Cargo.toml

/root/repo/target/debug/deps/liborchestrator-a671b1a41ee92e24.rmeta: crates/bench/benches/orchestrator.rs Cargo.toml

crates/bench/benches/orchestrator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
