/root/repo/target/debug/deps/airdnd_baselines-0ee556017b7b122a.d: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

/root/repo/target/debug/deps/airdnd_baselines-0ee556017b7b122a: crates/baselines/src/lib.rs crates/baselines/src/assigner.rs crates/baselines/src/auction.rs crates/baselines/src/cloud.rs crates/baselines/src/local.rs

crates/baselines/src/lib.rs:
crates/baselines/src/assigner.rs:
crates/baselines/src/auction.rs:
crates/baselines/src/cloud.rs:
crates/baselines/src/local.rs:
