/root/repo/target/debug/deps/end_to_end-c0508f07fb9398a4.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c0508f07fb9398a4: tests/end_to_end.rs

tests/end_to_end.rs:
