/root/repo/target/debug/deps/determinism-3c4345501c03eae9.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-3c4345501c03eae9.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
