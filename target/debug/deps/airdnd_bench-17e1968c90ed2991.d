/root/repo/target/debug/deps/airdnd_bench-17e1968c90ed2991.d: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libairdnd_bench-17e1968c90ed2991.rmeta: crates/bench/src/lib.rs crates/bench/src/exp/mod.rs crates/bench/src/exp/market.rs crates/bench/src/report.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/exp/mod.rs:
crates/bench/src/exp/market.rs:
crates/bench/src/report.rs:
crates/bench/src/sweeps.rs:
