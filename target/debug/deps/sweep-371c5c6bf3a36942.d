/root/repo/target/debug/deps/sweep-371c5c6bf3a36942.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-371c5c6bf3a36942: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
