/root/repo/target/debug/deps/run_experiments-826ac55ad75d310d.d: crates/bench/src/bin/run_experiments.rs Cargo.toml

/root/repo/target/debug/deps/librun_experiments-826ac55ad75d310d.rmeta: crates/bench/src/bin/run_experiments.rs Cargo.toml

crates/bench/src/bin/run_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
