/root/repo/target/debug/deps/airdnd_mesh-08234c16a8463f34.d: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs Cargo.toml

/root/repo/target/debug/deps/libairdnd_mesh-08234c16a8463f34.rmeta: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs Cargo.toml

crates/mesh/src/lib.rs:
crates/mesh/src/beacon.rs:
crates/mesh/src/descriptor.rs:
crates/mesh/src/membership.rs:
crates/mesh/src/neighbor.rs:
crates/mesh/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
