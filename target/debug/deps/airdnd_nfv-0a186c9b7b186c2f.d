/root/repo/target/debug/deps/airdnd_nfv-0a186c9b7b186c2f.d: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

/root/repo/target/debug/deps/libairdnd_nfv-0a186c9b7b186c2f.rlib: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

/root/repo/target/debug/deps/libairdnd_nfv-0a186c9b7b186c2f.rmeta: crates/nfv/src/lib.rs crates/nfv/src/chain.rs crates/nfv/src/manager.rs crates/nfv/src/resources.rs crates/nfv/src/vnf.rs

crates/nfv/src/lib.rs:
crates/nfv/src/chain.rs:
crates/nfv/src/manager.rs:
crates/nfv/src/resources.rs:
crates/nfv/src/vnf.rs:
