/root/repo/target/debug/deps/props-b9013fada1f4ef21.d: crates/geo/tests/props.rs

/root/repo/target/debug/deps/props-b9013fada1f4ef21: crates/geo/tests/props.rs

crates/geo/tests/props.rs:
