/root/repo/target/debug/deps/airdnd_mesh-70103863fea56328.d: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

/root/repo/target/debug/deps/libairdnd_mesh-70103863fea56328.rlib: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

/root/repo/target/debug/deps/libairdnd_mesh-70103863fea56328.rmeta: crates/mesh/src/lib.rs crates/mesh/src/beacon.rs crates/mesh/src/descriptor.rs crates/mesh/src/membership.rs crates/mesh/src/neighbor.rs crates/mesh/src/routing.rs

crates/mesh/src/lib.rs:
crates/mesh/src/beacon.rs:
crates/mesh/src/descriptor.rs:
crates/mesh/src/membership.rs:
crates/mesh/src/neighbor.rs:
crates/mesh/src/routing.rs:
