/root/repo/target/debug/deps/airdnd_trust-14656f0efb1a962e.d: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs

/root/repo/target/debug/deps/libairdnd_trust-14656f0efb1a962e.rmeta: crates/trust/src/lib.rs crates/trust/src/hash.rs crates/trust/src/privacy.rs crates/trust/src/reputation.rs crates/trust/src/verify.rs

crates/trust/src/lib.rs:
crates/trust/src/hash.rs:
crates/trust/src/privacy.rs:
crates/trust/src/reputation.rs:
crates/trust/src/verify.rs:
