/root/repo/target/debug/deps/sweep-3af398c0a3d53c32.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-3af398c0a3d53c32.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
