/root/repo/target/debug/deps/sweep-7c0490ab6d13839c.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/libsweep-7c0490ab6d13839c.rmeta: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
