/root/repo/target/debug/examples/resource_market-92ba92842f19d5ae.d: examples/resource_market.rs

/root/repo/target/debug/examples/resource_market-92ba92842f19d5ae: examples/resource_market.rs

examples/resource_market.rs:
