/root/repo/target/debug/examples/quickstart-010a7c0fd8466d5d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-010a7c0fd8466d5d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
