/root/repo/target/debug/examples/resource_market-73b79729723a5659.d: examples/resource_market.rs Cargo.toml

/root/repo/target/debug/examples/libresource_market-73b79729723a5659.rmeta: examples/resource_market.rs Cargo.toml

examples/resource_market.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
