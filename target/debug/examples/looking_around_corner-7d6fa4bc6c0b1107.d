/root/repo/target/debug/examples/looking_around_corner-7d6fa4bc6c0b1107.d: examples/looking_around_corner.rs Cargo.toml

/root/repo/target/debug/examples/liblooking_around_corner-7d6fa4bc6c0b1107.rmeta: examples/looking_around_corner.rs Cargo.toml

examples/looking_around_corner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
