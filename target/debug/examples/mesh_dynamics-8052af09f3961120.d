/root/repo/target/debug/examples/mesh_dynamics-8052af09f3961120.d: examples/mesh_dynamics.rs Cargo.toml

/root/repo/target/debug/examples/libmesh_dynamics-8052af09f3961120.rmeta: examples/mesh_dynamics.rs Cargo.toml

examples/mesh_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
