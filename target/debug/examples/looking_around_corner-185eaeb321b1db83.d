/root/repo/target/debug/examples/looking_around_corner-185eaeb321b1db83.d: examples/looking_around_corner.rs

/root/repo/target/debug/examples/looking_around_corner-185eaeb321b1db83: examples/looking_around_corner.rs

examples/looking_around_corner.rs:
