/root/repo/target/debug/examples/quickstart-9e5c57a3990ff31d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9e5c57a3990ff31d: examples/quickstart.rs

examples/quickstart.rs:
