/root/repo/target/debug/examples/mesh_dynamics-f636e2d1c444f11f.d: examples/mesh_dynamics.rs

/root/repo/target/debug/examples/mesh_dynamics-f636e2d1c444f11f: examples/mesh_dynamics.rs

examples/mesh_dynamics.rs:
