//! # AirDnD — Asynchronous In-Range Dynamic and Distributed Network
//! # Orchestration Framework
//!
//! A from-scratch Rust implementation of the AirDnD vision (Mahawatta
//! Dona, Berger & Yu, ICDCS 2023): geographically distributed edge devices
//! and vehicles spontaneously form a **dynamic mesh network**, advertise
//! their excess compute and locally held data, and execute each other's
//! **offloaded compute tasks** so that raw data never moves — only
//! portable task descriptions and small results do.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`sim`] | `airdnd-sim` | deterministic discrete-event substrate |
//! | [`geo`] | `airdnd-geo` | roads, mobility, occlusion, spatial index |
//! | [`engine`] | `airdnd-engine` | event timeline, uniform spatial grid, SoA fleet storage |
//! | [`radio`] | `airdnd-radio` | V2V channel/MAC + cellular profiles |
//! | [`data`] | `airdnd-data` | **Model 3** — data descriptions |
//! | [`task`] | `airdnd-task` | **Model 2** — TaskVM task descriptions |
//! | [`mesh`] | `airdnd-mesh` | **Model 1** — mesh network descriptions |
//! | [`nfv`] | `airdnd-nfv` | resource virtualization & VNF manager |
//! | [`trust`] | `airdnd-trust` | reputation, hashing, result voting |
//! | [`core`] | `airdnd-core` | the orchestrator itself (RQ1–RQ3) |
//! | [`baselines`] | `airdnd-baselines` | auctions, cloud, local baselines |
//! | [`scenario`] | `airdnd-scenario` | "looking around the corner" |
//! | [`worldgen`] | `airdnd-worldgen` | procedural scenario generation |
//! | [`harness`] | `airdnd-harness` | parallel deterministic sweep orchestration |
//! | [`telemetry`] | `airdnd-telemetry` | typed events, metrics, timelines, profiling |
//!
//! ## Quickstart
//!
//! ```
//! use airdnd::scenario::{run_scenario, ScenarioConfig, Strategy};
//! use airdnd::sim::SimDuration;
//!
//! let report = run_scenario(ScenarioConfig {
//!     vehicles: 8,
//!     duration: SimDuration::from_secs(10),
//!     strategy: Strategy::Airdnd,
//!     ..Default::default()
//! });
//! assert!(report.tasks_submitted > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use airdnd_baselines as baselines;
pub use airdnd_core as core;
pub use airdnd_data as data;
pub use airdnd_engine as engine;
pub use airdnd_geo as geo;
pub use airdnd_harness as harness;
pub use airdnd_mesh as mesh;
pub use airdnd_nfv as nfv;
pub use airdnd_radio as radio;
pub use airdnd_scenario as scenario;
pub use airdnd_sim as sim;
pub use airdnd_task as task;
pub use airdnd_telemetry as telemetry;
pub use airdnd_trust as trust;
pub use airdnd_worldgen as worldgen;
